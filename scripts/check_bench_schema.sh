#!/usr/bin/env bash
# Gate on the committed bench artifacts: every BENCH_*.json at the repo
# root must parse as JSON and carry the provenance + honesty fields the
# benches promise (RunStamp commit/timestamp, host_cpus, and the
# undersubscribed flag that keeps 1-CPU containers from recording
# misleading concurrency curves).
#
# Pure-bash field checks so the gate runs anywhere; `python3` (when
# present) additionally validates that each file is well-formed JSON.
set -euo pipefail

cd "$(dirname "$0")/.."

REQUIRED_FIELDS=(bench git_commit generated_at host_cpus undersubscribed)

shopt -s nullglob
files=(BENCH_*.json)
if [[ ${#files[@]} -eq 0 ]]; then
    echo "check_bench_schema: no BENCH_*.json artifacts at repo root" >&2
    exit 1
fi

fail=0
for f in "${files[@]}"; do
    file_ok=1
    for field in "${REQUIRED_FIELDS[@]}"; do
        if ! grep -q "\"${field}\":" "$f"; then
            echo "${f}: missing required field \"${field}\"" >&2
            file_ok=0
        fi
    done
    # generated_at must be an ISO-8601 UTC stamp, not a placeholder.
    if ! grep -Eq '"generated_at": "[0-9]{4}-[0-9]{2}-[0-9]{2}T[0-9]{2}:[0-9]{2}:[0-9]{2}Z"' "$f"; then
        echo "${f}: generated_at is not an ISO-8601 UTC timestamp" >&2
        file_ok=0
    fi
    # git_commit must be a 40-hex sha, optionally -dirty.
    if ! grep -Eq '"git_commit": "([0-9a-f]{40}(-dirty)?|unknown)"' "$f"; then
        echo "${f}: git_commit is not a sha (or 'unknown')" >&2
        file_ok=0
    fi
    # The throughput bench additionally records per-stage wall-time
    # histogram summaries from the telemetry registry; each stage row
    # must carry the full {count, sum, p50, p95, p99} summary.
    if grep -q '"bench": "fig18_throughput"' "$f"; then
        if ! grep -q '"stage_micros":' "$f"; then
            echo "${f}: missing required field \"stage_micros\"" >&2
            file_ok=0
        fi
        for stage in impute traverse refine merge barrier_wait; do
            if ! grep -Eq "\"${stage}\": \\{\"count\": [0-9]+, \"sum\": [0-9]+, \"p50\": [0-9]+, \"p95\": [0-9]+, \"p99\": [0-9]+\\}" "$f"; then
                echo "${f}: stage_micros.${stage} missing or malformed (need count/sum/p50/p95/p99)" >&2
                file_ok=0
            fi
        done
    fi
    if command -v python3 >/dev/null 2>&1; then
        if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$f" 2>/dev/null; then
            echo "${f}: not valid JSON" >&2
            file_ok=0
        fi
    fi
    if [[ $file_ok -eq 1 ]]; then
        echo "${f}: ok"
    else
        fail=1
    fi
done

if [[ $fail -ne 0 ]]; then
    echo "check_bench_schema: FAILED" >&2
    exit 1
fi
echo "check_bench_schema: all ${#files[@]} artifacts conform"
