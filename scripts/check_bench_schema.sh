#!/usr/bin/env bash
# Gate on the committed bench artifacts: every BENCH_*.json at the repo
# root must parse as JSON and carry the provenance + honesty fields the
# benches promise (RunStamp commit/timestamp, host_cpus, and the
# undersubscribed flag that keeps 1-CPU containers from recording
# misleading concurrency curves).
#
# Pure-bash field checks so the gate runs anywhere; `python3` (when
# present) additionally validates that each file is well-formed JSON.
set -euo pipefail

cd "$(dirname "$0")/.."

REQUIRED_FIELDS=(bench git_commit generated_at host_cpus undersubscribed)

shopt -s nullglob
files=(BENCH_*.json)
if [[ ${#files[@]} -eq 0 ]]; then
    echo "check_bench_schema: no BENCH_*.json artifacts at repo root" >&2
    exit 1
fi

fail=0
for f in "${files[@]}"; do
    file_ok=1
    for field in "${REQUIRED_FIELDS[@]}"; do
        if ! grep -q "\"${field}\":" "$f"; then
            echo "${f}: missing required field \"${field}\"" >&2
            file_ok=0
        fi
    done
    # generated_at must be an ISO-8601 UTC stamp, not a placeholder.
    if ! grep -Eq '"generated_at": "[0-9]{4}-[0-9]{2}-[0-9]{2}T[0-9]{2}:[0-9]{2}:[0-9]{2}Z"' "$f"; then
        echo "${f}: generated_at is not an ISO-8601 UTC timestamp" >&2
        file_ok=0
    fi
    # git_commit must be a 40-hex sha, optionally -dirty.
    if ! grep -Eq '"git_commit": "([0-9a-f]{40}(-dirty)?|unknown)"' "$f"; then
        echo "${f}: git_commit is not a sha (or 'unknown')" >&2
        file_ok=0
    fi
    # The throughput bench additionally records per-stage wall-time
    # histogram summaries from the telemetry registry; each stage row
    # must carry the full {count, sum, p50, p95, p99} summary.
    if grep -q '"bench": "fig18_throughput"' "$f"; then
        if ! grep -q '"stage_micros":' "$f"; then
            echo "${f}: missing required field \"stage_micros\"" >&2
            file_ok=0
        fi
        for stage in impute traverse refine merge barrier_wait; do
            if ! grep -Eq "\"${stage}\": \\{\"count\": [0-9]+, \"sum\": [0-9]+, \"p50\": [0-9]+, \"p95\": [0-9]+, \"p99\": [0-9]+\\}" "$f"; then
                echo "${f}: stage_micros.${stage} missing or malformed (need count/sum/p50/p95/p99)" >&2
                file_ok=0
            fi
        done
    fi
    # The two end-to-end benches (fig18 library drive, fig20 daemon
    # drive) record the causal-trace critical-path table: a complete
    # attribution object whose segment keys mirror
    # ter_obs::trace::SEGMENTS, so regressions in where latency goes are
    # diffable from the committed artifacts alone.
    if grep -Eq '"bench": "(fig18_throughput|fig20_serve)"' "$f"; then
        cp_line=$(grep '"critical_path":' "$f" || true)
        if [[ -z "$cp_line" ]]; then
            echo "${f}: missing required field \"critical_path\"" >&2
            file_ok=0
        else
            for key in traces total_micros frontend_micros gate_micros \
                queue_wait_micros compute_micros barrier_micros wal_micros \
                fsync_exposed_micros notify_micros write_back_micros \
                other_micros; do
                if ! grep -Eq "\"critical_path\": \\{.*\"${key}\": [0-9]+" "$f"; then
                    echo "${f}: critical_path.${key} missing or malformed" >&2
                    file_ok=0
                fi
            done
        fi
    fi
    # The recovery bench records the full-vs-delta checkpoint sweep over
    # the production-scale window profiles: every sweep row must carry
    # the measured churn ratio, both stamp byte counts (full snapshot vs
    # incremental delta), and the delta-chain length the recovery ladder
    # replayed — the fields the delta-checkpoint guarantee is asserted
    # against.
    if grep -q '"bench": "fig19_recovery"' "$f"; then
        if ! grep -q '"sweep":' "$f"; then
            echo "${f}: missing required field \"sweep\"" >&2
            file_ok=0
        fi
        for key in churn_ratio full_bytes delta_bytes delta_over_full chain_len; do
            if ! grep -Eq "\"${key}\": [0-9]" "$f"; then
                echo "${f}: sweep field \"${key}\" missing or malformed" >&2
                file_ok=0
            fi
        done
        # The ≥1e5-tuple-window profile the delta guarantee is proven at.
        if ! grep -q '"window": 100000' "$f"; then
            echo "${f}: sweep lacks a 100000-tuple-window profile" >&2
            file_ok=0
        fi
    fi
    # The query bench records the standing-herd fan-out vs the
    # --notify-buffer backpressure bound: notify totals and the peak
    # un-drained backlog for both the draining and stalled herds.
    if grep -q '"bench": "fig21_query"' "$f"; then
        for key in notify_buffer_bytes notify_events notify_rows notify_bytes \
            backlog_high_water sheds; do
            if ! grep -Eq "\"${key}\": [0-9]" "$f"; then
                echo "${f}: herd field \"${key}\" missing or malformed" >&2
                file_ok=0
            fi
        done
        for run in draining stalled; do
            if ! grep -q "\"run\": \"${run}\"" "$f"; then
                echo "${f}: herd run \"${run}\" missing" >&2
                file_ok=0
            fi
        done
    fi
    # The serve bench additionally distills the headline answer: fsync
    # time left exposed on the ack path per batch, W=1 vs W=8.
    if grep -q '"bench": "fig20_serve"' "$f"; then
        for key in fsync_exposed_per_batch_w1_micros fsync_exposed_per_batch_w8_micros; do
            if ! grep -Eq "\"${key}\": [0-9]+" "$f"; then
                echo "${f}: missing required field \"${key}\"" >&2
                file_ok=0
            fi
        done
    fi
    if command -v python3 >/dev/null 2>&1; then
        if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$f" 2>/dev/null; then
            echo "${f}: not valid JSON" >&2
            file_ok=0
        fi
    fi
    if [[ $file_ok -eq 1 ]]; then
        echo "${f}: ok"
    else
        fail=1
    fi
done

if [[ $fail -ne 0 ]]; then
    echo "check_bench_schema: FAILED" >&2
    exit 1
fi
echo "check_bench_schema: all ${#files[@]} artifacts conform"
