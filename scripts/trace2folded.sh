#!/usr/bin/env bash
# Convert the `# trace` / `# span` lines of a ter_obs text exposition
# (a `--metrics-text` dump, a crash post-mortem, or `ter_serve metrics`
# output) into folded-stack format for flamegraph tooling:
#
#     batch;step;impute 1042
#     batch;wal 87
#
# One line per stack, weight in microseconds, ready for
# `flamegraph.pl` / `inferno-flamegraph` / speedscope. All retained
# traces are aggregated under a common `batch` root so identical stacks
# sum — the flame shows where the *typical* retained (i.e. slow) batch
# spends its end-to-end latency.
#
# Span durations nest (the `step` span covers its impute/traverse/
# refine/merge/barrier children), so parent frames are emitted with
# their *self* time only — flamegraph semantics, no double counting.
# Trace time not covered by any span surfaces as the root's self time.
#
# Usage: trace2folded.sh [dump.txt]   (stdin when no file is given)
set -euo pipefail

awk '
function flush_trace(    k, self, depth1, stepkids) {
    if (root_dur == "") return
    depth1 = 0
    stepkids = 0
    for (k in span_dur) {
        if (span_parent[k] == "batch") depth1 += span_dur[k]
        if (span_parent[k] == "step") stepkids += span_dur[k]
    }
    for (k in span_dur) {
        if (span_parent[k] == "batch") {
            if (k == "step") {
                self = span_dur[k] - stepkids
                if (self < 0) self = 0
                stacks["batch;step"] += self
            } else {
                stacks["batch;" k] += span_dur[k]
            }
        } else {
            stacks["batch;" span_parent[k] ";" k] += span_dur[k]
        }
    }
    self = root_dur - depth1
    if (self < 0) self = 0
    stacks["batch"] += self
    delete span_dur
    delete span_parent
    root_dur = ""
}
/^# trace / {
    flush_trace()
    for (i = 3; i <= NF; i++)
        if (split($i, kv, "=") == 2 && kv[1] == "dur") root_dur = kv[2]
    next
}
/^# span / {
    kind = ""; parent = ""; dur = 0
    for (i = 3; i <= NF; i++) {
        if (split($i, kv, "=") != 2) continue
        if (kv[1] == "kind") kind = kv[2]
        else if (kv[1] == "parent") parent = kv[2]
        else if (kv[1] == "dur") dur = kv[2]
    }
    if (kind == "" || kind == "batch") next
    # Shared spans (a covering fsync) repeat per trace; later spans of
    # the same kind within one trace accumulate.
    span_dur[kind] += dur
    if (parent != "") span_parent[kind] = parent
    next
}
END {
    flush_trace()
    for (k in stacks) if (stacks[k] > 0) print k, stacks[k]
}
' "${1:-/dev/stdin}" | LC_ALL=C sort
