//! End-to-end pipeline checks on preset datasets: accuracy, pruning
//! power, window/result-set invariants, and the dynamic-repository
//! extension (§5.5).

use ter_datasets::{co_window_pairs, preset, GenOptions, Preset};
use ter_ids::{evaluate, ErProcessor, Params, PruningMode, TerContext, TerIdsEngine};
use ter_repo::{DrIndex, PivotConfig};
use ter_rules::DiscoveryConfig;
use ter_text::KeywordSet;

#[test]
fn citations_accuracy_and_pruning_power() {
    let ds = preset(
        Preset::Citations,
        &GenOptions {
            scale: 0.3,
            missing_rate: 0.3,
            missing_attrs: 1,
            ..GenOptions::default()
        },
    );
    let keywords = ds.keywords();
    let ctx = TerContext::build(
        ds.repo.clone(),
        keywords.clone(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let params = Params {
        window: 120,
        ..Params::default()
    };
    let mut engine = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    let arrivals = ds.streams.arrivals();
    for a in &arrivals {
        engine.process(a);
    }
    let gt = co_window_pairs(
        &ds.topical_entity_pairs(&keywords),
        &arrivals,
        params.window,
    );
    let eval = evaluate(engine.reported(), &gt);
    assert!(
        eval.f_score > 0.7,
        "Citations F-score {:.3} (tp {}, fp {}, fn {})",
        eval.f_score,
        eval.tp,
        eval.fp,
        eval.fn_
    );
    let stats = engine.prune_stats();
    // The paper prunes 98%+; with scaled data and a single topic filter we
    // still expect the vast majority of pairs to be discarded cheaply.
    assert!(
        stats.total_pruned_pct() > 80.0,
        "pruning power too low: {:.1}%",
        stats.total_pruned_pct()
    );
    // Topic pruning dominates (Figure 4's shape).
    assert!(stats.topic > stats.prob);
}

#[test]
fn window_invariant_results_only_contain_live_tuples() {
    let ds = preset(
        Preset::Anime,
        &GenOptions {
            scale: 0.15,
            ..GenOptions::default()
        },
    );
    let keywords = KeywordSet::universe();
    let ctx = TerContext::build(
        ds.repo.clone(),
        keywords,
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let params = Params {
        window: 40,
        ..Params::default()
    };
    let mut engine = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    let arrivals = ds.streams.arrivals();
    for (i, a) in arrivals.iter().enumerate() {
        engine.process(a);
        // Every live result pair references only unexpired tuples.
        let live_ids: std::collections::HashSet<u64> = arrivals
            [i.saturating_sub(params.window - 1)..=i]
            .iter()
            .map(|x| x.record.id)
            .collect();
        for (x, y) in engine.results().iter() {
            assert!(live_ids.contains(&x), "expired tuple {x} in ES at step {i}");
            assert!(live_ids.contains(&y), "expired tuple {y} in ES at step {i}");
        }
    }
}

#[test]
fn universe_keywords_superset_of_topic_results() {
    let ds = preset(
        Preset::Bikes,
        &GenOptions {
            scale: 0.15,
            ..GenOptions::default()
        },
    );
    let params = Params {
        window: 60,
        ..Params::default()
    };
    let arrivals = ds.streams.arrivals();

    let run = |keywords: KeywordSet| {
        let ctx = TerContext::build(
            ds.repo.clone(),
            keywords,
            &PivotConfig::default(),
            &DiscoveryConfig::default(),
            16,
        );
        let mut e = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        for a in &arrivals {
            e.process(a);
        }
        e.reported().clone()
    };

    let topical = run(ds.keywords());
    let all = run(KeywordSet::universe());
    for pair in &topical {
        assert!(
            all.contains(pair),
            "topic-filtered result {pair:?} missing from unfiltered run"
        );
    }
    assert!(all.len() >= topical.len());
    assert!(!topical.is_empty());
}

/// §5.5: growing the repository dynamically (new complete tuples) must be
/// reflected by the DR-index and can only improve imputation support.
#[test]
fn dynamic_repository_extension() {
    let ds = preset(
        Preset::Citations,
        &GenOptions {
            scale: 0.15,
            repo_ratio: 0.2,
            ..GenOptions::default()
        },
    );
    let keywords = KeywordSet::universe();
    let pivots = ter_repo::PivotTable::select(&ds.repo, &PivotConfig::default());
    let mut repo = ds.repo.clone();
    let mut dr = DrIndex::build(&repo, &pivots, &keywords, 16);
    let before = dr.tree().len();

    // Promote the first 10 complete stream tuples into R (batch update).
    let newcomers: Vec<_> = ds
        .clean_streams
        .stream(0)
        .iter()
        .take(10)
        .cloned()
        .map(|mut r| {
            r.id += 5_000_000; // repository ids must not collide
            r
        })
        .collect();
    for r in newcomers {
        repo.insert(r);
        dr.insert_sample(&repo, &pivots, &keywords, repo.len() - 1);
    }
    assert_eq!(dr.tree().len(), before + 10);

    // Rules can be re-detected over the grown repository.
    let rules_after = ter_rules::detect_cdds(&repo, &DiscoveryConfig::default());
    assert!(!rules_after.is_empty());
}
