//! Failure injection: degenerate inputs the engine must survive without
//! panicking and with sensible semantics.

use ter_datasets::{generate, preset, AttrKind, AttrSpec, DatasetSpec, GenOptions, Preset};
use ter_ids::{ErProcessor, NaiveEngine, Params, PruningMode, TerContext, TerIdsEngine};
use ter_repo::{PivotConfig, Record, Repository, Schema};
use ter_rules::DiscoveryConfig;
use ter_stream::StreamSet;
use ter_text::{Dictionary, KeywordSet};

fn tiny_ctx(keywords: KeywordSet) -> (TerContext, Schema, Dictionary) {
    let schema = Schema::new(vec!["a", "b"]);
    let mut dict = Dictionary::new();
    let recs = vec![
        Record::from_texts(&schema, 100, &[Some("alpha beta"), Some("red")], &mut dict),
        Record::from_texts(
            &schema,
            101,
            &[Some("gamma delta"), Some("blue")],
            &mut dict,
        ),
    ];
    let repo = Repository::from_records(schema.clone(), recs);
    let ctx = TerContext::build(
        repo,
        keywords,
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    (ctx, schema, dict)
}

#[test]
fn empty_keyword_set_reports_nothing() {
    let (ctx, schema, mut dict) = {
        let d = Dictionary::new();
        let kw = KeywordSet::parse("", &d); // empty, not universe
        tiny_ctx(kw)
    };
    let s0 = vec![Record::from_texts(
        &schema,
        1,
        &[Some("alpha beta"), Some("red")],
        &mut dict,
    )];
    let s1 = vec![Record::from_texts(
        &schema,
        2,
        &[Some("alpha beta"), Some("red")],
        &mut dict,
    )];
    let mut e = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
    for a in StreamSet::new(vec![s0, s1]).arrivals() {
        e.process(&a);
    }
    // Identical tuples, but no keyword can ever match → empty result.
    assert!(e.reported().is_empty());
    // Everything must have been pruned by the topic rule.
    let st = e.prune_stats();
    assert_eq!(st.topic, st.total_pairs);
}

#[test]
fn unknown_keywords_behave_like_empty() {
    let d = Dictionary::new();
    let kw = KeywordSet::parse("entirely unknown words", &d);
    assert!(kw.is_empty());
}

#[test]
fn all_attributes_missing_tuple_is_survivable() {
    let (ctx, schema, mut dict) = tiny_ctx(KeywordSet::universe());
    let s0 = vec![Record::from_texts(&schema, 1, &[None, None], &mut dict)];
    let s1 = vec![Record::from_texts(
        &schema,
        2,
        &[Some("alpha beta"), Some("red")],
        &mut dict,
    )];
    let mut e = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
    for a in StreamSet::new(vec![s0, s1]).arrivals() {
        e.process(&a); // must not panic
    }
    // No rule can fire with zero present determinants → tuple 1 imputes to
    // empty values and cannot reach γ = 1.0.
    assert!(e.reported().is_empty());
}

#[test]
fn empty_repository_rules_disable_imputation_but_not_er() {
    // A repository with a single record yields no rules at all; complete
    // tuples must still match each other.
    let schema = Schema::new(vec!["a", "b"]);
    let mut dict = Dictionary::new();
    let repo = Repository::from_records(
        schema.clone(),
        vec![Record::from_texts(
            &schema,
            100,
            &[Some("x"), Some("y")],
            &mut dict,
        )],
    );
    let ctx = TerContext::build(
        repo,
        KeywordSet::universe(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    assert!(ctx.cdds.is_empty());
    let s0 = vec![Record::from_texts(
        &schema,
        1,
        &[Some("same thing"), Some("here")],
        &mut dict,
    )];
    let s1 = vec![Record::from_texts(
        &schema,
        2,
        &[Some("same thing"), Some("here")],
        &mut dict,
    )];
    let mut e = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
    for a in StreamSet::new(vec![s0, s1]).arrivals() {
        e.process(&a);
    }
    assert!(e.reported().contains(&(1, 2)));
}

#[test]
fn window_of_one_never_pairs() {
    let (ctx, schema, mut dict) = tiny_ctx(KeywordSet::universe());
    let s0 = vec![Record::from_texts(
        &schema,
        1,
        &[Some("alpha"), Some("red")],
        &mut dict,
    )];
    let s1 = vec![Record::from_texts(
        &schema,
        2,
        &[Some("alpha"), Some("red")],
        &mut dict,
    )];
    let params = Params {
        window: 1,
        ..Params::default()
    };
    let mut e = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    for a in StreamSet::new(vec![s0, s1]).arrivals() {
        e.process(&a);
    }
    // With w = 1 the previous tuple always expires before the next arrives.
    assert!(e.reported().is_empty());
}

#[test]
fn single_stream_yields_no_cross_stream_pairs() {
    let (ctx, schema, mut dict) = tiny_ctx(KeywordSet::universe());
    let s0 = vec![
        Record::from_texts(&schema, 1, &[Some("alpha"), Some("red")], &mut dict),
        Record::from_texts(&schema, 2, &[Some("alpha"), Some("red")], &mut dict),
    ];
    let mut e = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
    for a in StreamSet::new(vec![s0]).arrivals() {
        e.process(&a);
    }
    // Identical tuples but the same stream → out of scope by definition.
    assert!(e.reported().is_empty());
}

#[test]
fn extreme_missing_rate_all_methods_survive() {
    let spec = DatasetSpec {
        name: "extreme",
        attrs: vec![
            AttrSpec {
                name: "category",
                kind: AttrKind::Category,
            },
            AttrSpec {
                name: "name",
                kind: AttrKind::EntityName { tokens: 3 },
            },
            AttrSpec {
                name: "tags",
                kind: AttrKind::TopicPhrase { base: 3, noise: 1 },
            },
        ],
        topics: 2,
        vocab_per_topic: 10,
        size_a: 30,
        size_b: 30,
        match_fraction: 0.5,
        perturbation: 0.1,
    };
    let ds = generate(
        &spec,
        &GenOptions {
            missing_rate: 0.8, // the paper's hardest ξ
            missing_attrs: 2,  // m = d − 1
            ..GenOptions::default()
        },
    );
    let ctx = TerContext::build(
        ds.repo.clone(),
        KeywordSet::universe(),
        &PivotConfig::default(),
        &DiscoveryConfig {
            min_support: 2,
            min_constant_support: 2,
            ..DiscoveryConfig::default()
        },
        8,
    );
    let params = Params {
        window: 20,
        ..Params::default()
    };
    let mut full = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    let mut oracle = NaiveEngine::cdd_er(&ctx, params);
    for a in ds.streams.arrivals() {
        full.process(&a);
        oracle.process(&a);
    }
    let mut x: Vec<_> = full.reported().iter().copied().collect();
    let mut y: Vec<_> = oracle.reported().iter().copied().collect();
    x.sort_unstable();
    y.sort_unstable();
    assert_eq!(x, y, "engine diverged from oracle under ξ=0.8, m=2");
}

#[test]
fn songs_scale_smoke() {
    // Largest preset at reduced scale: only the indexed engine (a full
    // baseline sweep at this size belongs to the bench harness).
    let ds = preset(
        Preset::Songs,
        &GenOptions {
            scale: 0.1,
            ..GenOptions::default()
        },
    );
    let ctx = TerContext::build(
        ds.repo.clone(),
        ds.keywords(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let mut e = TerIdsEngine::new(
        &ctx,
        Params {
            window: 100,
            ..Params::default()
        },
        PruningMode::Full,
    );
    for a in ds.streams.arrivals() {
        e.process(&a);
    }
    assert!(e.prune_stats().total_pairs > 0);
}
