//! Failure injection: degenerate inputs the engine must survive without
//! panicking and with sensible semantics.

use ter_datasets::{generate, preset, AttrKind, AttrSpec, DatasetSpec, GenOptions, Preset};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{ErProcessor, NaiveEngine, Params, PruningMode, TerContext, TerIdsEngine};
use ter_repo::{PivotConfig, Record, Repository, Schema};
use ter_rules::DiscoveryConfig;
use ter_stream::StreamSet;
use ter_text::{Dictionary, KeywordSet};

fn tiny_ctx(keywords: KeywordSet) -> (TerContext, Schema, Dictionary) {
    let schema = Schema::new(vec!["a", "b"]);
    let mut dict = Dictionary::new();
    let recs = vec![
        Record::from_texts(&schema, 100, &[Some("alpha beta"), Some("red")], &mut dict),
        Record::from_texts(
            &schema,
            101,
            &[Some("gamma delta"), Some("blue")],
            &mut dict,
        ),
    ];
    let repo = Repository::from_records(schema.clone(), recs);
    let ctx = TerContext::build(
        repo,
        keywords,
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    (ctx, schema, dict)
}

#[test]
fn empty_keyword_set_reports_nothing() {
    let (ctx, schema, mut dict) = {
        let d = Dictionary::new();
        let kw = KeywordSet::parse("", &d); // empty, not universe
        tiny_ctx(kw)
    };
    let s0 = vec![Record::from_texts(
        &schema,
        1,
        &[Some("alpha beta"), Some("red")],
        &mut dict,
    )];
    let s1 = vec![Record::from_texts(
        &schema,
        2,
        &[Some("alpha beta"), Some("red")],
        &mut dict,
    )];
    let mut e = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
    for a in StreamSet::new(vec![s0, s1]).arrivals() {
        e.process(&a);
    }
    // Identical tuples, but no keyword can ever match → empty result.
    assert!(e.reported().is_empty());
    // Everything must have been pruned by the topic rule.
    let st = e.prune_stats();
    assert_eq!(st.topic, st.total_pairs);
}

#[test]
fn unknown_keywords_behave_like_empty() {
    let d = Dictionary::new();
    let kw = KeywordSet::parse("entirely unknown words", &d);
    assert!(kw.is_empty());
}

#[test]
fn all_attributes_missing_tuple_is_survivable() {
    let (ctx, schema, mut dict) = tiny_ctx(KeywordSet::universe());
    let s0 = vec![Record::from_texts(&schema, 1, &[None, None], &mut dict)];
    let s1 = vec![Record::from_texts(
        &schema,
        2,
        &[Some("alpha beta"), Some("red")],
        &mut dict,
    )];
    let mut e = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
    for a in StreamSet::new(vec![s0, s1]).arrivals() {
        e.process(&a); // must not panic
    }
    // No rule can fire with zero present determinants → tuple 1 imputes to
    // empty values and cannot reach γ = 1.0.
    assert!(e.reported().is_empty());
}

#[test]
fn all_attributes_missing_mid_window_is_skipped_with_count_not_fatal() {
    // Previously only tested as the *first* arrival; here the fully-missing
    // tuple lands mid-window, with live tuples on both streams, for both
    // the sequential and the sharded engine. Contract: the arrival is
    // *skipped with count* — it enters the window and is accounted as a
    // candidate pair for later arrivals (no silent drop), but with zero
    // present determinants no rule fires, its imputation is empty, and it
    // can never reach γ — and the engine must not panic.
    let (ctx, schema, mut dict) = tiny_ctx(KeywordSet::universe());
    let s0 = vec![
        Record::from_texts(&schema, 1, &[Some("alpha beta"), Some("red")], &mut dict),
        Record::from_texts(&schema, 3, &[None, None], &mut dict), // mid-window
        Record::from_texts(&schema, 5, &[Some("alpha beta"), Some("red")], &mut dict),
    ];
    let s1 = vec![
        Record::from_texts(&schema, 2, &[Some("alpha beta"), Some("red")], &mut dict),
        Record::from_texts(&schema, 4, &[Some("gamma delta"), Some("blue")], &mut dict),
    ];
    let streams = StreamSet::new(vec![s0, s1]);
    let arrivals = streams.arrivals();

    let mut seq = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
    let mut missing_step_matches = None;
    let mut pairs_counted_by_missing = 0;
    for a in &arrivals {
        let pairs_before = seq.prune_stats().total_pairs;
        let out = seq.process(a); // must not panic on the all-missing tuple
        if a.record.id == 3 {
            missing_step_matches = Some(out.new_matches);
            pairs_counted_by_missing = seq.prune_stats().total_pairs - pairs_before;
        }
    }
    // Skip-with-count: the fully-missing arrival reports nothing itself …
    assert_eq!(missing_step_matches, Some(vec![]));
    // … but its candidate pairs were counted, not silently dropped (one
    // other-stream tuple, id 2, was live when it arrived).
    assert_eq!(pairs_counted_by_missing, 1);
    // It stays live in the window like any other tuple …
    assert!(seq.live_ids().contains(&3));
    assert_eq!(seq.window_len(), 5);
    // … its imputation is the empty-candidate placeholder, not absent …
    let meta = seq.meta(3).expect("fully-missing tuple must have metadata");
    assert_eq!(meta.tuple.instance_count(), 1);
    // … and no pair involving it is ever reported.
    assert!(seq.reported().iter().all(|&(a, b)| a != 3 && b != 3));
    assert!(seq.reported().contains(&(1, 2)));

    // The sharded engine must take the identical decisions, batched.
    let mut par = ShardedTerIdsEngine::new(
        &ctx,
        Params::default(),
        PruningMode::Full,
        ExecConfig::new(2, 2),
    );
    par.step_batch(&arrivals); // must not panic either
    let mut seq_rep: Vec<_> = seq.reported().iter().copied().collect();
    let mut par_rep: Vec<_> = par.reported().iter().copied().collect();
    seq_rep.sort_unstable();
    par_rep.sort_unstable();
    assert_eq!(par_rep, seq_rep);
    assert_eq!(par.prune_stats(), seq.prune_stats());
    assert_eq!(par.live_ids(), seq.live_ids());
}

#[test]
fn empty_repository_rules_disable_imputation_but_not_er() {
    // A repository with a single record yields no rules at all; complete
    // tuples must still match each other.
    let schema = Schema::new(vec!["a", "b"]);
    let mut dict = Dictionary::new();
    let repo = Repository::from_records(
        schema.clone(),
        vec![Record::from_texts(
            &schema,
            100,
            &[Some("x"), Some("y")],
            &mut dict,
        )],
    );
    let ctx = TerContext::build(
        repo,
        KeywordSet::universe(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    assert!(ctx.cdds.is_empty());
    let s0 = vec![Record::from_texts(
        &schema,
        1,
        &[Some("same thing"), Some("here")],
        &mut dict,
    )];
    let s1 = vec![Record::from_texts(
        &schema,
        2,
        &[Some("same thing"), Some("here")],
        &mut dict,
    )];
    let mut e = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
    for a in StreamSet::new(vec![s0, s1]).arrivals() {
        e.process(&a);
    }
    assert!(e.reported().contains(&(1, 2)));
}

#[test]
fn window_of_one_never_pairs() {
    let (ctx, schema, mut dict) = tiny_ctx(KeywordSet::universe());
    let s0 = vec![Record::from_texts(
        &schema,
        1,
        &[Some("alpha"), Some("red")],
        &mut dict,
    )];
    let s1 = vec![Record::from_texts(
        &schema,
        2,
        &[Some("alpha"), Some("red")],
        &mut dict,
    )];
    let params = Params {
        window: 1,
        ..Params::default()
    };
    let mut e = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    for a in StreamSet::new(vec![s0, s1]).arrivals() {
        e.process(&a);
    }
    // With w = 1 the previous tuple always expires before the next arrives.
    assert!(e.reported().is_empty());
}

#[test]
fn single_stream_yields_no_cross_stream_pairs() {
    let (ctx, schema, mut dict) = tiny_ctx(KeywordSet::universe());
    let s0 = vec![
        Record::from_texts(&schema, 1, &[Some("alpha"), Some("red")], &mut dict),
        Record::from_texts(&schema, 2, &[Some("alpha"), Some("red")], &mut dict),
    ];
    let mut e = TerIdsEngine::new(&ctx, Params::default(), PruningMode::Full);
    for a in StreamSet::new(vec![s0]).arrivals() {
        e.process(&a);
    }
    // Identical tuples but the same stream → out of scope by definition.
    assert!(e.reported().is_empty());
}

#[test]
fn extreme_missing_rate_all_methods_survive() {
    let spec = DatasetSpec {
        name: "extreme",
        attrs: vec![
            AttrSpec {
                name: "category",
                kind: AttrKind::Category,
            },
            AttrSpec {
                name: "name",
                kind: AttrKind::EntityName { tokens: 3 },
            },
            AttrSpec {
                name: "tags",
                kind: AttrKind::TopicPhrase { base: 3, noise: 1 },
            },
        ],
        topics: 2,
        vocab_per_topic: 10,
        size_a: 30,
        size_b: 30,
        match_fraction: 0.5,
        perturbation: 0.1,
    };
    let ds = generate(
        &spec,
        &GenOptions {
            missing_rate: 0.8, // the paper's hardest ξ
            missing_attrs: 2,  // m = d − 1
            ..GenOptions::default()
        },
    );
    let ctx = TerContext::build(
        ds.repo.clone(),
        KeywordSet::universe(),
        &PivotConfig::default(),
        &DiscoveryConfig {
            min_support: 2,
            min_constant_support: 2,
            ..DiscoveryConfig::default()
        },
        8,
    );
    let params = Params {
        window: 20,
        ..Params::default()
    };
    let mut full = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    let mut oracle = NaiveEngine::cdd_er(&ctx, params);
    for a in ds.streams.arrivals() {
        full.process(&a);
        oracle.process(&a);
    }
    let mut x: Vec<_> = full.reported().iter().copied().collect();
    let mut y: Vec<_> = oracle.reported().iter().copied().collect();
    x.sort_unstable();
    y.sort_unstable();
    assert_eq!(x, y, "engine diverged from oracle under ξ=0.8, m=2");
}

#[test]
fn songs_scale_smoke() {
    // Largest preset at reduced scale: only the indexed engine (a full
    // baseline sweep at this size belongs to the bench harness).
    let ds = preset(
        Preset::Songs,
        &GenOptions {
            scale: 0.1,
            ..GenOptions::default()
        },
    );
    let ctx = TerContext::build(
        ds.repo.clone(),
        ds.keywords(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let mut e = TerIdsEngine::new(
        &ctx,
        Params {
            window: 100,
            ..Params::default()
        },
        PruningMode::Full,
    );
    for a in ds.streams.arrivals() {
        e.process(&a);
    }
    assert!(e.prune_stats().total_pairs > 0);
}
