//! The overhead guard: the telemetry layer must be effectively free.
//!
//! Two contracts, checked over identical engine runs with metrics
//! globally on vs. off:
//!
//! 1. **Bit-parity** — the reported per-arrival match lists are
//!    byte-for-byte identical. Metrics are write-only from the compute
//!    path; nothing they observe may feed back into a decision.
//! 2. **Within noise** — the instrumented run's best-of-3 wall time is
//!    within a generous factor of the uninstrumented best-of-3. The hot
//!    path adds a handful of relaxed atomic adds per *batch* (not per
//!    pair), so the true cost is well under a percent; the loose bound
//!    only exists to survive CI-container scheduling jitter.
//!
//! The causal tracing layer (`ter_obs::trace`) rides the same kill
//! switch and the same obligations: the off-arm of this guard is also
//! the tracing-off arm (spans share `set_enabled`), and the on-arm must
//! show traces were actually completed and retained — the guard must
//! not pass because tracing silently no-opped.

use std::time::{Duration, Instant};
use ter_datasets::{preset, GenOptions, Preset};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{ErProcessor, Params, PruningMode, TerContext};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;
use ter_stream::Arrival;

fn fixture() -> (TerContext, Vec<Vec<Arrival>>, Params) {
    let ds = preset(
        Preset::Citations,
        &GenOptions {
            scale: 0.25,
            ..GenOptions::default()
        },
    );
    let params = Params {
        window: 80,
        ..Params::default()
    };
    let keywords = ds.keywords();
    let ctx = TerContext::build(
        ds.repo.clone(),
        keywords,
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        params.fanout,
    );
    let batches = ds.streams.arrival_batches(8);
    (ctx, batches, params)
}

/// One full engine run; returns (wall time, every reported match list).
fn run_once(
    ctx: &TerContext,
    params: Params,
    batches: &[Vec<Arrival>],
) -> (Duration, Vec<Vec<(u64, u64)>>) {
    let mut engine =
        ShardedTerIdsEngine::new(ctx, params, PruningMode::Full, ExecConfig::new(4, 2));
    let t0 = Instant::now();
    let mut reported = Vec::new();
    for b in batches {
        reported.extend(engine.step_batch(b).into_iter().map(|o| o.new_matches));
    }
    (t0.elapsed(), reported)
}

#[test]
fn metrics_overhead_is_within_noise_and_outputs_bit_identical() {
    let (ctx, batches, params) = fixture();
    let runs = 3;

    // Interleave on/off runs so thermal/scheduler drift hits both arms.
    let mut best_on = Duration::MAX;
    let mut best_off = Duration::MAX;
    let mut reported_on = None;
    let mut reported_off = None;
    for _ in 0..runs {
        ter_obs::set_enabled(true);
        let (t, rep) = run_once(&ctx, params, &batches);
        best_on = best_on.min(t);
        if let Some(prev) = reported_on.replace(rep) {
            assert_eq!(
                &prev,
                reported_on.as_ref().unwrap(),
                "on-runs deterministic"
            );
        }
        ter_obs::set_enabled(false);
        let (t, rep) = run_once(&ctx, params, &batches);
        best_off = best_off.min(t);
        if let Some(prev) = reported_off.replace(rep) {
            assert_eq!(
                &prev,
                reported_off.as_ref().unwrap(),
                "off-runs deterministic"
            );
        }
    }
    ter_obs::set_enabled(true);

    // 1. Bit-parity: telemetry never feeds back into results.
    assert_eq!(
        reported_on, reported_off,
        "metrics-on and metrics-off runs must report identical matches"
    );

    // 2. Overhead within noise. The instrumentation is a few dozen
    // relaxed atomics per batch; 2x is pure scheduling-jitter headroom
    // on a loaded CI container, not a statement about the real cost.
    let ratio = best_on.as_secs_f64() / best_off.as_secs_f64().max(1e-9);
    assert!(
        ratio <= 2.0,
        "metrics-on best-of-{runs} ({best_on:?}) vs metrics-off ({best_off:?}): ratio {ratio:.3}"
    );

    // The on-runs actually recorded: the guard must not pass because
    // instrumentation silently no-opped.
    let rows = ter_obs::snapshot();
    let batches_total = rows
        .iter()
        .find(|r| r.name == "ter_engine_batches_total")
        .unwrap()
        .value;
    assert!(
        batches_total >= (runs * batches.len()) as u64,
        "instrumented runs must have counted their batches"
    );

    // Tracing arm: the causal-trace layer shares the kill switch, so the
    // off-runs above are also the tracing-off bit-parity arm. The on-runs
    // must have actually completed traces (library mode self-roots one
    // per batch) and the tail sampler must have retained at least one.
    let (cp, retained) = ter_obs::trace::snapshot();
    assert!(
        cp.traces >= (runs * batches.len()) as u64,
        "tracing-on runs must have completed one trace per batch \
         (got {} traces for {} batches)",
        cp.traces,
        runs * batches.len()
    );
    assert_eq!(
        cp.segment_sum(),
        cp.total_micros,
        "attribution table must partition its own total"
    );
    assert!(
        !retained.is_empty(),
        "tail sampler retained no traces from the instrumented runs"
    );
    assert!(
        retained
            .iter()
            .all(|t| t.spans.iter().any(|s| s.kind == ter_obs::trace::kind::STEP)),
        "every retained library-mode trace carries its STEP span"
    );
}
