//! Crash-recovery parity: an engine restored from (checkpoint + WAL
//! replay) at any cut point must be **bit-identical** to one that never
//! crashed — same per-step match lists (both for the replayed WAL suffix
//! and for everything processed after recovery), same live result set,
//! same reported history, same prune-statistic totals, and same imputed
//! tuples — for both `TerIdsEngine` and `ShardedTerIdsEngine` across all
//! five dataset presets.
//!
//! Each scenario simulates the full production protocol:
//!
//! 1. run an engine over a prefix of the stream, WAL-logging every batch
//!    *before* stepping it and checkpointing at a configured batch;
//! 2. "crash" (drop engine and store — anything not fsynced is gone);
//! 3. reopen the store, recover (newest checkpoint + WAL suffix replay),
//!    resume the feed from `Recovery::resume_seq` via the stream cursor;
//! 4. compare every observable against an uninterrupted oracle run.
//!
//! Cut/checkpoint placements include mid-window fills and a checkpoint
//! taken immediately after the first eviction boundary (window size 60,
//! batch 16 ⇒ batch 4 ends at arrival 64, just past the first eviction at
//! arrival 60) — the spot where expiry bookkeeping is most likely to be
//! dropped from a snapshot.

use std::fs;
use std::path::{Path, PathBuf};

use ter_datasets::{preset, GenOptions, Preset};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{EngineState, ErProcessor, Params, PruningMode, TerContext, TerIdsEngine};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;
use ter_store::{context_fingerprint, TerStore};
use ter_stream::Arrival;

const BATCH: usize = 16;
const WINDOW: usize = 60;

/// (checkpoint after batch, crash after batch): mid-window fill, a
/// checkpoint right past the first eviction boundary, and a long-replay
/// configuration with many evictions on both sides of the cut.
const SCENARIOS: [(u64, u64); 3] = [(1, 3), (4, 5), (2, 6)];

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p =
            std::env::temp_dir().join(format!("ter_recovery_parity_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        Self(p)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn build_ctx(p: Preset, scale: f64) -> (TerContext, Vec<Arrival>, Params) {
    let ds = preset(
        p,
        &GenOptions {
            scale,
            missing_rate: 0.3,
            missing_attrs: 1,
            ..GenOptions::default()
        },
    );
    let ctx = TerContext::build(
        ds.repo.clone(),
        ds.keywords(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let params = Params {
        window: WINDOW,
        ..Params::default()
    };
    let arrivals = ds.streams.arrivals();
    (ctx, arrivals, params)
}

/// Which engine kind a scenario drives.
#[derive(Clone, Copy)]
enum Kind {
    Sequential,
    Sharded,
}

fn make_engine<'a>(
    kind: Kind,
    ctx: &'a TerContext,
    params: Params,
) -> Box<dyn EngineUnderTest + 'a> {
    match kind {
        Kind::Sequential => Box::new(TerIdsEngine::new(ctx, params, PruningMode::Full)),
        Kind::Sharded => Box::new(ShardedTerIdsEngine::new(
            ctx,
            params,
            PruningMode::Full,
            ExecConfig::new(3, 2),
        )),
    }
}

/// The engine surface a recovery scenario needs: processing plus the
/// state hooks (which live on the concrete types, not on `ErProcessor`).
trait EngineUnderTest {
    fn step(&mut self, batch: &[Arrival]) -> Vec<Vec<(u64, u64)>>;
    fn export(&self) -> EngineState;
    fn import(&mut self, state: &EngineState) -> Result<(), String>;
}

impl EngineUnderTest for TerIdsEngine<'_> {
    fn step(&mut self, batch: &[Arrival]) -> Vec<Vec<(u64, u64)>> {
        self.step_batch(batch)
            .into_iter()
            .map(|o| o.new_matches)
            .collect()
    }
    fn export(&self) -> EngineState {
        self.export_state()
    }
    fn import(&mut self, state: &EngineState) -> Result<(), String> {
        self.import_state(state)
    }
}

impl EngineUnderTest for ShardedTerIdsEngine<'_> {
    fn step(&mut self, batch: &[Arrival]) -> Vec<Vec<(u64, u64)>> {
        self.step_batch(batch)
            .into_iter()
            .map(|o| o.new_matches)
            .collect()
    }
    fn export(&self) -> EngineState {
        self.export_state()
    }
    fn import(&mut self, state: &EngineState) -> Result<(), String> {
        self.import_state(state)
    }
}

/// Runs one kill-and-recover scenario and asserts bit-identity against
/// the oracle's per-step matches and final state.
#[allow(clippy::too_many_arguments)]
fn run_scenario(
    name: &str,
    kind: Kind,
    ctx: &TerContext,
    arrivals: &[Arrival],
    params: Params,
    oracle_steps: &[Vec<(u64, u64)>],
    oracle_final: &EngineState,
    ckpt_batch: u64,
    crash_batch: u64,
) {
    let dir = TempDir::new(&format!(
        "{name}_{}_{ckpt_batch}_{crash_batch}",
        match kind {
            Kind::Sequential => "seq",
            Kind::Sharded => "shard",
        }
    ));
    let fp = context_fingerprint(ctx, &params);
    let crash_at = (crash_batch as usize * BATCH).min(arrivals.len());

    // Phase 1: normal operation until the crash. WAL first, then step.
    {
        let mut store = TerStore::open(dir.path(), fp).expect("open store");
        let mut engine = make_engine(kind, ctx, params);
        for (i, batch) in arrivals[..crash_at].chunks(BATCH).enumerate() {
            store.log_batch(batch).expect("log batch");
            engine.step(batch);
            if i as u64 + 1 == ckpt_batch {
                store.checkpoint(&engine.export()).expect("checkpoint");
            }
        }
        // Crash: engine and store dropped, nothing flushed beyond fsyncs.
    }

    // Phase 2: recover.
    let store = TerStore::open(dir.path(), fp).expect("reopen store");
    let rec = store.recover().expect("recover");
    assert_eq!(rec.checkpoint_seq, ckpt_batch, "{name}: checkpoint seq");
    let mut engine = make_engine(kind, ctx, params);
    let state = rec.state.as_ref().expect("checkpoint state");
    engine.import(state).expect("import checkpoint");

    // The replayed WAL suffix must re-emit the oracle's matches for
    // exactly the arrivals between checkpoint and crash.
    let replay_from = rec.checkpoint_seq as usize * BATCH;
    let mut replay_steps = Vec::new();
    for batch in &rec.suffix {
        replay_steps.extend(engine.step(batch));
    }
    assert_eq!(
        replay_steps,
        &oracle_steps[replay_from..crash_at],
        "{name}: replayed steps diverged"
    );
    assert_eq!(
        rec.resume_seq() as usize * BATCH,
        crash_at,
        "{name}: resume point"
    );

    // Phase 3: resume the live feed where the WAL left off and finish the
    // stream; every subsequent step must match the oracle bit-for-bit.
    let mut post_steps = Vec::new();
    for batch in arrivals[crash_at..].chunks(BATCH) {
        post_steps.extend(engine.step(batch));
    }
    assert_eq!(
        post_steps,
        &oracle_steps[crash_at..],
        "{name}: post-recovery steps diverged"
    );

    // Final state: window, metas (imputed tuples, bit-exact), results,
    // reported history, prune stats, and grid cells all identical.
    assert_eq!(
        &engine.export(),
        oracle_final,
        "{name}: final state diverged"
    );
}

fn assert_recovery_parity(p: Preset, scale: f64) {
    let (ctx, arrivals, params) = build_ctx(p, scale);
    assert!(
        arrivals.len() > SCENARIOS.iter().map(|&(_, c)| c).max().unwrap() as usize * BATCH,
        "{}: stream too small for the configured cuts",
        p.name()
    );

    // Uninterrupted oracle (sequential; the sharded engine is bit-identical
    // to it by the PR 2 parity suite).
    let mut oracle = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    let oracle_steps: Vec<Vec<(u64, u64)>> = arrivals
        .iter()
        .map(|a| oracle.process(a).new_matches)
        .collect();
    assert!(
        oracle.prune_stats().total_pairs > 0,
        "{}: degenerate run, nothing compared",
        p.name()
    );
    let oracle_final = oracle.export_state();

    for &(ckpt_batch, crash_batch) in &SCENARIOS {
        for kind in [Kind::Sequential, Kind::Sharded] {
            run_scenario(
                p.name(),
                kind,
                &ctx,
                &arrivals,
                params,
                &oracle_steps,
                &oracle_final,
                ckpt_batch,
                crash_batch,
            );
        }
    }
}

#[test]
fn citations_recovery_parity() {
    assert_recovery_parity(Preset::Citations, 0.16);
}

#[test]
fn anime_recovery_parity() {
    assert_recovery_parity(Preset::Anime, 0.14);
}

#[test]
fn bikes_recovery_parity() {
    assert_recovery_parity(Preset::Bikes, 0.12);
}

#[test]
fn ebooks_recovery_parity() {
    assert_recovery_parity(Preset::EBooks, 0.12);
}

#[test]
fn songs_recovery_parity() {
    assert_recovery_parity(Preset::Songs, 0.06);
}

/// A checkpoint written by the sequential engine must restore into the
/// sharded engine (and vice versa) and continue bit-identically — the
/// snapshot representation is engine-agnostic, so operators can change
/// the execution configuration across a restart.
#[test]
fn cross_engine_recovery() {
    let (ctx, arrivals, params) = build_ctx(Preset::Citations, 0.14);
    let dir = TempDir::new("cross");
    let fp = context_fingerprint(&ctx, &params);
    let crash_at = 5 * BATCH;

    let mut oracle = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    let oracle_steps: Vec<Vec<(u64, u64)>> = arrivals
        .iter()
        .map(|a| oracle.process(a).new_matches)
        .collect();

    {
        let mut store = TerStore::open(dir.path(), fp).unwrap();
        let mut seq = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        for (i, batch) in arrivals[..crash_at].chunks(BATCH).enumerate() {
            store.log_batch(batch).unwrap();
            seq.step_batch(batch);
            if i == 3 {
                store.checkpoint(&seq.export_state()).unwrap();
            }
        }
    }

    let store = TerStore::open(dir.path(), fp).unwrap();
    let rec = store.recover().unwrap();
    let mut sharded =
        ShardedTerIdsEngine::new(&ctx, params, PruningMode::Full, ExecConfig::new(4, 2));
    sharded
        .import_state(rec.state.as_ref().unwrap())
        .expect("sequential checkpoint into sharded engine");
    rec.replay_into(&mut sharded);

    let mut steps = Vec::new();
    for batch in arrivals[crash_at..].chunks(BATCH) {
        steps.extend(sharded.step_batch(batch).into_iter().map(|o| o.new_matches));
    }
    assert_eq!(steps, &oracle_steps[crash_at..]);
    assert_eq!(sharded.export_state(), oracle.export_state());
}

/// Torn WAL tails lose only the torn batch: cutting the log mid-frame
/// recovers to the last committed batch and the engine re-derives the
/// rest from the live feed, staying bit-identical throughout.
#[test]
fn torn_wal_tail_recovers_to_prefix() {
    let (ctx, arrivals, params) = build_ctx(Preset::Citations, 0.14);
    let dir = TempDir::new("torn");
    let fp = context_fingerprint(&ctx, &params);
    let batches = 4;

    let wal_path = {
        let mut store = TerStore::open(dir.path(), fp).unwrap();
        for batch in arrivals[..batches * BATCH].chunks(BATCH) {
            store.log_batch(batch).unwrap();
        }
        dir.path().join(ter_store::store::WAL_FILE)
    };
    // Tear the last frame: chop 7 bytes off the file.
    let bytes = fs::read(&wal_path).unwrap();
    fs::write(&wal_path, &bytes[..bytes.len() - 7]).unwrap();

    let store = TerStore::open(dir.path(), fp).unwrap();
    assert_eq!(store.wal_seq(), batches as u64 - 1, "torn batch dropped");
    let rec = store.recover().unwrap();
    assert!(rec.state.is_none());
    assert_eq!(rec.suffix.len(), batches - 1);

    // Replaying the surviving prefix matches the oracle over it.
    let mut oracle = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    for batch in arrivals[..(batches - 1) * BATCH].chunks(BATCH) {
        oracle.step_batch(batch);
    }
    let mut recovered = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    rec.replay_into(&mut recovered);
    assert_eq!(recovered.export_state(), oracle.export_state());
}
