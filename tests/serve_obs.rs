//! Observability integration suite: the telemetry a *live* daemon
//! exposes must be scrapeable three ways (the `MetricsDump` wire verb,
//! the `--metrics-text` exposition file, the `ter_serve metrics` CLI)
//! and must survive the deaths the flight recorder exists for — an
//! injected step-stage panic and a bare SIGKILL. The causal-trace
//! layer rides along: the `TraceDump` verb and the `ter_serve trace`
//! CLI must expose one completed end-to-end trace per acked batch,
//! and the trace table must survive in post-mortem dumps.

mod harness;

use std::process::Command;

use ter_ids::ErProcessor;

use harness::{Daemon, TempDir, BATCH};

/// Metric-row lookup by exact registry name.
fn value_of(rows: &[ter_obs::MetricRow], name: &str) -> u64 {
    rows.iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("metric {name} missing from dump"))
        .value
}

/// A live daemon's registry, scraped over the wire mid-run, must show
/// every layer moving: engine stage histograms, store WAL/fsync
/// counters, serve connection/read/write counters, query notify
/// counters — and the numbers must be consistent with what `StatsEx`
/// and the final `ServeReport` say about the same run.
#[test]
fn metrics_dump_reports_every_layer_of_a_live_daemon() {
    let (ctx, streams, params) = harness::build_oracle_inputs();
    let batches: Vec<_> = streams
        .arrival_batches(BATCH)
        .into_iter()
        .take(12)
        .collect();
    let (_, oracle) = harness::oracle_run(&ctx, params, &batches);

    let dir = TempDir::new("obs_live");
    let daemon = Daemon::spawn(dir.path(), &[]);
    let mut feeder = daemon.client();
    let mut subscriber = daemon.client();

    // A standing query so the notify counters move.
    let ack = subscriber.subscribe(1, 0, "match(a, b)").unwrap();
    assert_eq!(ack.seq, 0);
    for b in &batches {
        feeder.ingest_wait(b).unwrap();
    }
    // One-shot pattern query so the oneshot/eval metrics move.
    let (seq, rows) = feeder.pattern_query("match(a, b)").unwrap();
    assert_eq!(seq, batches.len() as u64);
    let mut want: Vec<Vec<u64>> = oracle
        .results()
        .iter()
        .flat_map(|(a, b)| [vec![a, b], vec![b, a]])
        .collect();
    want.sort_unstable();
    assert_eq!(rows, want, "pattern query parity while instrumented");

    let (metric_rows, flight) = feeder.metrics_dump().unwrap();
    let stats_ex = feeder.stats_ex().unwrap();

    // ---- engine: every stage histogram saw every batch ----
    let n = batches.len() as u64;
    assert_eq!(value_of(&metric_rows, "ter_engine_batches_total"), n);
    for stage in [
        "ter_engine_impute_micros",
        "ter_engine_traverse_micros",
        "ter_engine_refine_micros",
        "ter_engine_merge_micros",
        "ter_serve_step_micros",
    ] {
        assert_eq!(value_of(&metric_rows, stage), n, "{stage} count");
    }
    // ---- store: appends, fsyncs, cadence checkpoints ----
    assert_eq!(value_of(&metric_rows, "ter_store_wal_append_micros"), n);
    assert!(value_of(&metric_rows, "ter_store_wal_append_bytes_total") > 0);
    let fsyncs = value_of(&metric_rows, "ter_store_fsyncs_total");
    assert!(fsyncs >= 1, "at least one group-commit fsync");
    assert_eq!(value_of(&metric_rows, "ter_store_fsync_micros"), fsyncs);
    // checkpoint-every 4 (harness base flags), 12 batches in.
    assert_eq!(value_of(&metric_rows, "ter_store_checkpoints_total"), 3);
    assert_eq!(value_of(&metric_rows, "ter_store_last_checkpoint_seq"), 12);
    // ---- serve front end ----
    assert!(value_of(&metric_rows, "ter_serve_accepts_total") >= 2);
    assert!(value_of(&metric_rows, "ter_serve_connections") >= 2);
    assert!(value_of(&metric_rows, "ter_serve_read_parse_micros") > 0);
    assert!(value_of(&metric_rows, "ter_serve_write_micros") > 0);
    // ---- query layer ----
    assert_eq!(value_of(&metric_rows, "ter_query_subscribers"), 1);
    assert_eq!(value_of(&metric_rows, "ter_query_oneshot_total"), 1);
    assert_eq!(
        value_of(&metric_rows, "ter_query_oneshot_rows_total"),
        rows.len() as u64
    );
    assert_eq!(value_of(&metric_rows, "ter_query_eval_micros"), 1);
    assert!(
        value_of(&metric_rows, "ter_query_notify_events_total") > 0,
        "the sliding window must have pushed at least one notification"
    );
    assert!(value_of(&metric_rows, "ter_query_notify_bytes_total") > 0);

    // ---- StatsEx consistency with the registry ----
    assert_eq!(stats_ex.base.next_batch_seq, n);
    assert!(stats_ex.uptime_micros > 0);
    assert_eq!(stats_ex.subscribers, 1);
    assert!(stats_ex.connections >= 2);
    assert!(
        stats_ex.fsyncs >= fsyncs,
        "stats_ex fsyncs ({}) behind an earlier scrape ({fsyncs})",
        stats_ex.fsyncs
    );

    // ---- flight recorder: batches, fsyncs, checkpoints, query trace ----
    for k in [
        ter_obs::kind::BATCH,
        ter_obs::kind::IMPUTE,
        ter_obs::kind::WAL_APPEND,
        ter_obs::kind::FSYNC,
        ter_obs::kind::CHECKPOINT,
        ter_obs::kind::CONN_OPEN,
        ter_obs::kind::QUERY,
        ter_obs::kind::QUERY_ATOM,
        ter_obs::kind::NOTIFY,
    ] {
        assert!(
            flight.iter().any(|e| e.kind == k),
            "no {} event in the flight ring",
            ter_obs::kind::name(k)
        );
    }
    // Flight timestamps arrive oldest→newest.
    assert!(flight.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));

    // ---- causal traces: one end-to-end trace per acked batch ----
    // Every ingest above was acked before this scrape, and a trace ends
    // strictly before its ack is buffered, so the table must account for
    // all n batches — and must partition its own total exactly.
    let (cp, traces) = feeder.trace_dump().unwrap();
    assert_eq!(cp.traces, n, "one completed trace per acked batch");
    assert!(cp.total_micros > 0, "end-to-end latency accumulated");
    assert_eq!(
        cp.segment_sum(),
        cp.total_micros,
        "attribution segments must partition the measured total"
    );
    assert!(!traces.is_empty(), "tail sampler retained traces");
    for t in &traces {
        assert!(t.covered >= 1, "every fsync covers at least its own batch");
        assert!(t.dur > 0, "retained trace has a measured duration");
    }
    // The full daemon path shows up as spans somewhere in the retained
    // set: frontend read → gate → queue wait → step (+ its stages) →
    // WAL append → covering fsync → notify fan-out → ack write-back.
    {
        use ter_obs::trace::kind;
        for k in [
            kind::FRONTEND,
            kind::GATE,
            kind::QUEUE_WAIT,
            kind::STEP,
            kind::IMPUTE,
            kind::TRAVERSE,
            kind::REFINE,
            kind::MERGE,
            kind::WAL,
            kind::FSYNC,
            kind::NOTIFY,
            kind::WRITE_BACK,
        ] {
            assert!(
                traces.iter().any(|t| t.spans.iter().any(|s| s.kind == k)),
                "no {} span in any retained trace",
                kind::name(k)
            );
        }
    }

    // ---- the CLI scrape renders the same registry as parseable text ----
    let out = Command::new(env!("CARGO_BIN_EXE_ter_serve"))
        .args(["metrics", "--addr", &daemon.addr.to_string()])
        .output()
        .expect("run ter_serve metrics");
    assert!(out.status.success(), "metrics CLI failed: {out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    let parsed = ter_obs::parse_dump(&text).expect("CLI exposition parses");
    assert_eq!(parsed.reason, "scrape");
    assert_eq!(parsed.values["ter_engine_batches_total"], n);
    assert!(parsed.values["ter_engine_traverse_micros_count"] >= n);
    assert!(parsed.values["ter_store_fsync_micros_count"] >= 1);
    assert!(parsed.values["ter_query_notify_events_total"] >= 1);
    assert!(!parsed.flight.is_empty());
    // The scrape carries the trace lines too (the flamegraph-recipe
    // contract: `ter_serve metrics | trace2folded.sh` works remotely).
    assert_eq!(parsed.critical_path.expect("scrape has table").traces, n);
    assert!(!parsed.traces.is_empty(), "scrape carries retained traces");

    // ---- and the trace CLI renders the same trace table ----
    let out = Command::new(env!("CARGO_BIN_EXE_ter_serve"))
        .args(["trace", "--addr", &daemon.addr.to_string()])
        .output()
        .expect("run ter_serve trace");
    assert!(out.status.success(), "trace CLI failed: {out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("critical path over"),
        "trace CLI prints the attribution table:\n{text}"
    );
    assert!(
        text.contains("batch seq="),
        "trace CLI prints retained slow traces:\n{text}"
    );

    let mut control = daemon.client();
    control.shutdown().unwrap();
    daemon.wait_graceful();
}

/// An injected step-stage panic must not lose the flight recorder: the
/// daemon's last act before re-raising is an atomic dump with
/// `reason=panic`, and the ring must still hold the batches leading up
/// to the death.
#[test]
fn panic_path_dump_survives_and_parses() {
    let (_, streams, _) = harness::build_oracle_inputs();
    let batches: Vec<_> = streams.arrival_batches(BATCH).into_iter().take(8).collect();

    let dir = TempDir::new("obs_panic");
    let dump = dir.path().join("metrics.txt");
    let daemon = Daemon::spawn(
        dir.path(),
        &[
            "--metrics-text",
            dump.to_str().unwrap(),
            "--panic-on-batch",
            "5",
        ],
    );
    let mut feeder = daemon.client();
    for (i, b) in batches.iter().enumerate() {
        if feeder.ingest_wait(b).is_err() {
            assert!(i >= 5, "connection died before the injected batch");
            break;
        }
    }
    let status = daemon.wait_exit();
    assert!(!status.success(), "an injected panic must not exit 0");

    let text = std::fs::read_to_string(&dump).expect("panic dump written");
    let parsed = ter_obs::parse_dump(&text).expect("panic dump parses");
    assert_eq!(parsed.reason, "panic");
    assert_eq!(
        parsed.values["ter_engine_batches_total"], 5,
        "batches 0..=4 stepped before the injected panic at 5"
    );
    assert!(
        parsed.flight.iter().any(|e| e.kind == ter_obs::kind::PANIC),
        "the post-mortem must record the panic event itself"
    );
    assert!(
        parsed.flight.iter().any(|e| e.kind == ter_obs::kind::BATCH),
        "the ring must still hold the batches leading up to the death"
    );
}

/// SIGKILL mid-stream: the exposition file rewritten on every cadence
/// checkpoint must survive as a consistent pre-kill snapshot whose
/// `ter_store_last_checkpoint_seq` the restarted daemon actually covers.
#[test]
fn sigkill_leaves_a_parseable_dump_covering_the_last_checkpoint() {
    let (_, streams, _) = harness::build_oracle_inputs();
    let batches: Vec<_> = streams
        .arrival_batches(BATCH)
        .into_iter()
        .take(16)
        .collect();

    let dir = TempDir::new("obs_kill");
    let dump = dir.path().join("metrics.txt");
    let daemon = Daemon::spawn(dir.path(), &["--metrics-text", dump.to_str().unwrap()]);
    let mut feeder = daemon.client();
    for b in &batches {
        feeder.ingest_wait(b).unwrap();
    }
    daemon.kill9();

    let text = std::fs::read_to_string(&dump).expect("cadence dump written before the kill");
    let parsed = ter_obs::parse_dump(&text).expect("pre-kill dump parses");
    assert_eq!(parsed.reason, "checkpoint");
    let ckpt_seq = parsed.values["ter_store_last_checkpoint_seq"];
    assert!(ckpt_seq > 0, "at least one cadence checkpoint dumped");
    assert_eq!(ckpt_seq % 4, 0, "checkpoints land on the cadence");
    // The post-mortem carries the causal-trace table too: the pre-kill
    // snapshot must show completed traces, and the sampler's retained
    // traces must round-trip through the text exposition.
    let cp = parsed
        .critical_path
        .expect("cadence dump carries the critical-path table");
    assert!(cp.traces > 0, "traces completed before the kill");
    assert_eq!(cp.segment_sum(), cp.total_micros);
    assert!(
        !parsed.traces.is_empty(),
        "retained traces survive in the pre-kill dump"
    );

    // The restarted daemon must resume at (at least) the position the
    // dump claims is checkpointed — the dump never overstates dura-
    // bility, because it is written after the checkpoint lands.
    let daemon = Daemon::spawn(dir.path(), &[]);
    let mut client = daemon.client();
    let stats = client.stats().unwrap();
    assert!(
        stats.next_batch_seq >= ckpt_seq,
        "recovery resumed at {} but the pre-kill dump promised {ckpt_seq}",
        stats.next_batch_seq
    );
    client.shutdown().unwrap();
    daemon.wait_graceful();
}
