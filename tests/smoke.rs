//! Fast CI smoke: the full imputation → pruning → refinement pipeline on a
//! tiny preset (`scale = 0.1`), mirroring the `health_community` example's
//! scenario shape. Runs in well under a second so CI always exercises the
//! whole engine even when the longer suites are the ones that regress.

use ter_datasets::{co_window_pairs, preset, GenOptions, Preset};
use ter_ids::{evaluate, ErProcessor, Params, PruningMode, TerContext, TerIdsEngine};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;

#[test]
fn tiny_preset_pipeline_end_to_end() {
    let ds = preset(
        Preset::Citations,
        &GenOptions {
            scale: 0.1,
            missing_rate: 0.3,
            missing_attrs: 1,
            ..GenOptions::default()
        },
    );
    let keywords = ds.keywords();
    let ctx = TerContext::build(
        ds.repo.clone(),
        keywords.clone(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    // Pre-computation actually happened: CDD rules were discovered from the
    // repository, so incomplete arrivals go through real imputation.
    assert!(!ctx.cdds.is_empty(), "no CDD rules discovered");

    let params = Params {
        window: 60,
        ..Params::default()
    };
    let mut engine = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    let arrivals = ds.streams.arrivals();
    assert!(!arrivals.is_empty());
    for a in &arrivals {
        engine.process(a);
    }

    // Refinement reported something, and it is not garbage: the reported
    // pairs score reasonably against the topical ground truth.
    let gt = co_window_pairs(
        &ds.topical_entity_pairs(&keywords),
        &arrivals,
        params.window,
    );
    assert!(!gt.is_empty(), "degenerate ground truth at this scale");
    let eval = evaluate(engine.reported(), &gt);
    assert!(
        eval.f_score > 0.5,
        "smoke F-score {:.3} (tp {}, fp {}, fn {})",
        eval.f_score,
        eval.tp,
        eval.fp,
        eval.fn_
    );

    // Pruning fired on every tier it tracks pairs for.
    let stats = engine.prune_stats();
    assert!(stats.total_pairs > 0);
    assert!(
        stats.total_pruned_pct() > 50.0,
        "pruning power too low: {:.1}%",
        stats.total_pruned_pct()
    );
}

/// The engine must report the same pairs with pair-level pruning on and off
/// (grid-only refines every surfaced candidate exactly) — a cheap guard
/// that pruning is *sound* on the smoke data.
#[test]
fn tiny_preset_pruning_is_lossless() {
    let ds = preset(
        Preset::Citations,
        &GenOptions {
            scale: 0.1,
            ..GenOptions::default()
        },
    );
    let keywords = ds.keywords();
    let ctx = TerContext::build(
        ds.repo.clone(),
        keywords,
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let params = Params {
        window: 60,
        ..Params::default()
    };
    let arrivals = ds.streams.arrivals();

    let mut full = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    let mut none = TerIdsEngine::new(&ctx, params, PruningMode::GridOnly);
    for a in &arrivals {
        full.process(a);
        none.process(a);
    }
    let mut with_pruning: Vec<_> = full.reported().iter().copied().collect();
    let mut without: Vec<_> = none.reported().iter().copied().collect();
    with_pruning.sort_unstable();
    without.sort_unstable();
    assert_eq!(with_pruning, without, "pruning changed the reported pairs");
}
