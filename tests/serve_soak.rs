//! Connection-scalability soak for the event-driven front end: a herd of
//! standing connections plus connect/query/disconnect churn, all while a
//! single ordered feeder drives the full preset stream.
//!
//! The gates:
//!
//! 1. **Bounded threads** — the daemon serves `TER_SOAK_CONNS`
//!    connections (default 64; CI's soak leg sets 256) on a fixed I/O
//!    pool, so its OS thread count (scraped from `/proc/<pid>/status`)
//!    must stay far below the connection count and never scale with it.
//! 2. **Stats parity** — after the soak, final pruning statistics and
//!    window contents are bit-identical to a never-crashed in-process
//!    oracle run: thousands of interleaved queries and connection churn
//!    perturbed nothing.
//!
//! Ingest stays on ONE ordered connection — the engine's contract is a
//! single total order of arrivals — while the churn herd exercises the
//! front end with read-only verbs, exactly the deployment shape the
//! README documents.
//!
//! Linux-only: the thread gate reads `/proc`.
#![cfg(target_os = "linux")]

mod harness;

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use harness::{build_oracle_inputs, oracle_run, Daemon, TempDir, BATCH};
use ter_ids::ErProcessor;
use ter_serve::{ClientError, SubEvent, SubscriptionFold};

/// Reads `Threads:` from `/proc/<pid>/status`.
fn thread_count(pid: u32) -> usize {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).expect("read proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("parse thread count")
}

fn soak_conns() -> usize {
    std::env::var("TER_SOAK_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The front end must serve `TER_SOAK_CONNS` concurrent connections on a
/// bounded thread pool with zero effect on engine output.
#[test]
fn soak_connections_bounded_threads_and_oracle_parity() {
    let conns = soak_conns();
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    let (_, oracle) = oracle_run(&ctx, params, &batches);

    let dir = TempDir::new("soak");
    let daemon = Daemon::spawn(
        dir.path(),
        &[
            "--io-threads",
            "2",
            "--flush-window",
            "4",
            "--flush-interval-ms",
            "5",
        ],
    );
    let addr = daemon.addr;
    let baseline = thread_count(daemon.pid());

    // ---- the standing herd: idle connections that just sit there ----
    let idle: Vec<TcpStream> = (0..conns)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();

    // ---- churn + queries while the feeder drives the stream ----
    let stop = AtomicBool::new(false);
    let (served_stats, peak_threads) = std::thread::scope(|scope| {
        // Churners: connect, issue read-only verbs, disconnect, repeat —
        // admission and teardown under load, interleaved with the feed.
        for _ in 0..4 {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let mut c = daemon.client();
                    let _ = c.window().expect("window query");
                    let _ = c.stats().expect("stats query");
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        // The single ordered feeder — the engine's ingest contract.
        let feeder = scope.spawn(|| {
            let mut c = daemon.client();
            for batch in &batches {
                c.ingest_wait(batch).expect("soak ingest");
            }
            c.stats().expect("final stats")
        });
        // Thread gate while the herd stands and the feed runs.
        let mut peak = 0usize;
        while !feeder.is_finished() {
            peak = peak.max(thread_count(daemon.pid()));
            std::thread::sleep(Duration::from_millis(10));
        }
        peak = peak.max(thread_count(daemon.pid()));
        let served_stats = feeder.join().expect("feeder");
        stop.store(true, Ordering::Relaxed);
        (served_stats, peak)
    });

    // The pool is fixed: engine + commit + acceptor + 2 I/O + worker
    // threads. 16 is generous headroom for all of those and still orders
    // of magnitude below a thread-per-connection front end at 256 conns.
    assert!(
        peak_threads <= 16,
        "daemon used {peak_threads} threads under {conns} connections \
         (baseline {baseline}) — the front end is scaling threads with connections"
    );
    assert!(
        conns > 16,
        "soak misconfigured: TER_SOAK_CONNS={conns} cannot distinguish \
         a bounded pool from thread-per-connection"
    );

    // ---- oracle parity: the churn perturbed nothing ----
    assert_eq!(served_stats.next_batch_seq, batches.len() as u64);
    assert_eq!(
        served_stats.stats,
        oracle.prune_stats(),
        "pruning statistics"
    );
    let mut client = daemon.client();
    let window = client.window().expect("window");
    assert_eq!(window.len, oracle.window_len());
    assert_eq!(window.live_ids, oracle.live_ids());

    // ---- the connection gauge deflates with the herd ----
    // While the herd stood, the gauge counted it; once the idle
    // connections drop, the daemon must notice every EOF and walk the
    // gauge back to (about) this one surviving control connection — a
    // leak here means dead Conn entries pinned in the poll loop.
    let inflated = client.stats_ex().expect("stats_ex").connections;
    assert!(
        inflated as usize > conns,
        "gauge {inflated} never counted the {conns}-connection herd"
    );
    drop(idle);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let settled = loop {
        let now = client.stats_ex().expect("stats_ex").connections;
        if now <= 2 {
            break now;
        }
        if std::time::Instant::now() >= deadline {
            panic!("connection gauge stuck at {now} 10s after the herd disconnected");
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(settled >= 1, "the control connection itself still counts");

    client.shutdown().expect("graceful shutdown");
    daemon.wait_graceful();
}

/// One slow subscriber must not be allowed to stall ingest: with a tiny
/// `--notify-buffer`, a subscriber on a firehose pattern that never
/// reads its socket is shed to `Lagged{resync_seq}` once its outbound
/// backlog crosses the bound, while
///
/// * the single ordered feeder completes the full stream with exact
///   pruning-stats and window parity against the in-process oracle,
/// * a healthy subscriber on the same daemon folds its notification
///   stream to the one-shot query bit-identically with no `Lagged`, and
/// * the daemon's thread count stays inside the fixed-pool gate.
///
/// Afterwards the shed subscriber resubscribes quoting the advertised
/// `resync_seq` and is made whole by the snapshot — the documented
/// recovery contract.
#[test]
fn slow_subscriber_sheds_to_lagged_without_stalling_ingest() {
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    let (_, oracle) = oracle_run(&ctx, params, &batches);

    let dir = TempDir::new("lag");
    let daemon = Daemon::spawn(
        dir.path(),
        &["--io-threads", "2", "--notify-buffer", "4096"],
    );

    // A small standing herd so shedding runs under concurrent load.
    let idle: Vec<TcpStream> = (0..16)
        .map(|_| TcpStream::connect(daemon.addr).expect("idle connect"))
        .collect();

    // The slow subscriber: an unselective three-way cross product —
    // every window slide churns thousands of rows — and then it never
    // touches its socket again until the feed is over.
    let mut slow = daemon.client();
    let slow_pattern = "live(a), live(b), live(c)";
    let ack = slow.subscribe(1, 0, slow_pattern).expect("subscribe slow");
    assert!(ack.rows.is_empty(), "fresh daemon, empty snapshot");

    // The healthy subscriber: selective pattern, drained continuously.
    let mut healthy = daemon.client();
    let healthy_pattern = "match(a, b) where topical(a)";
    let ack = healthy
        .subscribe(1, 0, healthy_pattern)
        .expect("subscribe healthy");
    let mut healthy_fold = SubscriptionFold::start(&ack);

    let stop = AtomicBool::new(false);
    let (served_stats, healthy_fold, peak_threads) = std::thread::scope(|scope| {
        let feeder = scope.spawn(|| {
            let mut c = daemon.client();
            for batch in &batches {
                c.ingest_wait(batch).expect("soak ingest");
            }
            c.stats().expect("final stats")
        });
        let drainer = scope.spawn(|| {
            healthy
                .set_io_timeout(Some(Duration::from_millis(300)))
                .expect("set timeout");
            loop {
                match healthy.next_event() {
                    Ok(ev) => healthy_fold.apply(&ev),
                    // Quiet socket: keep listening until the feed ends.
                    Err(ClientError::Wire(_)) => {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    Err(e) => panic!("healthy subscriber: {e}"),
                }
            }
            healthy_fold
        });
        let mut peak = 0usize;
        while !feeder.is_finished() {
            peak = peak.max(thread_count(daemon.pid()));
            std::thread::sleep(Duration::from_millis(10));
        }
        let served_stats = feeder.join().expect("feeder");
        stop.store(true, Ordering::Relaxed);
        let healthy_fold = drainer.join().expect("drainer");
        (served_stats, healthy_fold, peak)
    });

    assert!(
        peak_threads <= 16,
        "daemon used {peak_threads} threads — a lagging subscriber must \
         not grow the pool"
    );

    // ---- ingest was never degraded: exact oracle parity ----
    assert_eq!(served_stats.next_batch_seq, batches.len() as u64);
    assert_eq!(
        served_stats.stats,
        oracle.prune_stats(),
        "pruning statistics perturbed by a lagging subscriber"
    );
    let mut client = daemon.client();
    let window = client.window().expect("window");
    assert_eq!(window.len, oracle.window_len());
    assert_eq!(window.live_ids, oracle.live_ids());

    // ---- the healthy subscriber never lagged and folds exactly ----
    assert!(
        healthy_fold.lagged.is_none(),
        "healthy subscriber was shed alongside the slow one"
    );
    let (_, rows) = client.pattern_query(healthy_pattern).expect("one-shot");
    assert_eq!(
        healthy_fold.rows(),
        rows,
        "healthy fold ≡ one-shot despite a lagging peer"
    );

    // ---- the slow subscriber was shed, not stalled over ----
    slow.set_io_timeout(Some(Duration::from_millis(500)))
        .expect("set timeout");
    let mut lagged_at = None;
    let mut notifies = 0usize;
    loop {
        match slow.next_event() {
            Ok(SubEvent::Notify { .. }) => notifies += 1,
            Ok(SubEvent::Lagged { sub_id, resync_seq }) => {
                assert_eq!(sub_id, 1);
                lagged_at = Some(resync_seq);
                break;
            }
            Err(ClientError::Wire(_)) => break,
            Err(e) => panic!("slow subscriber: {e}"),
        }
    }
    let resync_seq = lagged_at.unwrap_or_else(|| {
        panic!("slow subscriber never saw Lagged (drained {notifies} notifies)")
    });
    assert!(resync_seq <= batches.len() as u64);

    // ---- and the advertised resync makes it whole ----
    slow.set_io_timeout(None).expect("clear timeout");
    let ack = slow.subscribe(2, resync_seq, slow_pattern).expect("resync");
    assert_eq!(ack.seq, batches.len() as u64);
    let (_, rows) = client.pattern_query(slow_pattern).expect("one-shot");
    assert_eq!(ack.rows, rows, "resync snapshot ≡ one-shot after the feed");

    drop(idle);
    client.shutdown().expect("graceful shutdown");
    daemon.wait_graceful();
}
