//! Shared child-process harness for the `ter_serve` integration suites
//! (`serve_crash`, `serve_soak`, `serve_faults`): temp store directories,
//! spawning/killing the real daemon binary, and the never-crashed
//! in-process oracle the suites compare against.
//!
//! Every suite is its own test crate, so this module is included by
//! `mod harness;` from each — keep it free of suite-specific logic.
#![allow(dead_code)] // each suite uses its own subset

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

use ter_datasets::{preset, GenOptions, Preset};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{ErProcessor, Params, PruningMode, TerContext};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;
use ter_serve::Client;
use ter_stream::{Arrival, StreamSet};

/// Must match the CLI flags [`Daemon::spawn`] passes — both processes
/// must derive the same dataset and engine identity or the store
/// fingerprint refuses.
pub const PRESET: &str = "citations";
pub const SCALE: f64 = 0.2;
pub const WINDOW: usize = 60;
pub const BATCH: usize = 8;

pub struct TempDir(PathBuf);

impl TempDir {
    pub fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("ter_serve_it_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        Self(p)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A running daemon child whose kill/wait is cleaned up even on panic.
pub struct Daemon {
    child: Child,
    pub addr: SocketAddr,
}

impl Daemon {
    /// Spawns the actual `ter_serve` binary on an ephemeral port and
    /// scrapes `LISTENING <addr>` from its stdout. `extra` appends
    /// scenario-specific flags; the flag parser takes the last
    /// occurrence, so `extra` can also override any base flag below.
    pub fn spawn(dir: &Path, extra: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ter_serve"))
            .args([
                "serve",
                "--dir",
                dir.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
                "--preset",
                PRESET,
                "--scale",
                &SCALE.to_string(),
                "--window",
                &WINDOW.to_string(),
                "--checkpoint-every",
                "4",
                "--shards",
                "4",
                "--threads",
                "2",
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn ter_serve");
        let stdout = child.stdout.take().expect("piped stdout");
        // Scrape the address on a thread so a wedged daemon fails the test
        // with a timeout instead of hanging it.
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap_or(0) > 0 {
                if let Some(addr) = line.trim().strip_prefix("LISTENING ") {
                    let _ = tx.send(addr.to_string());
                    break;
                }
                line.clear();
            }
            // Keep draining so the daemon never blocks on a full pipe.
            let mut sink = String::new();
            while reader.read_line(&mut sink).unwrap_or(0) > 0 {
                sink.clear();
            }
        });
        let addr: SocketAddr = rx
            .recv_timeout(Duration::from_secs(120))
            .expect("daemon did not print LISTENING in time")
            .parse()
            .expect("parse LISTENING address");
        Self { child, addr }
    }

    pub fn client(&self) -> Client {
        Client::connect_retry(self.addr, Duration::from_secs(30)).expect("connect to daemon")
    }

    /// The daemon's OS process id (for `/proc` scrapes).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// SIGKILL — the point of the exercise.
    pub fn kill9(mut self) {
        self.child.kill().expect("SIGKILL daemon");
        self.child.wait().expect("reap daemon");
    }

    /// Waits for a clean exit after a graceful client shutdown.
    pub fn wait_graceful(mut self) {
        let status = self.child.wait().expect("wait daemon");
        assert!(status.success(), "daemon exited with {status}");
    }

    /// Waits for the child to exit on its own — fault-injection scenarios
    /// (an injected step-stage panic) assert on the returned status.
    pub fn wait_exit(mut self) -> std::process::ExitStatus {
        self.child.wait().expect("wait daemon")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The same deterministic dataset + context the CLI builds from the same
/// flags.
pub fn build_oracle_inputs() -> (TerContext, StreamSet, Params) {
    let ds = preset(
        Preset::Citations,
        &GenOptions {
            scale: SCALE,
            ..GenOptions::default()
        },
    );
    let params = Params {
        window: WINDOW,
        ..Params::default()
    };
    let keywords = ds.keywords();
    let ctx = TerContext::build(
        ds.repo.clone(),
        keywords,
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        params.fanout,
    );
    (ctx, ds.streams, params)
}

/// A never-crashed in-process `ShardedTerIdsEngine` run: per-arrival
/// match lists plus the final engine.
pub fn oracle_run<'a>(
    ctx: &'a TerContext,
    params: Params,
    batches: &[Vec<Arrival>],
) -> (Vec<Vec<(u64, u64)>>, ShardedTerIdsEngine<'a>) {
    let mut engine =
        ShardedTerIdsEngine::new(ctx, params, PruningMode::Full, ExecConfig::new(4, 2));
    let mut per_arrival = Vec::new();
    for b in batches {
        per_arrival.extend(engine.step_batch(b).into_iter().map(|o| o.new_matches));
    }
    (per_arrival, engine)
}
