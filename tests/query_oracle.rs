//! Differential re-evaluation oracle for the declarative query layer:
//! proptest-generated patterns, run as standing queries over every
//! dataset preset, must fold to exactly the from-scratch evaluation
//! after **every** arrival batch — on the sequential engine and the
//! sharded engine alike, with both engines agreeing row-for-row.
//!
//! This is the repo's gold standard applied to the query layer: the
//! incremental path (delta application in `ter_query::StandingQuery`)
//! and the one-shot path (greedy-planned iterator evaluation) are
//! independent implementations, and the generated-pattern space crosses
//! joins, self-joins via shared variables, every predicate kind, and
//! projections — so agreement after every window slide is evidence, not
//! coincidence.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use proptest::prelude::*;
use ter_datasets::{preset, GenOptions, Preset};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{ErProcessor, Params, PruningMode, TerContext, TerIdsEngine};
use ter_query::{evaluate, fold_notification, BatchDelta, Pattern, StandingQuery};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;
use ter_stream::StreamSet;

/// Arrivals per batch: small enough that a run crosses many batch
/// boundaries (each a delta-application point), large enough that one
/// batch can carry additions *and* expiries at once.
const BATCH: usize = 6;
/// Batches per case — enough to fill and slide the window.
const BATCHES: usize = 10;

/// One built fixture per preset, shared across all proptest cases (the
/// contexts are by far the most expensive part of a case).
fn fixtures() -> &'static Vec<(TerContext, StreamSet, Params)> {
    static FIXTURES: OnceLock<Vec<(TerContext, StreamSet, Params)>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        Preset::all()
            .iter()
            .map(|&p| {
                let ds = preset(
                    p,
                    &GenOptions {
                        scale: 0.05,
                        ..GenOptions::default()
                    },
                );
                let params = Params {
                    // Smaller than BATCH * BATCHES so the window slides
                    // and the delta stream carries real retractions.
                    window: 16,
                    ..Params::default()
                };
                let keywords = ds.keywords();
                let ctx = TerContext::build(
                    ds.repo.clone(),
                    keywords,
                    &PivotConfig::default(),
                    &DiscoveryConfig::default(),
                    params.fanout,
                );
                (ctx, ds.streams, params)
            })
            .collect()
    })
}

const VARS: [&str; 3] = ["a", "b", "c"];

/// A generated-but-always-valid pattern source string: 1–3 atoms over
/// three variable names (variables are introduced by atoms, so range
/// restriction holds by construction; `match(v, v)` is repaired to a
/// two-variable atom), 0–2 predicates over introduced variables, and an
/// optional single-variable projection.
fn arb_pattern() -> impl Strategy<Value = String> {
    let atoms = proptest::collection::vec((0u8..2, 0usize..3, 0usize..3), 1..4);
    let preds = proptest::collection::vec((0u8..5, 0usize..3, 0u64..48), 0..3);
    (atoms, preds, any::<bool>()).prop_map(|(atoms, preds, project)| {
        let mut used: Vec<&str> = Vec::new();
        let use_var = |i: usize, used: &mut Vec<&str>| {
            let v = VARS[i % VARS.len()];
            if !used.contains(&v) {
                used.push(v);
            }
            v
        };
        let atom_srcs: Vec<String> = atoms
            .into_iter()
            .map(|(kind, i, j)| {
                if kind == 0 {
                    let j = if j % VARS.len() == i % VARS.len() {
                        i + 1
                    } else {
                        j
                    };
                    let x = use_var(i, &mut used);
                    let y = use_var(j, &mut used);
                    format!("match({x}, {y})")
                } else {
                    format!("live({})", use_var(i, &mut used))
                }
            })
            .collect();
        let pred_srcs: Vec<String> = preds
            .into_iter()
            .map(|(kind, vi, n)| {
                let v = used[vi % used.len()];
                match kind {
                    0 => format!("stream({v}) = {}", n % 4),
                    1 => format!("topical({v})"),
                    2 => format!("ts({v}) >= {n}"),
                    3 => format!("ts({v}) <= {n}"),
                    _ => format!("id({v}) = {n}"),
                }
            })
            .collect();
        let mut src = atom_srcs.join(", ");
        if !pred_srcs.is_empty() {
            src.push_str(" where ");
            src.push_str(&pred_srcs.join(", "));
        }
        if project {
            src.push_str(&format!(" -> {}", used[0]));
        }
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The headline guarantee, property-tested: for any generated
    /// pattern and any preset, the accumulated notification stream of a
    /// standing query is bit-identical to re-running the query from
    /// scratch after every single batch — under both engines, which
    /// must also agree with each other.
    #[test]
    fn standing_fold_equals_from_scratch_on_all_presets(
        pi in 0usize..5,
        src in arb_pattern(),
    ) {
        let (ctx, streams, params) = &fixtures()[pi];
        let pattern = Pattern::parse(&src).expect("generated pattern parses");

        let mut seq_eng = TerIdsEngine::new(ctx, *params, PruningMode::Full);
        let mut par_eng =
            ShardedTerIdsEngine::new(ctx, *params, PruningMode::Full, ExecConfig::new(3, 2));
        let mut sq_seq = StandingQuery::new(pattern.clone());
        let mut sq_par = StandingQuery::new(pattern.clone());
        let mut fold_seq: BTreeSet<Vec<u64>> = sq_seq.seed(&seq_eng).into_iter().collect();
        let mut fold_par: BTreeSet<Vec<u64>> = sq_par.seed(&par_eng).into_iter().collect();

        for (bi, chunk) in streams
            .arrival_batches(BATCH)
            .into_iter()
            .take(BATCHES)
            .enumerate()
        {
            let out_seq = seq_eng.step_batch(&chunk);
            let out_par = par_eng.step_batch(&chunk);

            let delta = BatchDelta::from_steps(&chunk, &out_seq);
            let (added, retracted) = sq_seq.apply_batch(&seq_eng, &delta);
            fold_notification(&mut fold_seq, &added, &retracted);
            let fresh_seq = evaluate(&pattern, &seq_eng);
            prop_assert_eq!(
                fold_seq.iter().cloned().collect::<Vec<_>>(),
                fresh_seq.clone(),
                "sequential fold ≡ from-scratch, preset {}, batch {}, pattern {}",
                pi, bi, src
            );

            let delta = BatchDelta::from_steps(&chunk, &out_par);
            let (added, retracted) = sq_par.apply_batch(&par_eng, &delta);
            fold_notification(&mut fold_par, &added, &retracted);
            let fresh_par = evaluate(&pattern, &par_eng);
            prop_assert_eq!(
                fold_par.iter().cloned().collect::<Vec<_>>(),
                fresh_par.clone(),
                "sharded fold ≡ from-scratch, preset {}, batch {}, pattern {}",
                pi, bi, src
            );

            prop_assert_eq!(
                fresh_seq, fresh_par,
                "engines disagree, preset {}, batch {}, pattern {}",
                pi, bi, src
            );
        }
    }
}

/// The delta hook itself, differentially: per batch, the sharded and
/// sequential engines must report identical expiry/retraction streams
/// (the sharded engine's per-shard result removal folds back to the
/// same normalized pair list) — the foundation every standing query
/// stands on.
#[test]
fn window_delta_streams_are_identical_across_engines() {
    let (ctx, streams, params) = &fixtures()[0];
    let mut seq_eng = TerIdsEngine::new(ctx, *params, PruningMode::Full);
    let mut par_eng =
        ShardedTerIdsEngine::new(ctx, *params, PruningMode::Full, ExecConfig::new(4, 2));
    for (bi, chunk) in streams
        .arrival_batches(BATCH)
        .into_iter()
        .take(BATCHES)
        .enumerate()
    {
        let out_seq = seq_eng.step_batch(&chunk);
        let out_par = par_eng.step_batch(&chunk);
        let d_seq = BatchDelta::from_steps(&chunk, &out_seq);
        let d_par = BatchDelta::from_steps(&chunk, &out_par);
        assert_eq!(d_seq.arrived, d_par.arrived, "batch {bi}");
        assert_eq!(d_seq.expired, d_par.expired, "batch {bi}");
        assert_eq!(d_seq.added_pairs, d_par.added_pairs, "batch {bi}");
        assert_eq!(d_seq.removed_pairs, d_par.removed_pairs, "batch {bi}");
    }
}
