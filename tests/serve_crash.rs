//! End-to-end crash-kill harness for the `ter_serve` daemon — the
//! acceptance test of the service layer's durability contract, across a
//! *real* process boundary:
//!
//! 1. spawn the release/debug `ter_serve` binary as a child process and
//!    ingest through its TCP protocol;
//! 2. `SIGKILL` it mid-stream (`Child::kill` — no destructors, no flush,
//!    no goodbye: exactly `kill -9`);
//! 3. restart it on the same directory, verify it resumes at
//!    `Recovery::resume_seq`, and feed the rest of the stream;
//! 4. require the **concatenated** per-arrival match lists, final pruning
//!    statistics, window contents, and live result set to be
//!    bit-identical to a never-crashed in-process
//!    `ShardedTerIdsEngine` run over the same preset.
//!
//! Further scenarios kill the daemon *while requests are in flight* —
//! including with group commit holding a multi-batch flush window open —
//! and check the WAL-before-ack guarantee: every batch a client saw
//! acked survives the kill, and the final state still converges to the
//! oracle.

mod harness;

use std::collections::BTreeSet;
use std::net::TcpStream;
use std::time::Duration;

use harness::{build_oracle_inputs, oracle_run, Daemon, TempDir, BATCH};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{ErProcessor, PruningMode};
use ter_query::{fold_notification, BatchDelta, Pattern, StandingQuery};
use ter_serve::wire::{encode_ingest_seq, read_message, write_message};
use ter_serve::{Client, ClientError, Reply, ResilientClient, SubscriptionFold};
use ter_stream::Arrival;

/// Feeds a batch slice either strictly request/reply (`window == 1`) or
/// through the pipelined v2 driver, returning the concatenated
/// per-arrival match lists in batch order.
fn feed_batches(
    client: &mut Client,
    batches: &[Vec<Arrival>],
    window: usize,
) -> Vec<Vec<(u64, u64)>> {
    if window <= 1 {
        let mut out = Vec::new();
        for batch in batches {
            out.extend(client.ingest_wait(batch).expect("ingest"));
        }
        out
    } else {
        let run = client
            .ingest_pipelined(batches, window)
            .expect("pipelined ingest");
        assert_eq!(run.per_batch.len(), batches.len(), "every batch acked once");
        run.per_batch.into_iter().flatten().collect()
    }
}

/// Controlled kill between acks: every pre-kill batch was acked, so the
/// concatenation of (pre-kill acks, post-restart acks) must reproduce the
/// oracle's per-arrival output stream exactly — with the feed strictly
/// request/reply (`window == 1`) or pipelined (`window > 1`, the v2
/// windowed protocol with the WAL/step stages overlapped in the daemon).
fn sigkill_between_batches(window: usize, tag: &str) {
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    assert!(batches.len() >= 10, "stream too short for the scenario");
    let cut = batches.len() / 2;
    let (oracle_matches, oracle) = oracle_run(&ctx, params, &batches);

    let dir = TempDir::new(tag);
    let mut served: Vec<Vec<(u64, u64)>> = Vec::new();

    // ---- phase 1: ingest half the stream, then SIGKILL ----
    let daemon = Daemon::spawn(dir.path(), &[]);
    let mut client = daemon.client();
    served.extend(feed_batches(&mut client, &batches[..cut], window));
    daemon.kill9();

    // ---- phase 2: restart, resume at resume_seq, finish the stream ----
    let daemon = Daemon::spawn(dir.path(), &[]);
    let mut client = daemon.client();
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.next_batch_seq, cut as u64,
        "daemon must resume exactly after the last acked batch"
    );
    // The stream cursor hand-off the CLI uses: committed batches → arrival
    // offset (all committed batches are full-size by construction).
    let mut cursor = streams.cursor_at(stats.next_batch_seq as usize * BATCH, BATCH);
    let resumed: Vec<Vec<Arrival>> = cursor.by_ref().collect();
    assert_eq!(resumed, batches[cut..].to_vec(), "cursor hand-off");
    served.extend(feed_batches(&mut client, &resumed, window));

    // ---- the acceptance gate ----
    assert_eq!(
        served, oracle_matches,
        "concatenated per-arrival results diverged from the uninterrupted run"
    );
    let stats = client.stats().expect("final stats");
    assert_eq!(stats.stats, oracle.prune_stats(), "pruning statistics");
    assert_eq!(stats.next_batch_seq, batches.len() as u64);
    let window = client.window().expect("window");
    assert_eq!(window.len, oracle.window_len());
    assert_eq!(window.live_ids, oracle.live_ids());
    let mut oracle_pairs: Vec<(u64, u64)> = oracle.results().iter().collect();
    oracle_pairs.sort_unstable();
    assert_eq!(client.results().expect("results"), oracle_pairs);

    client.shutdown().expect("graceful shutdown");
    daemon.wait_graceful();

    // A graceful restart afterwards resumes instantly from the shutdown
    // checkpoint with nothing to replay.
    let daemon = Daemon::spawn(dir.path(), &[]);
    let mut client = daemon.client();
    assert_eq!(
        client.stats().expect("stats").next_batch_seq,
        batches.len() as u64
    );
    client.shutdown().expect("shutdown");
    daemon.wait_graceful();
}

#[test]
fn sigkill_between_batches_is_bit_identical_to_oracle() {
    sigkill_between_batches(1, "between_w1");
}

#[test]
fn sigkill_between_batches_pipelined_w4_is_bit_identical_to_oracle() {
    sigkill_between_batches(4, "between_w4");
}

/// The reconnect-and-resume wrapper: a `ResilientClient::feed` is started
/// against the daemon, the daemon is SIGKILLed mid-feed and restarted on
/// the same directory, and the feeder — without any help — re-dials, asks
/// the daemon where its committed stream ends, and finishes the feed.
/// Final state must be bit-identical to the never-crashed oracle.
#[test]
fn resilient_feed_survives_sigkill_and_restart() {
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    let (_, oracle) = oracle_run(&ctx, params, &batches);

    let dir = TempDir::new("resilient");
    // Reconnect needs a stable address across the restart, so reserve a
    // concrete free port instead of letting each daemon pick its own
    // ephemeral one (the feeder re-dials the address it already has).
    let port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().unwrap().port()
    };
    let fixed_addr = format!("127.0.0.1:{port}");
    // A per-batch hold in the step stage pins the first daemon mid-feed
    // so the SIGKILL below deterministically interrupts the stream.
    let daemon = Daemon::spawn(
        dir.path(),
        &["--addr", &fixed_addr, "--ingest-hold-ms", "15"],
    );
    let addr = daemon.addr;

    let feeder_batches = batches.clone();
    let feeder = std::thread::spawn(move || {
        let mut rc = ResilientClient::new(addr, Duration::from_secs(60));
        rc.feed(&feeder_batches, 4).expect("resilient feed")
    });
    // Let some batches through, then SIGKILL with the feeder mid-stream.
    std::thread::sleep(Duration::from_millis(40));
    daemon.kill9();
    // Leave the daemon dead long enough that the feeder observes the
    // outage (its re-dial backs off until the restart below).
    std::thread::sleep(Duration::from_millis(200));
    let daemon = Daemon::spawn(dir.path(), &["--addr", &fixed_addr]);
    let report = feeder.join().expect("feeder thread");
    assert!(
        report.reconnects >= 1,
        "the kill must have forced at least one reconnect"
    );
    assert_eq!(
        report.final_seq,
        batches.len() as u64,
        "feed must complete the whole stream"
    );

    // Final-state parity with the never-crashed oracle.
    let mut client = daemon.client();
    let stats = client.stats().expect("stats");
    assert_eq!(stats.next_batch_seq, batches.len() as u64);
    assert_eq!(stats.stats, oracle.prune_stats(), "pruning statistics");
    let window = client.window().expect("window");
    assert_eq!(window.len, oracle.window_len());
    assert_eq!(window.live_ids, oracle.live_ids());
    client.shutdown().expect("shutdown");
    daemon.wait_graceful();
}

/// Uncontrolled kill with requests in flight: whatever the daemon acked
/// must survive (WAL-before-ack), the restart position is a batch
/// boundary at or past the acks, and finishing the stream converges to
/// the oracle's final state.
#[test]
fn sigkill_mid_flight_loses_no_acked_batch() {
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    let (_, oracle) = oracle_run(&ctx, params, &batches);

    let dir = TempDir::new("midflight");
    let daemon = Daemon::spawn(dir.path(), &[]);

    // Feeder thread: ingest until the connection dies under the kill.
    let addr = daemon.addr;
    let feeder_batches = batches.clone();
    let feeder = std::thread::spawn(move || {
        let mut client =
            Client::connect_retry(addr, Duration::from_secs(30)).expect("feeder connect");
        let mut acked = 0u64;
        for batch in &feeder_batches {
            match client.ingest_wait(batch) {
                Ok(_) => acked += 1,
                Err(_) => break, // the kill severed the connection
            }
        }
        acked
    });
    // Let some batches through, then SIGKILL with the feeder mid-stream.
    std::thread::sleep(Duration::from_millis(30));
    daemon.kill9();
    let acked = feeder.join().expect("feeder");

    let daemon = Daemon::spawn(dir.path(), &[]);
    let mut client = daemon.client();
    let committed = client.stats().expect("stats").next_batch_seq;
    assert!(
        committed >= acked,
        "daemon acked batch {acked} but only {committed} survived the kill \
         — the WAL-before-ack contract is broken"
    );
    assert!(
        committed <= batches.len() as u64,
        "more batches committed than were ever sent"
    );
    // Finish the stream from the committed position and require full
    // final-state convergence with the never-crashed oracle.
    for batch in &batches[committed as usize..] {
        client.ingest_wait(batch).expect("ingest after restart");
    }
    let stats = client.stats().expect("final stats");
    assert_eq!(stats.stats, oracle.prune_stats(), "pruning statistics");
    let window = client.window().expect("window");
    assert_eq!(window.live_ids, oracle.live_ids());
    client.shutdown().expect("shutdown");
    daemon.wait_graceful();
}

/// Drains pushed subscription events into the fold until the socket
/// stays quiet for half a second — long past any in-flight notification
/// once the feeder's acks are all in.
fn drain_events(sub: &mut Client, fold: &mut SubscriptionFold) {
    sub.set_io_timeout(Some(Duration::from_millis(500)))
        .expect("set timeout");
    loop {
        match sub.next_event() {
            Ok(ev) => fold.apply(&ev),
            Err(ClientError::Wire(_)) => break, // quiet (or the kill) — done
            Err(e) => panic!("subscription failed: {e}"),
        }
    }
}

/// The standing-query half of the crash contract: subscribe, SIGKILL the
/// daemon mid-stream, restart, resubscribe quoting the fold's position —
/// and the reconciled match set (resync snapshot + post-restart
/// notifications) must be bit-identical to a subscriber that never saw a
/// crash, after every phase:
///
/// * the resync snapshot equals the never-crashed subscriber's rows at
///   the cut (WAL replay rebuilt the exact engine state);
/// * the final fold equals both the never-crashed in-process standing
///   fold over the whole stream and a one-shot pattern query against the
///   restarted daemon.
#[test]
fn subscriber_survives_sigkill_via_resubscribe_resync() {
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    let cut = batches.len() / 2;
    let pattern_src = "match(a, b)";
    let pattern = Pattern::parse(pattern_src).expect("pattern");

    // ---- the never-crashed subscriber: in-process standing fold ----
    let mut oracle_eng =
        ShardedTerIdsEngine::new(&ctx, params, PruningMode::Full, ExecConfig::new(4, 2));
    let mut oracle_sq = StandingQuery::new(pattern.clone());
    let mut oracle_fold: BTreeSet<Vec<u64>> = oracle_sq.seed(&oracle_eng).into_iter().collect();
    let mut oracle_rows_at_cut: Vec<Vec<u64>> = Vec::new();
    for (i, b) in batches.iter().enumerate() {
        let outs = oracle_eng.step_batch(b);
        let delta = BatchDelta::from_steps(b, &outs);
        let (added, retracted) = oracle_sq.apply_batch(&oracle_eng, &delta);
        fold_notification(&mut oracle_fold, &added, &retracted);
        if i + 1 == cut {
            oracle_rows_at_cut = oracle_sq.rows();
        }
    }
    let oracle_final: Vec<Vec<u64>> = oracle_fold.iter().cloned().collect();

    // ---- phase 1: subscribe from empty, feed half, SIGKILL ----
    let dir = TempDir::new("subcrash");
    let daemon = Daemon::spawn(dir.path(), &[]);
    let mut sub = daemon.client();
    let ack = sub.subscribe(1, 0, pattern_src).expect("subscribe");
    assert_eq!(ack.seq, 0);
    assert!(ack.rows.is_empty(), "fresh daemon, empty result");
    let mut fold = SubscriptionFold::start(&ack);
    let mut feeder = daemon.client();
    for b in &batches[..cut] {
        feeder.ingest_wait(b).expect("ingest");
    }
    drain_events(&mut sub, &mut fold);
    assert_eq!(
        fold.rows(),
        oracle_rows_at_cut,
        "pre-crash fold ≡ never-crashed subscriber at the cut"
    );
    assert!(fold.lagged.is_none());
    let resync_from = fold.seq;
    daemon.kill9();

    // ---- phase 2: restart, resubscribe with the fold's position ----
    let daemon = Daemon::spawn(dir.path(), &[]);
    let mut sub = daemon.client();
    let ack = sub
        .subscribe(1, resync_from, pattern_src)
        .expect("resubscribe");
    assert_eq!(
        ack.seq, cut as u64,
        "resync snapshot sits at the resumed batch position"
    );
    assert_eq!(
        ack.rows, oracle_rows_at_cut,
        "resync snapshot ≡ never-crashed subscriber at the cut"
    );
    let mut fold = SubscriptionFold::start(&ack);
    let mut feeder = daemon.client();
    for b in &batches[cut..] {
        feeder.ingest_wait(b).expect("ingest after restart");
    }
    drain_events(&mut sub, &mut fold);

    // ---- the acceptance gate ----
    assert_eq!(
        fold.rows(),
        oracle_final,
        "reconciled fold diverged from the never-crashed subscriber"
    );
    let (seq, rows) = feeder.pattern_query(pattern_src).expect("one-shot");
    assert_eq!(seq, batches.len() as u64);
    assert_eq!(fold.rows(), rows, "fold ≡ one-shot against the daemon");
    assert!(sub.unsubscribe(1).expect("unsubscribe"));

    feeder.shutdown().expect("graceful shutdown");
    daemon.wait_graceful();
}

/// A hand-rolled go-back-N pipelined feeder that counts *individual*
/// acks, so a kill can be checked against exactly what the client saw.
/// Returns the number of in-order `IngestAck`s received before the
/// connection died (or the full count on success).
fn counting_pipelined_feed(
    addr: std::net::SocketAddr,
    batches: &[Vec<Arrival>],
    window: usize,
) -> u64 {
    let stream = TcpStream::connect(addr).expect("feeder connect");
    let mut reader = stream.try_clone().expect("clone stream");
    let mut writer = stream;
    let mut acked = 0usize;
    let mut next_send = 0usize;
    while acked < batches.len() {
        while next_send < batches.len() && next_send - acked < window {
            let frame = encode_ingest_seq(next_send as u64, &batches[next_send]);
            if write_message(&mut writer, &frame).is_err() {
                return acked as u64;
            }
            next_send += 1;
        }
        let Ok(payload) = read_message(&mut reader) else {
            return acked as u64;
        };
        match ter_serve::wire::decode_reply(&payload) {
            Ok(Reply::IngestAck { seq, .. }) if seq == acked as u64 => acked += 1,
            // Go-back-N: the daemon rejected `seq` (and will reject the
            // tail behind it); rewind and resend from there.
            Ok(Reply::IngestBusy { seq }) if seq >= acked as u64 => {
                next_send = seq as usize;
            }
            Ok(Reply::IngestBusy { .. }) => {} // stale rejection of an acked seq
            _ => return acked as u64,
        }
    }
    acked as u64
}

/// Uncontrolled kill in the middle of an *open flush window*: group
/// commit (`--flush-window 8`) holds several appended-but-unsynced
/// batches while a pipelined feeder keeps the window full, and the
/// artificial fsync latency widens the vulnerable interval. Whatever the
/// client saw acked must still be on disk after the kill — group commit
/// may delay acks, but it must never release one before the covering
/// fsync. The refeed then converges to the oracle bit-identically.
#[test]
fn sigkill_mid_flush_window_never_loses_acked_batch() {
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    let (_, oracle) = oracle_run(&ctx, params, &batches);

    let dir = TempDir::new("midwindow");
    // No cadence checkpoints: each would force a flush and shrink the
    // open window the kill is aimed at. Recovery replays the WAL alone.
    let daemon = Daemon::spawn(
        dir.path(),
        &[
            "--checkpoint-every",
            "0",
            "--flush-window",
            "8",
            "--flush-interval-ms",
            "50",
            "--fsync-delay-ms",
            "10",
            "--queue-depth",
            "32",
        ],
    );

    let addr = daemon.addr;
    let feeder_batches = batches.clone();
    let feeder = std::thread::spawn(move || counting_pipelined_feed(addr, &feeder_batches, 8));
    // Strike while flush windows are filling and fsyncs are slow.
    std::thread::sleep(Duration::from_millis(60));
    daemon.kill9();
    let acked = feeder.join().expect("feeder");

    let daemon = Daemon::spawn(dir.path(), &[]);
    let mut client = daemon.client();
    let committed = client.stats().expect("stats").next_batch_seq;
    assert!(
        committed >= acked,
        "client saw {acked} acks but only {committed} batches survived the kill \
         — group commit released an ack before its covering fsync"
    );
    assert!(
        committed <= batches.len() as u64,
        "more batches committed than were ever sent"
    );
    // Finish the stream from the committed position; full final-state
    // convergence with the never-crashed oracle.
    for batch in &batches[committed as usize..] {
        client.ingest_wait(batch).expect("ingest after restart");
    }
    let stats = client.stats().expect("final stats");
    assert_eq!(stats.stats, oracle.prune_stats(), "pruning statistics");
    assert_eq!(stats.next_batch_seq, batches.len() as u64);
    let window = client.window().expect("window");
    assert_eq!(window.live_ids, oracle.live_ids());
    client.shutdown().expect("shutdown");
    daemon.wait_graceful();
}

/// SIGKILL under bursty arrivals with incremental delta checkpoints: the
/// daemon runs `--ckpt-mode delta` with both cadences armed (every 2
/// batches *and* every 64 KiB of WAL — the byte cadence exists exactly
/// because batch counts are a poor replay bound when an 8× burst lands),
/// is killed right after a burst batch, and must restart through the
/// (base + delta chain + WAL suffix) ladder with the concatenated
/// per-arrival results bit-identical to a never-crashed oracle.
#[test]
fn sigkill_under_burst_with_delta_checkpoints_is_bit_identical() {
    let (ctx, streams, params) = build_oracle_inputs();
    let arrivals = streams.arrivals();
    // Bursty schedule: an 8× burst every 4th batch, a trickle between.
    let sizes = [24usize, 2, 2, 2];
    let mut batches: Vec<Vec<Arrival>> = Vec::new();
    let mut off = 0;
    while off < arrivals.len() {
        let n = sizes[batches.len() % sizes.len()].min(arrivals.len() - off);
        batches.push(arrivals[off..off + n].to_vec());
        off += n;
    }
    assert!(batches.len() >= 12, "stream too short for the scenario");
    let cut = 9; // lands right after the third burst batch (index 8)
    let (oracle_matches, oracle) = oracle_run(&ctx, params, &batches);

    let dir = TempDir::new("burst_delta");
    let flags = [
        "--ckpt-mode",
        "delta",
        "--checkpoint-every",
        "2",
        "--checkpoint-bytes",
        "65536",
    ];
    let mut served: Vec<Vec<(u64, u64)>> = Vec::new();

    let daemon = Daemon::spawn(dir.path(), &flags);
    let mut client = daemon.client();
    served.extend(feed_batches(&mut client, &batches[..cut], 1));
    daemon.kill9();

    // The cadence must have left a real chain behind for the restart to
    // walk (base at seq 2, deltas at 4, 6, 8 — plus any byte-cadence
    // stamps the bursts forced).
    let deltas = std::fs::read_dir(dir.path())
        .expect("read store dir")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with("delt-")
        })
        .count();
    assert!(deltas >= 1, "no delta frames on disk after {cut} batches");

    let daemon = Daemon::spawn(dir.path(), &flags);
    let mut client = daemon.client();
    let committed = client.stats().expect("stats").next_batch_seq;
    assert_eq!(
        committed, cut as u64,
        "daemon must resume exactly after the last acked batch"
    );
    served.extend(feed_batches(&mut client, &batches[cut..], 1));

    assert_eq!(
        served, oracle_matches,
        "concatenated per-arrival results diverged from the uninterrupted run"
    );
    let stats = client.stats().expect("final stats");
    assert_eq!(stats.stats, oracle.prune_stats(), "pruning statistics");
    assert_eq!(stats.next_batch_seq, batches.len() as u64);
    let window = client.window().expect("window");
    assert_eq!(window.len, oracle.window_len());
    assert_eq!(window.live_ids, oracle.live_ids());
    client.shutdown().expect("graceful shutdown");
    daemon.wait_graceful();
}
