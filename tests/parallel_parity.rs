//! Differential parity: the sharded, batch-parallel engine must be
//! **bit-identical** to the sequential `TerIdsEngine` — same reported
//! pairs at the same arrivals, same live result set, same prune-statistic
//! totals, and same imputed probabilistic tuples — for every
//! `ter_datasets` preset × shard count {1, 2, 4} × thread count
//! {1, 2, 4} × drive mode (lock-step vs overlapped), regardless of batch
//! size. The overlapped configurations run in a **persistent pool
//! session** (`with_pool`, the daemon's path), the lock-step ones as
//! per-batch transient sessions — so both session shapes are enforced
//! too.
//!
//! Exact float equality is intentional: both engines route every pair
//! through the same `decide_pair` cascade and every cell through the same
//! `cell_survives` predicate, so any divergence — numeric, ordering, or
//! accounting — is a bug, not noise.

use ter_datasets::{preset, GenOptions, Preset};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{ErProcessor, Params, PruneStats, PruningMode, TerContext, TerIdsEngine};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;
use ter_stream::Arrival;

/// Everything the parity check compares.
#[derive(Debug, PartialEq)]
struct RunTrace {
    /// Per-arrival reported matches, each step sorted by normalized pair.
    step_matches: Vec<Vec<(u64, u64)>>,
    /// Every pair ever reported, sorted.
    reported: Vec<(u64, u64)>,
    /// The live result set `ES` at end of stream, sorted.
    results: Vec<(u64, u64)>,
    /// Cumulative prune-statistic totals.
    stats: PruneStats,
    /// `(id, imputed probabilistic tuple)` of every unexpired tuple. The
    /// debug rendering includes every instance and its probability with
    /// full `f64` round-trip precision, so equality here is bit-equality
    /// of the imputation output.
    live_tuples: Vec<(u64, String)>,
}

fn sorted_pairs(iter: impl IntoIterator<Item = (u64, u64)>) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = iter.into_iter().collect();
    v.sort_unstable();
    v
}

fn trace_sequential(ctx: &TerContext, arrivals: &[Arrival], params: Params) -> RunTrace {
    let mut e = TerIdsEngine::new(ctx, params, PruningMode::Full);
    let mut step_matches = Vec::with_capacity(arrivals.len());
    for a in arrivals {
        let mut m = e.process(a).new_matches;
        m.sort_unstable();
        step_matches.push(m);
    }
    RunTrace {
        step_matches,
        reported: sorted_pairs(e.reported().iter().copied()),
        results: sorted_pairs(e.results().iter()),
        stats: e.prune_stats(),
        live_tuples: e
            .live_ids()
            .into_iter()
            .map(|id| (id, format!("{:?}", e.meta(id).unwrap().tuple)))
            .collect(),
    }
}

fn trace_sharded(
    ctx: &TerContext,
    arrivals: &[Arrival],
    params: Params,
    exec: ExecConfig,
    batch: usize,
    pooled_session: bool,
) -> RunTrace {
    let mut e = ShardedTerIdsEngine::new(ctx, params, PruningMode::Full, exec);
    let mut step_matches = Vec::with_capacity(arrivals.len());
    if pooled_session {
        // One persistent worker-pool session for the whole stream — the
        // daemon's execution shape.
        e.with_pool(|pe| {
            for chunk in arrivals.chunks(batch) {
                step_matches.extend(pe.step_batch(chunk).into_iter().map(|o| o.new_matches));
            }
        });
    } else {
        for chunk in arrivals.chunks(batch) {
            // Sharded step outputs are already sorted by (arrival_seq, norm_pair).
            step_matches.extend(e.step_batch(chunk).into_iter().map(|o| o.new_matches));
        }
    }
    if exec.overlap && exec.threads > 1 {
        assert_eq!(
            e.stage_metrics().overlapped_arrivals,
            arrivals.len() as u64,
            "overlapped drive must actually engage"
        );
    }
    RunTrace {
        step_matches,
        reported: sorted_pairs(e.reported().iter().copied()),
        results: sorted_pairs(e.results().iter()),
        stats: e.prune_stats(),
        live_tuples: e
            .live_ids()
            .into_iter()
            .map(|id| (id, format!("{:?}", e.meta(id).unwrap().tuple)))
            .collect(),
    }
}

/// Runs the full shard × thread sweep for one preset and asserts every
/// configuration reproduces the sequential trace exactly.
fn assert_parity(p: Preset, scale: f64) {
    let ds = preset(
        p,
        &GenOptions {
            scale,
            missing_rate: 0.3,
            missing_attrs: 1,
            ..GenOptions::default()
        },
    );
    let ctx = TerContext::build(
        ds.repo.clone(),
        ds.keywords(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let params = Params {
        window: 60,
        ..Params::default()
    };
    let arrivals = ds.streams.arrivals();
    assert!(
        arrivals.len() > 60,
        "{}: stream too small to churn",
        p.name()
    );
    let seq = trace_sequential(&ctx, &arrivals, params);
    assert!(
        seq.stats.total_pairs > 0,
        "{}: degenerate run, nothing compared",
        p.name()
    );

    for shards in [1usize, 2, 4] {
        for threads in [1usize, 2, 4] {
            for overlap in [false, true] {
                // A batch size that is neither 1 nor a divisor of the
                // stream length, so batch boundaries and a final partial
                // batch are exercised. The overlapped (pipelined-on)
                // configurations run in a persistent pool session, the
                // lock-step ones as transient per-batch sessions.
                let exec = ExecConfig::new(shards, threads).with_overlap(overlap);
                let par = trace_sharded(&ctx, &arrivals, params, exec, 17, overlap);
                assert_eq!(
                    par,
                    seq,
                    "{}: sharded(S={shards}, T={threads}, overlap={overlap}) \
                     diverged from sequential",
                    p.name()
                );
            }
        }
    }

    // Degenerate batching (batch = 1, the `process` path) must agree too.
    let single = trace_sharded(&ctx, &arrivals, params, ExecConfig::new(2, 2), 1, false);
    assert_eq!(single, seq, "{}: per-arrival batching diverged", p.name());

    // Every refine forced onto the pool (fan-out threshold 0) — the
    // overlapped drive's worst case for reply interleaving — must still
    // be bit-identical, in a pooled session.
    let forced = ExecConfig {
        refine_fanout_min: 0,
        ..ExecConfig::new(4, 3)
    };
    let par = trace_sharded(&ctx, &arrivals, params, forced, 17, true);
    assert_eq!(par, seq, "{}: forced-fanout overlap diverged", p.name());
}

#[test]
fn citations_parity() {
    assert_parity(Preset::Citations, 0.16);
}

#[test]
fn anime_parity() {
    assert_parity(Preset::Anime, 0.14);
}

#[test]
fn bikes_parity() {
    assert_parity(Preset::Bikes, 0.12);
}

#[test]
fn ebooks_parity() {
    assert_parity(Preset::EBooks, 0.12);
}

#[test]
fn songs_parity() {
    assert_parity(Preset::Songs, 0.06);
}

/// The GridOnly (`I_j+G_ER`) mode must shard identically as well — it
/// shares candidate retrieval but refines by full exact probability.
#[test]
fn grid_only_mode_parity() {
    let ds = preset(
        Preset::Citations,
        &GenOptions {
            scale: 0.12,
            missing_rate: 0.3,
            missing_attrs: 1,
            ..GenOptions::default()
        },
    );
    let ctx = TerContext::build(
        ds.repo.clone(),
        ds.keywords(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let params = Params {
        window: 50,
        ..Params::default()
    };
    let arrivals = ds.streams.arrivals();
    let mut seq = TerIdsEngine::new(&ctx, params, PruningMode::GridOnly);
    for a in &arrivals {
        seq.process(a);
    }
    let mut par =
        ShardedTerIdsEngine::new(&ctx, params, PruningMode::GridOnly, ExecConfig::new(4, 4));
    for chunk in arrivals.chunks(23) {
        par.step_batch(chunk);
    }
    assert_eq!(
        sorted_pairs(par.reported().iter().copied()),
        sorted_pairs(seq.reported().iter().copied())
    );
    assert_eq!(par.prune_stats(), seq.prune_stats());
}

/// The pipelining claim, instrumented at preset scale: with every refine
/// fanned out to the pool, the lock-step drive pays exactly one traverse
/// barrier per arrival plus one per fanned refine (≈ 2/arrival), the
/// overlapped drive at most one per arrival plus one prologue per batch
/// (≈ 1/arrival) — and the results stay bit-identical.
#[test]
fn overlapped_drive_halves_barriers_at_preset_scale() {
    let ds = preset(
        Preset::Citations,
        &GenOptions {
            scale: 0.12,
            missing_rate: 0.3,
            missing_attrs: 1,
            ..GenOptions::default()
        },
    );
    let ctx = TerContext::build(
        ds.repo.clone(),
        ds.keywords(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let params = Params {
        window: 60,
        ..Params::default()
    };
    let arrivals = ds.streams.arrivals();
    let n = arrivals.len() as u64;
    let batch = 32usize;
    let batches = arrivals.len().div_ceil(batch) as u64;
    let base = ExecConfig {
        refine_fanout_min: 0, // always fan out (when candidates exist)
        ..ExecConfig::new(4, 2).with_overlap(false)
    };

    let mut lockstep = ShardedTerIdsEngine::new(&ctx, params, PruningMode::Full, base);
    for chunk in arrivals.chunks(batch) {
        lockstep.step_batch(chunk);
    }
    let lm = lockstep.stage_metrics();
    assert_eq!(
        lm.er_barriers,
        n + lm.fanned_refines,
        "lock-step: one traverse barrier per arrival + one per fanned refine"
    );
    assert!(
        lm.fanned_refines * 2 > n,
        "most arrivals must fan out a refine for the 2-vs-1 claim to bite \
         ({} of {n})",
        lm.fanned_refines
    );

    let mut overlapped =
        ShardedTerIdsEngine::new(&ctx, params, PruningMode::Full, base.with_overlap(true));
    overlapped.with_pool(|pe| {
        for chunk in arrivals.chunks(batch) {
            pe.step_batch(chunk);
        }
    });
    let om = overlapped.stage_metrics();
    assert!(
        om.er_barriers <= n + batches,
        "overlapped: at most one barrier per arrival plus one prologue per batch \
         (got {} for {n} arrivals in {batches} batches)",
        om.er_barriers
    );
    assert_eq!(om.overlapped_arrivals, n);
    let ratio = lm.er_barriers as f64 / om.er_barriers as f64;
    assert!(
        ratio > 1.6,
        "barriers per arrival must drop from ~2 to ~1 (lock-step {}, overlapped {}, ratio {ratio:.2})",
        lm.er_barriers,
        om.er_barriers
    );

    assert_eq!(
        overlapped.export_state(),
        lockstep.export_state(),
        "instrumentation must not change results"
    );
}
