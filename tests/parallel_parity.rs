//! Differential parity: the sharded, batch-parallel engine must be
//! **bit-identical** to the sequential `TerIdsEngine` — same reported
//! pairs at the same arrivals, same live result set, same prune-statistic
//! totals, and same imputed probabilistic tuples — for every
//! `ter_datasets` preset × shard count {1, 2, 4} × thread count {1, 2, 4},
//! regardless of batch size.
//!
//! Exact float equality is intentional: both engines route every pair
//! through the same `decide_pair` cascade and every cell through the same
//! `cell_survives` predicate, so any divergence — numeric, ordering, or
//! accounting — is a bug, not noise.

use ter_datasets::{preset, GenOptions, Preset};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{ErProcessor, Params, PruneStats, PruningMode, TerContext, TerIdsEngine};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;
use ter_stream::Arrival;

/// Everything the parity check compares.
#[derive(Debug, PartialEq)]
struct RunTrace {
    /// Per-arrival reported matches, each step sorted by normalized pair.
    step_matches: Vec<Vec<(u64, u64)>>,
    /// Every pair ever reported, sorted.
    reported: Vec<(u64, u64)>,
    /// The live result set `ES` at end of stream, sorted.
    results: Vec<(u64, u64)>,
    /// Cumulative prune-statistic totals.
    stats: PruneStats,
    /// `(id, imputed probabilistic tuple)` of every unexpired tuple. The
    /// debug rendering includes every instance and its probability with
    /// full `f64` round-trip precision, so equality here is bit-equality
    /// of the imputation output.
    live_tuples: Vec<(u64, String)>,
}

fn sorted_pairs(iter: impl IntoIterator<Item = (u64, u64)>) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = iter.into_iter().collect();
    v.sort_unstable();
    v
}

fn trace_sequential(ctx: &TerContext, arrivals: &[Arrival], params: Params) -> RunTrace {
    let mut e = TerIdsEngine::new(ctx, params, PruningMode::Full);
    let mut step_matches = Vec::with_capacity(arrivals.len());
    for a in arrivals {
        let mut m = e.process(a).new_matches;
        m.sort_unstable();
        step_matches.push(m);
    }
    RunTrace {
        step_matches,
        reported: sorted_pairs(e.reported().iter().copied()),
        results: sorted_pairs(e.results().iter()),
        stats: e.prune_stats(),
        live_tuples: e
            .live_ids()
            .into_iter()
            .map(|id| (id, format!("{:?}", e.meta(id).unwrap().tuple)))
            .collect(),
    }
}

fn trace_sharded(
    ctx: &TerContext,
    arrivals: &[Arrival],
    params: Params,
    exec: ExecConfig,
    batch: usize,
) -> RunTrace {
    let mut e = ShardedTerIdsEngine::new(ctx, params, PruningMode::Full, exec);
    let mut step_matches = Vec::with_capacity(arrivals.len());
    for chunk in arrivals.chunks(batch) {
        // Sharded step outputs are already sorted by (arrival_seq, norm_pair).
        step_matches.extend(e.step_batch(chunk).into_iter().map(|o| o.new_matches));
    }
    RunTrace {
        step_matches,
        reported: sorted_pairs(e.reported().iter().copied()),
        results: sorted_pairs(e.results().iter()),
        stats: e.prune_stats(),
        live_tuples: e
            .live_ids()
            .into_iter()
            .map(|id| (id, format!("{:?}", e.meta(id).unwrap().tuple)))
            .collect(),
    }
}

/// Runs the full shard × thread sweep for one preset and asserts every
/// configuration reproduces the sequential trace exactly.
fn assert_parity(p: Preset, scale: f64) {
    let ds = preset(
        p,
        &GenOptions {
            scale,
            missing_rate: 0.3,
            missing_attrs: 1,
            ..GenOptions::default()
        },
    );
    let ctx = TerContext::build(
        ds.repo.clone(),
        ds.keywords(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let params = Params {
        window: 60,
        ..Params::default()
    };
    let arrivals = ds.streams.arrivals();
    assert!(
        arrivals.len() > 60,
        "{}: stream too small to churn",
        p.name()
    );
    let seq = trace_sequential(&ctx, &arrivals, params);
    assert!(
        seq.stats.total_pairs > 0,
        "{}: degenerate run, nothing compared",
        p.name()
    );

    for shards in [1usize, 2, 4] {
        for threads in [1usize, 2, 4] {
            // A batch size that is neither 1 nor a divisor of the stream
            // length, so batch boundaries and a final partial batch are
            // exercised.
            let par = trace_sharded(&ctx, &arrivals, params, ExecConfig { shards, threads }, 17);
            assert_eq!(
                par,
                seq,
                "{}: sharded(S={shards}, T={threads}) diverged from sequential",
                p.name()
            );
        }
    }

    // Degenerate batching (batch = 1, the `process` path) must agree too.
    let single = trace_sharded(
        &ctx,
        &arrivals,
        params,
        ExecConfig {
            shards: 2,
            threads: 2,
        },
        1,
    );
    assert_eq!(single, seq, "{}: per-arrival batching diverged", p.name());
}

#[test]
fn citations_parity() {
    assert_parity(Preset::Citations, 0.16);
}

#[test]
fn anime_parity() {
    assert_parity(Preset::Anime, 0.14);
}

#[test]
fn bikes_parity() {
    assert_parity(Preset::Bikes, 0.12);
}

#[test]
fn ebooks_parity() {
    assert_parity(Preset::EBooks, 0.12);
}

#[test]
fn songs_parity() {
    assert_parity(Preset::Songs, 0.06);
}

/// The GridOnly (`I_j+G_ER`) mode must shard identically as well — it
/// shares candidate retrieval but refines by full exact probability.
#[test]
fn grid_only_mode_parity() {
    let ds = preset(
        Preset::Citations,
        &GenOptions {
            scale: 0.12,
            missing_rate: 0.3,
            missing_attrs: 1,
            ..GenOptions::default()
        },
    );
    let ctx = TerContext::build(
        ds.repo.clone(),
        ds.keywords(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let params = Params {
        window: 50,
        ..Params::default()
    };
    let arrivals = ds.streams.arrivals();
    let mut seq = TerIdsEngine::new(&ctx, params, PruningMode::GridOnly);
    for a in &arrivals {
        seq.process(a);
    }
    let mut par = ShardedTerIdsEngine::new(
        &ctx,
        params,
        PruningMode::GridOnly,
        ExecConfig {
            shards: 4,
            threads: 4,
        },
    );
    for chunk in arrivals.chunks(23) {
        par.step_batch(chunk);
    }
    assert_eq!(
        sorted_pairs(par.reported().iter().copied()),
        sorted_pairs(seq.reported().iter().copied())
    );
    assert_eq!(par.prune_stats(), seq.prune_stats());
}
