//! Delta-chain recovery parity: an engine restored from (full base +
//! delta-chain replay + WAL suffix) at **any** cut point must be
//! bit-identical to one that never crashed — with the chain cut at every
//! position, with any single delta link damaged (degrading recovery to
//! the older consistent prefix, never failing), and across engine kinds
//! (a chain written against the sequential engine restores into the
//! sharded engine).
//!
//! This mirrors `tests/recovery_parity.rs` for the incremental-checkpoint
//! ladder introduced with `TerStore::checkpoint_delta_at`: phase 1 runs a
//! daemon-style loop (WAL-log, step, stamp — one full base then a delta
//! per batch), phase 2 "crashes" (drops everything unsynced), optionally
//! corrupts one delta frame on disk, then recovers and finishes the
//! stream, comparing every observable against an uninterrupted oracle.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;
use ter_datasets::{preset, GenOptions, Preset};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{
    delta_between, EngineState, ErProcessor, Params, PruningMode, TerContext, TerIdsEngine,
};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;
use ter_store::{context_fingerprint, TerStore};
use ter_stream::Arrival;

/// Arrivals per batch and batches per case: enough to fill and slide the
/// 16-tuple window several times, so deltas carry evictions as well as
/// admissions.
const BATCH: usize = 6;
const TOTAL: usize = 10;

/// One built fixture per preset, shared across every case — the context
/// build dominates a case's cost.
fn fixtures() -> &'static Vec<(TerContext, Vec<Arrival>, Params)> {
    static FIXTURES: OnceLock<Vec<(TerContext, Vec<Arrival>, Params)>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        Preset::all()
            .iter()
            .map(|&p| {
                let ds = preset(
                    p,
                    &GenOptions {
                        scale: 0.08,
                        ..GenOptions::default()
                    },
                );
                let params = Params {
                    window: 16,
                    ..Params::default()
                };
                let ctx = TerContext::build(
                    ds.repo.clone(),
                    ds.keywords(),
                    &PivotConfig::default(),
                    &DiscoveryConfig::default(),
                    params.fanout,
                );
                let arrivals = ds.streams.arrivals();
                assert!(
                    arrivals.len() >= BATCH * TOTAL,
                    "{}: stream too small",
                    p.name()
                );
                (ctx, arrivals, params)
            })
            .collect()
    })
}

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        static N: AtomicUsize = AtomicUsize::new(0);
        let p = std::env::temp_dir().join(format!(
            "ter_delta_parity_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&p);
        Self(p)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The minimal engine surface a restore needs (the state hooks live on
/// the concrete types, not on `ErProcessor`).
trait Restorable {
    fn step(&mut self, batch: &[Arrival]) -> Vec<Vec<(u64, u64)>>;
    fn export(&self) -> EngineState;
    fn import(&mut self, state: &EngineState) -> Result<(), String>;
}

impl Restorable for TerIdsEngine<'_> {
    fn step(&mut self, batch: &[Arrival]) -> Vec<Vec<(u64, u64)>> {
        self.step_batch(batch)
            .into_iter()
            .map(|o| o.new_matches)
            .collect()
    }
    fn export(&self) -> EngineState {
        self.export_state()
    }
    fn import(&mut self, state: &EngineState) -> Result<(), String> {
        self.import_state(state)
    }
}

impl Restorable for ShardedTerIdsEngine<'_> {
    fn step(&mut self, batch: &[Arrival]) -> Vec<Vec<(u64, u64)>> {
        self.step_batch(batch)
            .into_iter()
            .map(|o| o.new_matches)
            .collect()
    }
    fn export(&self) -> EngineState {
        self.export_state()
    }
    fn import(&mut self, state: &EngineState) -> Result<(), String> {
        self.import_state(state)
    }
}

/// One crash-and-recover scenario against the delta-checkpoint ladder.
///
/// * `cut`: crash after this many batches (1 ≤ cut ≤ TOTAL). Phase 1
///   stamps a full base at batch 1 and one chained delta per batch after
///   it, so the cut lands at every possible chain position as `cut`
///   sweeps.
/// * `damage`: corrupt the delta file at this index (ascending order) —
///   recovery must degrade to the stamp *before* the damaged link and
///   re-derive the rest from the WAL, never erroring.
/// * `shard_restore`: restore into the sharded engine (the chain was
///   written from sequential exports — the cross-engine contract).
fn run_case(fix: usize, cut: usize, damage: Option<usize>, shard_restore: bool) {
    let (ctx, arrivals, params) = &fixtures()[fix];
    let params = *params;
    let fp = context_fingerprint(ctx, &params);
    let dir = TempDir::new();
    let cut_at = cut * BATCH;

    // Uninterrupted oracle.
    let mut oracle = TerIdsEngine::new(ctx, params, PruningMode::Full);
    let mut oracle_steps: Vec<Vec<(u64, u64)>> = Vec::new();
    for batch in arrivals[..TOTAL * BATCH].chunks(BATCH) {
        oracle_steps.extend(oracle.step_batch(batch).into_iter().map(|o| o.new_matches));
    }
    let oracle_final = oracle.export_state();

    // Phase 1: WAL-log + step + stamp until the crash. Batch 1 writes the
    // full base; every later batch chains a delta onto the previous stamp
    // (cadence 1 — the densest chain, maximizing cut positions).
    {
        let mut store = TerStore::open(dir.path(), fp).expect("open store");
        let mut engine = TerIdsEngine::new(ctx, params, PruningMode::Full);
        let mut prev: Option<(u64, EngineState)> = None;
        for batch in arrivals[..cut_at].chunks(BATCH) {
            store.log_batch(batch).expect("log batch");
            let seq = store.wal_seq();
            engine.step_batch(batch);
            let state = engine.export_state();
            match &prev {
                None => {
                    store.checkpoint_at(seq, &state).expect("base checkpoint");
                }
                Some((base_seq, base_state)) => {
                    let d = delta_between(base_state, &state).expect("delta");
                    store
                        .checkpoint_delta_at(*base_seq, seq, &d)
                        .expect("delta checkpoint");
                }
            }
            prev = Some((seq, state));
        }
        // Crash: everything unsynced is gone.
    }

    // Optional damage: flip a byte in the middle of the chosen delta
    // frame — its CRC check must fail on load, ending the chain there.
    let mut deltas: Vec<String> = fs::read_dir(dir.path())
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.starts_with("delt-"))
        .collect();
    deltas.sort();
    assert_eq!(
        deltas.len(),
        cut.saturating_sub(1),
        "one delta per batch after the base"
    );
    if let Some(d) = damage {
        let path = dir.path().join(&deltas[d]);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5a;
        fs::write(&path, bytes).unwrap();
    }

    // Phase 2: recover. An intact chain restores the tip stamp (`cut`);
    // a damaged link `d` (linking stamp d+1 → d+2) degrades to stamp
    // d+1, and the WAL suffix re-derives the rest.
    let store = TerStore::open(dir.path(), fp).expect("reopen store");
    let rec = store
        .recover()
        .expect("recovery must never fail on a damaged delta");
    let expected_stamp = damage.map(|d| d as u64 + 1).unwrap_or(cut as u64);
    assert_eq!(rec.checkpoint_seq, expected_stamp, "recovered stamp");
    assert_eq!(
        rec.chain_applied,
        (expected_stamp - 1) as usize,
        "deltas applied on the walk"
    );
    assert_eq!(
        rec.resume_seq(),
        cut as u64,
        "suffix reaches the crash point"
    );

    let mut engine: Box<dyn Restorable> = if shard_restore {
        Box::new(ShardedTerIdsEngine::new(
            ctx,
            params,
            PruningMode::Full,
            ExecConfig::new(3, 2),
        ))
    } else {
        Box::new(TerIdsEngine::new(ctx, params, PruningMode::Full))
    };
    engine
        .import(rec.state.as_ref().expect("a base always survives"))
        .expect("import recovered state");

    // WAL-suffix replay re-emits the oracle's matches for exactly the
    // batches between the recovered stamp and the crash.
    let mut replay_steps = Vec::new();
    for batch in &rec.suffix {
        replay_steps.extend(engine.step(batch));
    }
    assert_eq!(
        replay_steps,
        &oracle_steps[expected_stamp as usize * BATCH..cut_at],
        "replayed steps diverged"
    );

    // Phase 3: finish the stream live; then the full-state bit-identity.
    let mut post_steps = Vec::new();
    for batch in arrivals[cut_at..TOTAL * BATCH].chunks(BATCH) {
        post_steps.extend(engine.step(batch));
    }
    assert_eq!(
        post_steps,
        &oracle_steps[cut_at..],
        "post-recovery steps diverged"
    );
    assert_eq!(&engine.export(), &oracle_final, "final state diverged");
}

/// Deterministic sweep: the chain cut at every position (1..=TOTAL
/// batches), alternating restore engine kinds — no cut point may lose or
/// duplicate a single match.
#[test]
fn every_chain_cut_recovers_bit_identical() {
    for cut in 1..=TOTAL {
        run_case(0, cut, None, cut % 2 == 0);
    }
}

/// Deterministic sweep: every link of a full-length chain damaged in
/// turn — recovery degrades to the stamp before the damaged link and the
/// WAL suffix re-derives the rest, bit-identical throughout.
#[test]
fn every_damaged_link_degrades_to_consistent_prefix() {
    for d in 0..TOTAL - 1 {
        run_case(0, TOTAL, Some(d), d % 2 == 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Randomized cross product: any preset × any cut × intact-or-damaged
    /// chain × either restore engine.
    #[test]
    fn delta_chain_recovery_parity(
        fix in 0usize..5,
        cut in 1usize..=TOTAL,
        damage_raw in 0usize..64,
        shard_restore in any::<bool>(),
    ) {
        // Half the cases damage a uniformly chosen link (only possible
        // once the chain has at least one delta).
        let damage = if cut >= 2 && damage_raw % 2 == 1 {
            Some((damage_raw / 2) % (cut - 1))
        } else {
            None
        };
        run_case(fix, cut, damage, shard_restore);
    }
}
