//! Accuracy relationships the paper reports (Figure 5(a) and §6.3):
//! the three CDD-based methods share one F-score; CDD-based imputation is
//! at least as accurate as the weaker baselines on rule-friendly data.

use ter_datasets::{co_window_pairs, preset, GenOptions, Preset};
use ter_ids::{evaluate, ErProcessor, NaiveEngine, Params, PruningMode, TerContext, TerIdsEngine};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;

struct Run {
    name: &'static str,
    f_score: f64,
    reported: usize,
}

fn run_all(preset_kind: Preset, scale: f64) -> Vec<Run> {
    let ds = preset(
        preset_kind,
        &GenOptions {
            scale,
            missing_rate: 0.3,
            missing_attrs: 1,
            ..GenOptions::default()
        },
    );
    let keywords = ds.keywords();
    let ctx = TerContext::build(
        ds.repo.clone(),
        keywords.clone(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let params = Params {
        window: 100,
        ..Params::default()
    };
    let arrivals = ds.streams.arrivals();
    let gt = co_window_pairs(
        &ds.topical_entity_pairs(&keywords),
        &arrivals,
        params.window,
    );
    assert!(!gt.is_empty(), "no topical ground truth");

    let mut out = Vec::new();
    {
        let mut e = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        for a in &arrivals {
            e.process(a);
        }
        out.push(Run {
            name: "TER-iDS",
            f_score: evaluate(e.reported(), &gt).f_score,
            reported: e.reported().len(),
        });
    }
    {
        let mut e = TerIdsEngine::new(&ctx, params, PruningMode::GridOnly);
        for a in &arrivals {
            e.process(a);
        }
        out.push(Run {
            name: "Ij+GER",
            f_score: evaluate(e.reported(), &gt).f_score,
            reported: e.reported().len(),
        });
    }
    for (name, mut e) in [
        ("CDD+ER", NaiveEngine::cdd_er(&ctx, params)),
        ("DD+ER", NaiveEngine::dd_er(&ctx, params)),
        ("er+ER", NaiveEngine::er_er(&ctx, params)),
        ("con+ER", NaiveEngine::con_er(&ctx, params)),
    ] {
        for a in &arrivals {
            e.process(a);
        }
        out.push(Run {
            name,
            f_score: evaluate(e.reported(), &gt).f_score,
            reported: e.reported().len(),
        });
    }
    out
}

#[test]
fn cdd_methods_share_identical_fscore() {
    let runs = run_all(Preset::Citations, 0.25);
    let ter = runs.iter().find(|r| r.name == "TER-iDS").unwrap();
    let ij = runs.iter().find(|r| r.name == "Ij+GER").unwrap();
    let cdd = runs.iter().find(|r| r.name == "CDD+ER").unwrap();
    assert_eq!(ter.reported, ij.reported);
    assert_eq!(ter.reported, cdd.reported);
    assert!((ter.f_score - ij.f_score).abs() < 1e-12);
    assert!((ter.f_score - cdd.f_score).abs() < 1e-12);
}

#[test]
fn ter_ids_accuracy_is_competitive() {
    let runs = run_all(Preset::Anime, 0.2);
    let ter = runs.iter().find(|r| r.name == "TER-iDS").unwrap().f_score;
    for r in &runs {
        // At small scales the weaker baselines can tie within noise; the
        // paper-level gap is exercised by the bench harness at full scale.
        assert!(
            ter >= r.f_score - 0.08,
            "{} beat TER-iDS by a wide margin ({:.3} vs {:.3})",
            r.name,
            r.f_score,
            ter
        );
    }
    assert!(ter > 0.6, "TER-iDS F-score too low: {ter:.3}");
}

#[test]
fn all_methods_report_something_on_bikes() {
    let runs = run_all(Preset::Bikes, 0.2);
    for r in &runs {
        assert!(r.reported > 0, "{} reported nothing", r.name);
    }
}
