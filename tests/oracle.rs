//! Oracle tests: the fully-pruned TER-iDS engine must report *exactly* the
//! pairs a brute-force evaluator reports, on randomized datasets.
//!
//! This is the end-to-end soundness/completeness check for all four
//! pruning strategies, the ER-grid retrieval, and the index-backed
//! imputation at once: the brute-force side shares only the rule
//! semantics (linear scans everywhere, exact Equation-2 probabilities,
//! no pruning).

use ter_datasets::{generate, AttrKind, AttrSpec, DatasetSpec, GenOptions};
use ter_ids::{ErProcessor, NaiveEngine, Params, PruningMode, TerContext, TerIdsEngine};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;

fn spec(seedish: usize) -> DatasetSpec {
    DatasetSpec {
        name: "oracle",
        attrs: vec![
            AttrSpec {
                name: "category",
                kind: AttrKind::Category,
            },
            AttrSpec {
                name: "name",
                kind: AttrKind::EntityName { tokens: 3 },
            },
            AttrSpec {
                name: "tags",
                kind: AttrKind::TopicPhrase { base: 3, noise: 1 },
            },
        ],
        topics: 2 + seedish % 3,
        vocab_per_topic: 10 + 2 * seedish,
        size_a: 40,
        size_b: 44,
        match_fraction: 0.5,
        perturbation: 0.1,
    }
}

fn run_and_compare(seed: u64, missing_rate: f64, missing_attrs: usize, params: Params) {
    let ds = generate(
        &spec(seed as usize % 4),
        &GenOptions {
            missing_rate,
            missing_attrs,
            repo_ratio: 0.4,
            scale: 1.0,
            entity_skew: 0.0,
            seed,
        },
    );
    let keywords = ds.keywords();
    let ctx = TerContext::build(
        ds.repo.clone(),
        keywords,
        &PivotConfig::default(),
        &DiscoveryConfig {
            min_support: 2,
            min_constant_support: 2,
            ..DiscoveryConfig::default()
        },
        8,
    );
    let mut engine = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    let mut grid_only = TerIdsEngine::new(&ctx, params, PruningMode::GridOnly);
    let mut oracle = NaiveEngine::cdd_er(&ctx, params);
    for a in ds.streams.arrivals() {
        engine.process(&a);
        grid_only.process(&a);
        oracle.process(&a);
    }
    let mut want: Vec<_> = oracle.reported().iter().copied().collect();
    let mut full: Vec<_> = engine.reported().iter().copied().collect();
    let mut grid: Vec<_> = grid_only.reported().iter().copied().collect();
    want.sort_unstable();
    full.sort_unstable();
    grid.sort_unstable();
    assert_eq!(
        full, want,
        "TER-iDS(Full) diverged from oracle (seed {seed}, ξ={missing_rate}, m={missing_attrs})"
    );
    assert_eq!(
        grid, want,
        "Ij+GER diverged from oracle (seed {seed}, ξ={missing_rate}, m={missing_attrs})"
    );
    // Sanity: the scenarios must actually produce matches, otherwise the
    // comparison is vacuous.
    assert!(
        !want.is_empty(),
        "oracle found nothing (seed {seed}) — test setup too strict"
    );
}

#[test]
fn engine_equals_oracle_complete_data() {
    for seed in [1, 2, 3] {
        run_and_compare(
            seed,
            0.0,
            1,
            Params {
                window: 30,
                ..Params::default()
            },
        );
    }
}

#[test]
fn engine_equals_oracle_with_missing_values() {
    for seed in [4, 5, 6] {
        run_and_compare(
            seed,
            0.3,
            1,
            Params {
                window: 30,
                ..Params::default()
            },
        );
    }
}

#[test]
fn engine_equals_oracle_two_missing_attrs() {
    for seed in [7, 8] {
        run_and_compare(
            seed,
            0.4,
            2,
            Params {
                window: 25,
                ..Params::default()
            },
        );
    }
}

#[test]
fn engine_equals_oracle_varied_alpha() {
    for &alpha in &[0.1, 0.8] {
        run_and_compare(
            9,
            0.3,
            1,
            Params {
                alpha,
                window: 30,
                ..Params::default()
            },
        );
    }
}

#[test]
fn engine_equals_oracle_varied_gamma() {
    for &rho in &[0.35, 0.65] {
        run_and_compare(
            10,
            0.2,
            1,
            Params {
                rho,
                window: 30,
                ..Params::default()
            },
        );
    }
}

#[test]
fn engine_equals_oracle_tiny_window() {
    run_and_compare(
        11,
        0.3,
        1,
        Params {
            window: 4,
            ..Params::default()
        },
    );
}

#[test]
fn engine_equals_oracle_coarse_grid() {
    // A 1-cell-per-dim grid degenerates to "no spatial pruning" — results
    // must be identical regardless of grid resolution.
    run_and_compare(
        12,
        0.3,
        1,
        Params {
            grid_cells: 1,
            window: 30,
            ..Params::default()
        },
    );
    run_and_compare(
        12,
        0.3,
        1,
        Params {
            grid_cells: 16,
            window: 30,
            ..Params::default()
        },
    );
}
