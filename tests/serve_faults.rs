//! Fault injection against the serve store stage, in-process so the
//! fault shims ([`ServeOptions::fsync_delay`], a poisoned checkpoint
//! path) can be aimed precisely:
//!
//! 1. **Slow fsync** — with artificial latency injected into the WAL
//!    sync path, an ingest ack must not return before the covering
//!    fsync's latency has elapsed: group commit never acks an unsynced
//!    batch, even when syncing is arbitrarily slow.
//! 2. **Checkpoint write failure** — a directory squatting on the
//!    checkpoint's temp path makes the atomic write fail like a full or
//!    broken disk. The verb must fail loudly, the daemon must keep
//!    serving, and a restart must recover every acked batch from the
//!    WAL.

mod harness;

use std::time::{Duration, Instant};

use harness::{build_oracle_inputs, oracle_run, TempDir, BATCH};
use ter_ids::ErProcessor;
use ter_serve::{Client, ClientError, ServeOptions, Server};
use ter_store::checkpoint::checkpoint_file_name;

fn opts() -> ServeOptions {
    ServeOptions {
        queue_depth: 8,
        checkpoint_every: 0, // checkpoints only where the scenario says
        ..ServeOptions::default()
    }
}

/// Acks must wait out the fsync, however slow the disk: with a 150 ms
/// sync shim and `flush_window = 1`, every ingest round trip is bounded
/// below by the shim. A same-session control run without the shim
/// confirms the gap is the fsync, not the engine.
#[test]
fn slow_fsync_shim_delays_acks_until_durable() {
    const SHIM: Duration = Duration::from_millis(150);
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    let probe = &batches[..3];

    // ---- control: no shim ----
    let dir = TempDir::new("fault_fsync_ctl");
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let control_opts = opts();
    let control = std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &control_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let started = Instant::now();
        for batch in probe {
            client.ingest_wait(batch).unwrap();
        }
        let elapsed = started.elapsed();
        client.shutdown().unwrap();
        handle.join().unwrap();
        elapsed
    });

    // ---- shimmed: every commit fsync takes ≥ SHIM ----
    let dir = TempDir::new("fault_fsync_shim");
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let shim_opts = ServeOptions {
        fsync_delay: SHIM,
        ..opts()
    };
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &shim_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        for (i, batch) in probe.iter().enumerate() {
            let started = Instant::now();
            client.ingest_wait(batch).unwrap();
            let elapsed = started.elapsed();
            assert!(
                elapsed >= SHIM,
                "batch {i} acked after {elapsed:?} — before its {SHIM:?} fsync \
                 finished: the ack outran durability"
            );
        }
        client.shutdown().unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.batches, probe.len() as u64);
        assert!(
            report.fsyncs >= probe.len() as u64,
            "flush_window=1 must fsync per batch"
        );
    });
    assert!(
        control < SHIM,
        "control round trips took {control:?} — too slow to attribute the \
         shimmed latency to the fsync path"
    );
}

/// A checkpoint that cannot be written (its temp path is occupied by a
/// directory — the same `File::create` failure a full disk produces)
/// must fail the verb, poison nothing else, and lose no acked batch
/// across a restart.
#[test]
fn checkpoint_write_failure_keeps_serving_and_loses_nothing() {
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    assert!(batches.len() >= 6, "stream too short for the scenario");
    let (_, oracle) = oracle_run(&ctx, params, &batches[..6]);
    let dir = TempDir::new("fault_ckpt");

    // The explicit checkpoint below will be stamped at wal_seq = 4, so
    // its atomic write lands on `<name>.tmp` first — squat on that path.
    let tmp_path = dir
        .path()
        .join(checkpoint_file_name(4))
        .with_extension("tmp");
    std::fs::create_dir_all(&tmp_path).unwrap();

    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let run_opts = ServeOptions {
        flush_window: 2,
        flush_interval: Duration::from_millis(5),
        ..opts()
    };
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &run_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        for batch in &batches[..4] {
            client.ingest_wait(batch).unwrap();
        }
        // The poisoned checkpoint: the verb fails, loudly.
        match client.checkpoint() {
            Err(ClientError::Server(msg)) => {
                assert!(
                    msg.contains("checkpoint failed"),
                    "unexpected error shape: {msg}"
                );
            }
            other => panic!("checkpoint over a poisoned path returned {other:?}"),
        }
        // The daemon is not poisoned: ingest and queries keep working…
        for batch in &batches[4..6] {
            client.ingest_wait(batch).unwrap();
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.next_batch_seq, 6);
        // …and the WAL still covers every acked batch. Kill the daemon
        // the hard way (drop the listener via shutdown with the squatter
        // still in place — the shutdown checkpoint lands at seq 6 and
        // must succeed).
        client.shutdown().unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.batches, 6);
        assert_eq!(report.checkpoints, 1, "only the shutdown checkpoint");
    });

    // Restart on the same directory: every acked batch is there.
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let reopen_opts = opts();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &reopen_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.next_batch_seq, 6, "acked batches lost across restart");
        assert_eq!(stats.stats, oracle.prune_stats(), "pruning statistics");
        let window = client.window().unwrap();
        assert_eq!(window.live_ids, oracle.live_ids());
        client.shutdown().unwrap();
        handle.join().unwrap();
    });
}
