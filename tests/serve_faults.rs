//! Fault injection against the serve store stage, in-process so the
//! fault shims ([`ServeOptions::fsync_delay`], a poisoned checkpoint
//! path) can be aimed precisely:
//!
//! 1. **Slow fsync** — with artificial latency injected into the WAL
//!    sync path, an ingest ack must not return before the covering
//!    fsync's latency has elapsed: group commit never acks an unsynced
//!    batch, even when syncing is arbitrarily slow.
//! 2. **Checkpoint write failure** — a directory squatting on the
//!    checkpoint's temp path makes the atomic write fail like a full or
//!    broken disk. The verb must fail loudly, the daemon must keep
//!    serving, and a restart must recover every acked batch from the
//!    WAL.
//! 3. **Delta-stamp write failure** — the same full-disk shim aimed at
//!    an incremental delta frame (`ckpt_mode = delta`): the failed stamp
//!    errors loudly, the chain tip and in-memory base stay untouched,
//!    and the *next* stamp chains past the gap.
//! 4. **Rebase write failure** — the full snapshot a chain-bound rebase
//!    demands fails: loud error, nothing poisoned, nothing lost.
//! 5. **Slow fsync at a production window** — delta cadence under a
//!    100 000-tuple window with fsync latency injected: acks still wait
//!    out durability and the delta chain stays recoverable.

mod harness;

use std::time::{Duration, Instant};

use harness::{build_oracle_inputs, oracle_run, TempDir, BATCH};
use ter_ids::ErProcessor;
use ter_serve::{CkptMode, Client, ClientError, ServeOptions, Server};
use ter_store::checkpoint::checkpoint_file_name;
use ter_store::delta::delta_file_name;
use ter_store::CompactionPolicy;

fn opts() -> ServeOptions {
    ServeOptions {
        queue_depth: 8,
        checkpoint_every: 0, // checkpoints only where the scenario says
        ..ServeOptions::default()
    }
}

/// Acks must wait out the fsync, however slow the disk: with a 150 ms
/// sync shim and `flush_window = 1`, every ingest round trip is bounded
/// below by the shim. A same-session control run without the shim
/// confirms the gap is the fsync, not the engine.
#[test]
fn slow_fsync_shim_delays_acks_until_durable() {
    const SHIM: Duration = Duration::from_millis(150);
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    let probe = &batches[..3];

    // ---- control: no shim ----
    let dir = TempDir::new("fault_fsync_ctl");
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let control_opts = opts();
    let control = std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &control_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let started = Instant::now();
        for batch in probe {
            client.ingest_wait(batch).unwrap();
        }
        let elapsed = started.elapsed();
        client.shutdown().unwrap();
        handle.join().unwrap();
        elapsed
    });

    // ---- shimmed: every commit fsync takes ≥ SHIM ----
    let dir = TempDir::new("fault_fsync_shim");
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let shim_opts = ServeOptions {
        fsync_delay: SHIM,
        ..opts()
    };
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &shim_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        for (i, batch) in probe.iter().enumerate() {
            let started = Instant::now();
            client.ingest_wait(batch).unwrap();
            let elapsed = started.elapsed();
            assert!(
                elapsed >= SHIM,
                "batch {i} acked after {elapsed:?} — before its {SHIM:?} fsync \
                 finished: the ack outran durability"
            );
        }
        client.shutdown().unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.batches, probe.len() as u64);
        assert!(
            report.fsyncs >= probe.len() as u64,
            "flush_window=1 must fsync per batch"
        );
    });
    assert!(
        control < SHIM,
        "control round trips took {control:?} — too slow to attribute the \
         shimmed latency to the fsync path"
    );
}

/// A checkpoint that cannot be written (its temp path is occupied by a
/// directory — the same `File::create` failure a full disk produces)
/// must fail the verb, poison nothing else, and lose no acked batch
/// across a restart.
#[test]
fn checkpoint_write_failure_keeps_serving_and_loses_nothing() {
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    assert!(batches.len() >= 6, "stream too short for the scenario");
    let (_, oracle) = oracle_run(&ctx, params, &batches[..6]);
    let dir = TempDir::new("fault_ckpt");

    // The explicit checkpoint below will be stamped at wal_seq = 4, so
    // its atomic write lands on `<name>.tmp` first — squat on that path.
    let tmp_path = dir
        .path()
        .join(checkpoint_file_name(4))
        .with_extension("tmp");
    std::fs::create_dir_all(&tmp_path).unwrap();

    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let run_opts = ServeOptions {
        flush_window: 2,
        flush_interval: Duration::from_millis(5),
        ..opts()
    };
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &run_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        for batch in &batches[..4] {
            client.ingest_wait(batch).unwrap();
        }
        // The poisoned checkpoint: the verb fails, loudly.
        match client.checkpoint() {
            Err(ClientError::Server(msg)) => {
                assert!(
                    msg.contains("checkpoint failed"),
                    "unexpected error shape: {msg}"
                );
            }
            other => panic!("checkpoint over a poisoned path returned {other:?}"),
        }
        // The daemon is not poisoned: ingest and queries keep working…
        for batch in &batches[4..6] {
            client.ingest_wait(batch).unwrap();
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.next_batch_seq, 6);
        // …and the WAL still covers every acked batch. Kill the daemon
        // the hard way (drop the listener via shutdown with the squatter
        // still in place — the shutdown checkpoint lands at seq 6 and
        // must succeed).
        client.shutdown().unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.batches, 6);
        assert_eq!(report.checkpoints, 1, "only the shutdown checkpoint");
    });

    // Restart on the same directory: every acked batch is there.
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let reopen_opts = opts();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &reopen_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.next_batch_seq, 6, "acked batches lost across restart");
        assert_eq!(stats.stats, oracle.prune_stats(), "pruning statistics");
        let window = client.window().unwrap();
        assert_eq!(window.live_ids, oracle.live_ids());
        client.shutdown().unwrap();
        handle.join().unwrap();
    });
}

/// A delta stamp that cannot be written (its temp path squatted, the
/// `File::create` failure a full disk produces) must fail the verb
/// loudly, leave the chain tip and in-memory base untouched, and let the
/// *next* stamp chain past the gap — nothing poisoned, nothing lost.
#[test]
fn delta_stamp_write_failure_keeps_chain_and_loses_nothing() {
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    assert!(batches.len() >= 6, "stream too short for the scenario");
    let (_, oracle) = oracle_run(&ctx, params, &batches[..6]);
    let dir = TempDir::new("fault_delta");

    // The failed stamp: base at seq 2, so the seq-4 checkpoint writes
    // `delt-2-4` — squat on its temp path.
    let tmp_path = dir.path().join(delta_file_name(2, 4)).with_extension("tmp");
    std::fs::create_dir_all(&tmp_path).unwrap();

    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let run_opts = ServeOptions {
        ckpt_mode: CkptMode::Delta,
        ..opts()
    };
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &run_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        for batch in &batches[..2] {
            client.ingest_wait(batch).unwrap();
        }
        // First checkpoint of the run: the full base, stamped at seq 2.
        assert!(client.checkpoint().unwrap() > 0);
        for batch in &batches[2..4] {
            client.ingest_wait(batch).unwrap();
        }
        // The poisoned delta stamp: loud error, nothing else.
        match client.checkpoint() {
            Err(ClientError::Server(msg)) => {
                assert!(
                    msg.contains("checkpoint failed"),
                    "unexpected error shape: {msg}"
                );
            }
            other => panic!("delta stamp over a poisoned path returned {other:?}"),
        }
        // Serving continues; the next stamp chains base 2 → seq 6,
        // skipping the squatted 2 → 4 name entirely.
        for batch in &batches[4..6] {
            client.ingest_wait(batch).unwrap();
        }
        assert!(client.checkpoint().unwrap() > 0);
        assert!(
            dir.path().join(delta_file_name(2, 6)).exists(),
            "the recovered cadence must have chained past the failed stamp"
        );
        client.shutdown().unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.batches, 6);
        assert_eq!(report.delta_checkpoints, 1, "exactly the 2→6 stamp");
    });

    // Restart: base + delta chain + WAL suffix recover every acked batch.
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let reopen_opts = opts();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &reopen_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.next_batch_seq, 6, "acked batches lost across restart");
        assert_eq!(stats.stats, oracle.prune_stats(), "pruning statistics");
        let window = client.window().unwrap();
        assert_eq!(window.live_ids, oracle.live_ids());
        client.shutdown().unwrap();
        handle.join().unwrap();
    });
}

/// A chain-bound rebase whose full snapshot cannot be written: the verb
/// fails loudly, the daemon keeps serving on the intact (bounded) chain,
/// and a later rebase at a clean path succeeds — nothing lost.
#[test]
fn rebase_write_failure_keeps_serving_and_loses_nothing() {
    let (ctx, streams, params) = build_oracle_inputs();
    let batches = streams.arrival_batches(BATCH);
    assert!(batches.len() >= 8, "stream too short for the scenario");
    let (_, oracle) = oracle_run(&ctx, params, &batches[..8]);
    let dir = TempDir::new("fault_rebase");

    // Chain bound 1: base at 2, delta at 4, then the seq-6 stamp demands
    // a rebase (full snapshot `ckpt-6`) — squat on its temp path.
    let tmp_path = dir
        .path()
        .join(checkpoint_file_name(6))
        .with_extension("tmp");
    std::fs::create_dir_all(&tmp_path).unwrap();

    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let run_opts = ServeOptions {
        ckpt_mode: CkptMode::Delta,
        compaction: CompactionPolicy {
            max_chain_len: 1,
            ..CompactionPolicy::two_generation()
        },
        ..opts()
    };
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &run_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        for batch in &batches[..2] {
            client.ingest_wait(batch).unwrap();
        }
        assert!(client.checkpoint().unwrap() > 0, "full base at seq 2");
        for batch in &batches[2..4] {
            client.ingest_wait(batch).unwrap();
        }
        assert!(
            client.checkpoint().unwrap() > 0,
            "delta 2→4 fills the bound"
        );
        for batch in &batches[4..6] {
            client.ingest_wait(batch).unwrap();
        }
        // The poisoned rebase: loud error, chain and WAL untouched.
        match client.checkpoint() {
            Err(ClientError::Server(msg)) => {
                assert!(
                    msg.contains("checkpoint failed"),
                    "unexpected error shape: {msg}"
                );
            }
            other => panic!("rebase over a poisoned path returned {other:?}"),
        }
        // Serving continues; the rebase retries at the next stamp's clean
        // path and succeeds.
        for batch in &batches[6..8] {
            client.ingest_wait(batch).unwrap();
        }
        assert!(client.checkpoint().unwrap() > 0, "rebase at seq 8");
        assert!(
            dir.path().join(checkpoint_file_name(8)).exists(),
            "the retried rebase must be a full snapshot"
        );
        client.shutdown().unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.batches, 8);
        assert_eq!(report.delta_checkpoints, 1, "only the 2→4 stamp chained");
    });

    // Restart: every acked batch survives the failed rebase.
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let reopen_opts = opts();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &reopen_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.next_batch_seq, 8, "acked batches lost across restart");
        assert_eq!(stats.stats, oracle.prune_stats(), "pruning statistics");
        let window = client.window().unwrap();
        assert_eq!(window.live_ids, oracle.live_ids());
        client.shutdown().unwrap();
        handle.join().unwrap();
    });
}

/// Delta cadence under a production-scale window (10⁵ capacity) with
/// fsync latency injected: every ack still waits out its covering fsync,
/// the cadence emits real delta stamps, and a restart recovers the chain
/// — the large-window configuration changes costs, never contracts.
#[test]
fn slow_fsync_at_production_window_keeps_delta_cadence_durable() {
    const SHIM: Duration = Duration::from_millis(50);
    let (ctx, streams, base_params) = build_oracle_inputs();
    let params = ter_ids::Params {
        window: 100_000,
        ..base_params
    };
    let batches = streams.arrival_batches(BATCH);
    let probe = &batches[..6];
    let (_, oracle) = oracle_run(&ctx, params, probe);

    let dir = TempDir::new("fault_big_window");
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let run_opts = ServeOptions {
        ckpt_mode: CkptMode::Delta,
        checkpoint_every: 2,
        fsync_delay: SHIM,
        ..opts()
    };
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &run_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        for (i, batch) in probe.iter().enumerate() {
            let started = Instant::now();
            client.ingest_wait(batch).unwrap();
            let elapsed = started.elapsed();
            assert!(
                elapsed >= SHIM,
                "batch {i} acked after {elapsed:?} — before its {SHIM:?} fsync"
            );
        }
        client.shutdown().unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.batches, probe.len() as u64);
        assert!(
            report.delta_checkpoints >= 1,
            "the cadence must have chained at least one delta: {report:?}"
        );
    });

    // Restart recovers through the chain at the big window.
    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().unwrap();
    let reopen_opts = ServeOptions {
        ckpt_mode: CkptMode::Delta,
        ..opts()
    };
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &reopen_opts).unwrap());
        let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.next_batch_seq, probe.len() as u64);
        assert_eq!(stats.stats, oracle.prune_stats(), "pruning statistics");
        let window = client.window().unwrap();
        assert_eq!(window.live_ids, oracle.live_ids());
        client.shutdown().unwrap();
        handle.join().unwrap();
    });
}
