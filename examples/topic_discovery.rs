//! Deriving the query topic keywords `K` with LDA, then running TER-iDS.
//!
//! ```bash
//! cargo run --release --example topic_discovery
//! ```
//!
//! The paper assumes users hand-pick topic keywords. This example closes
//! the loop on a generated Anime-like dataset: fit collapsed-Gibbs LDA
//! over the stream text, print the discovered topics, pick one topic's top
//! words as `K`, and run the engine with it.

use ter_datasets::{preset, GenOptions, Preset};
use ter_ids::{ErProcessor, Params, PruningMode, TerContext, TerIdsEngine};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;
use ter_text::KeywordSet;
use ter_topics::{LdaConfig, LdaModel};

fn main() {
    // A small Anime-like dataset (two catalog sites, shared titles).
    let ds = preset(
        Preset::Anime,
        &GenOptions {
            scale: 0.25,
            missing_rate: 0.2,
            ..GenOptions::default()
        },
    );
    println!(
        "dataset {}: |A|={}, |B|={}, |R|={}, {} true pairs",
        ds.name,
        ds.streams.stream(0).len(),
        ds.streams.stream(1).len(),
        ds.repo.len(),
        ds.entity_pairs.len()
    );

    // 1. Fit LDA over the clean stream text (bags of tokens per tuple).
    let docs: Vec<Vec<ter_text::Token>> = ds
        .clean_streams
        .stream(0)
        .iter()
        .chain(ds.clean_streams.stream(1))
        .map(|r| {
            r.attrs
                .iter()
                .flatten()
                .flat_map(|ts| ts.tokens().iter().copied())
                .collect()
        })
        .collect();
    let lda = LdaModel::fit(
        &docs,
        ds.dict.len(),
        LdaConfig {
            topics: 5,
            iterations: 60,
            seed: 3,
            ..LdaConfig::default()
        },
    );
    for t in 0..lda.topics() {
        println!(
            "topic {t}: {}",
            lda.top_words_text(t, 6, &ds.dict).join(" ")
        );
    }

    // 2. Use topic 0's top words as the query keyword set K.
    let kw_text = lda.top_words_text(0, 5, &ds.dict).join(" ");
    let keywords = KeywordSet::parse(&kw_text, &ds.dict);
    println!("query keywords K = {{{kw_text}}}");

    // 3. Pre-compute and stream.
    let ctx = TerContext::build(
        ds.repo.clone(),
        keywords.clone(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let params = Params {
        window: 150,
        ..Params::default()
    };
    let mut engine = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    let mut reported = 0usize;
    for arrival in ds.streams.arrivals() {
        reported += engine.process(&arrival).new_matches.len();
    }

    let stats = engine.prune_stats();
    println!(
        "reported {reported} topic-related matches; pruning removed {:.1}% of {} pairs",
        stats.total_pruned_pct(),
        stats.total_pairs
    );
    // Compare against topic-filtered ground truth.
    let gt = ter_datasets::co_window_pairs(
        &ds.topical_entity_pairs(&keywords),
        &ds.streams.arrivals(),
        params.window,
    );
    let eval = ter_ids::evaluate(engine.reported(), &gt);
    println!(
        "precision {:.3}, recall {:.3}, F-score {:.3} (|truth|={})",
        eval.precision,
        eval.recall,
        eval.f_score,
        gt.len()
    );
}
