//! The paper's motivating scenario (Example 1, Figure 1, Table 1): online
//! health-community support.
//!
//! ```bash
//! cargo run --release --example health_community
//! ```
//!
//! Patients post symptoms/diagnoses/treatments to different health groups;
//! posts arrive as incomplete streams (information extraction misses
//! attributes). A medical professional registers the topic "diabetes"; the
//! engine imputes missing attributes via CDD rules (e.g. the paper's
//! `Gender, Symptom → Diagnosis, {male, [0,0.3], [0,0.2]}`) and reports
//! topic-related matching posts across groups — e.g. the pair (a1, c2).

use ter_ids::{ErProcessor, Params, PruningMode, TerContext, TerIdsEngine};
use ter_repo::{PivotConfig, Record, Repository, Schema};
use ter_rules::DiscoveryConfig;
use ter_stream::StreamSet;
use ter_text::{Dictionary, KeywordSet};

fn main() {
    let schema = Schema::new(vec!["gender", "symptom", "diagnosis", "treatment"]);
    let mut dict = Dictionary::new();

    // Historical complete posts (the repository R). Gender + symptom
    // correlate with diagnosis/treatment, which is what CDD discovery
    // exploits.
    let history = [
        (
            "male",
            "loss of weight blurred vision",
            "type two diabetes",
            "dietary therapy drug therapy",
        ),
        (
            "male",
            "loss of weight thirst",
            "type two diabetes",
            "dietary therapy drug therapy",
        ),
        (
            "male",
            "blurred vision thirst fatigue",
            "type one diabetes",
            "insulin drug therapy",
        ),
        (
            "male",
            "loss of weight fatigue",
            "type two diabetes",
            "dietary therapy drug therapy",
        ),
        (
            "female",
            "fever low spirit cough",
            "viral pneumonia",
            "antibiotics rest",
        ),
        (
            "female",
            "fever cough chest pain",
            "viral pneumonia",
            "antibiotics rest",
        ),
        (
            "male",
            "fever poor appetite cough",
            "seasonal flu",
            "drink more sleep more",
        ),
        (
            "male",
            "fever aches cough",
            "seasonal flu",
            "drink more sleep more",
        ),
        (
            "female",
            "red eye eye itchy shed tears",
            "acute conjunctivitis",
            "eye drop",
        ),
        (
            "female",
            "red eye shed tears",
            "acute conjunctivitis",
            "eye drop",
        ),
    ];
    let repo = Repository::from_records(
        schema.clone(),
        history
            .iter()
            .enumerate()
            .map(|(i, (g, s, d, t))| {
                Record::from_texts(
                    &schema,
                    1000 + i as u64,
                    &[Some(g), Some(s), Some(d), Some(t)],
                    &mut dict,
                )
            })
            .collect(),
    );

    // The professional's expertise topic.
    let keywords = KeywordSet::parse("diabetes", &dict);
    let ctx = TerContext::build(
        repo,
        keywords,
        &PivotConfig::default(),
        &DiscoveryConfig {
            min_support: 2,
            min_constant_support: 2,
            ..DiscoveryConfig::default()
        },
        16,
    );
    println!(
        "discovered {} CDD rules from {} historical posts",
        ctx.cdds.len(),
        ctx.repo.len()
    );

    // Live posts from two health groups (Table 1). Post a2's diagnosis and
    // treatment were not extracted ("−"); c2 comes from another group.
    let group_a = vec![
        Record::from_texts(
            &schema,
            1, // a1
            &[
                Some("male"),
                Some("loss of weight"),
                Some("type two diabetes"),
                Some("dietary therapy drug therapy"),
            ],
            &mut dict,
        ),
        Record::from_texts(
            &schema,
            2, // a2 — incomplete
            &[
                Some("male"),
                Some("loss of weight blurred vision"),
                None,
                None,
            ],
            &mut dict,
        ),
        Record::from_texts(
            &schema,
            3, // b2
            &[
                Some("male"),
                Some("fever poor appetite cough"),
                Some("seasonal flu"),
                Some("drink more sleep more"),
            ],
            &mut dict,
        ),
    ];
    let group_c = vec![
        Record::from_texts(
            &schema,
            11, // c1
            &[
                Some("female"),
                Some("red eye eye itchy shed tears"),
                Some("acute conjunctivitis"),
                Some("eye drop"),
            ],
            &mut dict,
        ),
        Record::from_texts(
            &schema,
            12, // c2
            &[
                Some("male"),
                Some("blurred vision loss of weight"),
                Some("type two diabetes"),
                Some("drug therapy dietary therapy"),
            ],
            &mut dict,
        ),
        Record::from_texts(
            &schema,
            13,
            &[
                Some("female"),
                Some("fever low spirit cough"),
                Some("viral pneumonia"),
                None,
            ],
            &mut dict,
        ),
    ];
    let streams = StreamSet::new(vec![group_a, group_c]);

    let params = Params {
        rho: 0.5,
        alpha: 0.3,
        window: 50,
        ..Params::default()
    };
    let mut engine = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    for arrival in streams.arrivals() {
        let out = engine.process(&arrival);
        for (a, b) in out.new_matches {
            println!("alert: diabetes-related posts ({a}, {b}) describe the same case");
        }
    }

    // The diabetes posts a1/a2 (group A) and c2 (group C) must be linked;
    // the pneumonia/conjunctivitis posts are off-topic and never reported.
    assert!(engine.results().contains(1, 12), "(a1, c2) should match");
    assert!(
        engine.results().contains(2, 12),
        "(a2, c2) should match after imputation"
    );
    assert!(!engine.results().contains(11, 13));
    println!(
        "pruning: {:.1}% of {} candidate pairs discarded before refinement",
        engine.prune_stats().total_pruned_pct(),
        engine.prune_stats().total_pairs
    );
}
