//! Quickstart: topic-aware entity resolution over two incomplete streams.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small complete repository, discovers CDD rules from it, then
//! feeds two streams (one tuple carries a missing attribute) through the
//! TER-iDS engine and prints the matching pairs.

use ter_ids::{ErProcessor, Params, PruningMode, TerContext, TerIdsEngine};
use ter_repo::{PivotConfig, Record, Repository, Schema};
use ter_rules::DiscoveryConfig;
use ter_stream::StreamSet;
use ter_text::{Dictionary, KeywordSet};

fn main() {
    let schema = Schema::new(vec!["title", "tags"]);
    let mut dict = Dictionary::new();

    // 1. A complete historical repository R (would normally be collected
    //    from past stream data). Near-duplicate rows let rule discovery
    //    learn "close titles ⇒ identical tags".
    let repo_rows = [
        ("space cowboy adventure", "scifi western"),
        ("space cowboy adventure saga", "scifi western"),
        ("high school romance", "drama comedy"),
        ("high school romance club", "drama comedy"),
        ("cooking master", "comedy food"),
        ("idol music live", "music idol"),
    ];
    let repo = Repository::from_records(
        schema.clone(),
        repo_rows
            .iter()
            .enumerate()
            .map(|(i, (t, g))| {
                Record::from_texts(&schema, 1000 + i as u64, &[Some(t), Some(g)], &mut dict)
            })
            .collect(),
    );

    // 2. The user's topic of interest.
    let keywords = KeywordSet::parse("scifi", &dict);

    // 3. Offline pre-computation: pivots, CDD rules, CDD-indexes, DR-index.
    let ctx = TerContext::build(
        repo,
        keywords,
        &PivotConfig::default(),
        &DiscoveryConfig {
            min_support: 2,
            min_constant_support: 2,
            ..DiscoveryConfig::default()
        },
        16,
    );
    println!(
        "pre-computation: {} CDD rules, DR-index over {} samples",
        ctx.cdds.len(),
        ctx.repo.len()
    );

    // 4. Two streams; tuple 2's tags are missing ("−") and get imputed.
    let s0 = vec![
        Record::from_texts(
            &schema,
            1,
            &[Some("space cowboy adventure"), Some("scifi western")],
            &mut dict,
        ),
        Record::from_texts(
            &schema,
            3,
            &[Some("cooking master"), Some("comedy food")],
            &mut dict,
        ),
    ];
    let s1 = vec![
        Record::from_texts(
            &schema,
            2,
            &[Some("space cowboy adventure"), None],
            &mut dict,
        ),
        Record::from_texts(
            &schema,
            4,
            &[Some("idol music live"), Some("music idol")],
            &mut dict,
        ),
    ];
    let streams = StreamSet::new(vec![s0, s1]);

    // 5. Online processing.
    let params = Params {
        rho: 0.55, // similarity threshold γ = 0.55 · d = 1.1
        alpha: 0.5,
        window: 100,
        ..Params::default()
    };
    let mut engine = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    for arrival in streams.arrivals() {
        let out = engine.process(&arrival);
        for (a, b) in out.new_matches {
            println!("t={}: match ({a}, {b})", arrival.timestamp);
        }
    }

    let stats = engine.prune_stats();
    println!(
        "candidate pairs: {}, pruned: {:.1}%, matches: {}",
        stats.total_pairs,
        stats.total_pruned_pct(),
        stats.matches
    );
    assert!(engine.results().contains(1, 2), "expected (1,2) to match");
    println!("done — tuple 2's missing tags were imputed and it matched tuple 1.");
}
