//! E-commerce product deduplication (the intro's recommendation-system
//! use case): find the same bike listed on two marketplace sites, in a
//! streaming fashion, comparing TER-iDS against the `con+ER` baseline.
//!
//! ```bash
//! cargo run --release --example product_dedup
//! ```

use std::time::Instant;

use ter_datasets::{co_window_pairs, preset, GenOptions, Preset};
use ter_ids::{evaluate, ErProcessor, NaiveEngine, Params, PruningMode, TerContext, TerIdsEngine};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;

fn main() {
    // Bikes-like catalogs: source B lists ~2× as many models as source A.
    let ds = preset(
        Preset::Bikes,
        &GenOptions {
            // Large enough that the F-score comparison is not small-sample
            // noise; the paper's ordering (repository ≥ window imputation)
            // holds from ~0.5 up.
            scale: 0.5,
            missing_rate: 0.3,
            missing_attrs: 1,
            ..GenOptions::default()
        },
    );
    let keywords = ds.keywords(); // one product segment (topic 0)
    println!(
        "dataset {}: |A|={}, |B|={}, querying segment keywords {{{}}}",
        ds.name,
        ds.streams.stream(0).len(),
        ds.streams.stream(1).len(),
        ds.suggested_keywords
    );

    let ctx = TerContext::build(
        ds.repo.clone(),
        keywords.clone(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let params = Params {
        window: 150,
        ..Params::default()
    };
    let arrivals = ds.streams.arrivals();
    // Bikes uses Equation-2 ground truth in the paper (§6.1).
    let gt = co_window_pairs(
        &ds.paper_groundtruth(params.rho, &keywords),
        &arrivals,
        params.window,
    );

    // --- TER-iDS ---
    let mut engine = TerIdsEngine::new(&ctx, params, PruningMode::Full);
    let t = Instant::now();
    for a in &arrivals {
        engine.process(a);
    }
    let ter_time = t.elapsed();
    let ter_eval = evaluate(engine.reported(), &gt);

    // --- con+ER baseline: impute from window neighbours, no repository ---
    let mut con = NaiveEngine::con_er(&ctx, params);
    let t = Instant::now();
    for a in &arrivals {
        con.process(a);
    }
    let con_time = t.elapsed();
    let con_eval = evaluate(con.reported(), &gt);

    println!("\n             method   F-score   wall-clock");
    println!(
        "             TER-iDS  {:.3}     {:>8.3}s ({:.1}% pairs pruned)",
        ter_eval.f_score,
        ter_time.as_secs_f64(),
        engine.prune_stats().total_pruned_pct()
    );
    println!(
        "             con+ER   {:.3}     {:>8.3}s",
        con_eval.f_score,
        con_time.as_secs_f64()
    );
    assert!(
        ter_eval.f_score >= con_eval.f_score,
        "repository-backed imputation should not lose to window imputation"
    );
}
