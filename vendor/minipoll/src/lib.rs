//! A minimal readiness poller: `poll(2)` + non-blocking sockets + a
//! cross-thread waker, with no dependencies.
//!
//! This is the offline stand-in for the usual readiness crates (mio,
//! polling): the workspace vendors exactly the surface its event-driven
//! connection front end needs.
//!
//! * [`Poller`] — register file descriptors under caller-chosen tokens
//!   with a read/write [`Interest`], then [`Poller::wait`] for
//!   [`Event`]s. Level-triggered: a readable fd keeps reporting readable
//!   until drained, so a handler that stops early is re-driven on the
//!   next wait instead of hanging.
//! * [`Waker`] / [`WakeReceiver`] — a self-pipe built from a socket
//!   pair. Any thread holding the (cloneable) `Waker` can interrupt a
//!   blocked `wait` on the loop that registered the receiver.
//!
//! On unix this wraps `poll(2)` directly (one tiny `extern "C"`
//! declaration — libc is always linked). On other platforms a degraded
//! busy-poll fallback reports every registered fd as ready after a short
//! sleep; correct (callers must handle `WouldBlock` anyway, this being a
//! level-triggered API) but not efficient — the daemon targets unix.

use std::io;
use std::time::Duration;

/// What to watch a registered fd for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when a read would not block (includes EOF/hangup).
    pub readable: bool,
    /// Report when a write would not block.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// A read would not block.
    pub readable: bool,
    /// A write would not block.
    pub writable: bool,
    /// The peer hung up or the fd is in an error state; the owner should
    /// read to EOF (readable is forced on) and drop the connection.
    pub closed: bool,
}

/// The raw fd type the poller registers. Aliased so call sites stay
/// platform-neutral.
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;
/// Fallback fd type on non-unix hosts (see the module docs).
#[cfg(not(unix))]
pub type RawFd = i64;

struct Registration {
    fd: RawFd,
    token: u64,
    interest: Interest,
}

/// A level-triggered readiness poller over raw fds. Not a reactor: it
/// owns no sockets and runs no threads; one I/O loop owns one `Poller`
/// and drives it from its own thread.
pub struct Poller {
    regs: Vec<Registration>,
}

impl Default for Poller {
    fn default() -> Self {
        Self::new()
    }
}

impl Poller {
    /// An empty poller.
    pub fn new() -> Self {
        Self { regs: Vec::new() }
    }

    /// Watches `fd` under `token`. Re-registering a live token replaces
    /// its fd and interest. The caller keeps ownership of the fd and must
    /// [`Poller::deregister`] it before closing it.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) {
        if let Some(r) = self.regs.iter_mut().find(|r| r.token == token) {
            r.fd = fd;
            r.interest = interest;
        } else {
            self.regs.push(Registration {
                fd,
                token,
                interest,
            });
        }
    }

    /// Changes a live token's interest. Returns `false` for an unknown
    /// token.
    pub fn modify(&mut self, token: u64, interest: Interest) -> bool {
        match self.regs.iter_mut().find(|r| r.token == token) {
            Some(r) => {
                r.interest = interest;
                true
            }
            None => false,
        }
    }

    /// Stops watching `token`. Returns `false` for an unknown token.
    pub fn deregister(&mut self, token: u64) -> bool {
        let before = self.regs.len();
        self.regs.retain(|r| r.token != token);
        self.regs.len() != before
    }

    /// Number of registered fds.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses (`None` = forever), or a signal interrupts the call.
    /// Clears and refills `events`; returns the number of events. An
    /// interrupted or timed-out wait returns `Ok(0)` — callers loop.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        sys::wait(&self.regs, events, timeout)?;
        Ok(events.len())
    }
}

pub use sys::{WakeReceiver, Waker};

#[cfg(unix)]
mod sys {
    use super::{Event, Registration};
    use std::io::{self, Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[cfg(target_os = "macos")]
    type Nfds = u32;
    #[cfg(not(target_os = "macos"))]
    type Nfds = core::ffi::c_ulong;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout_ms: i32) -> i32;
    }

    pub(super) fn wait(
        regs: &[Registration],
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        let mut fds: Vec<PollFd> = regs
            .iter()
            .map(|r| PollFd {
                fd: r.fd,
                events: if r.interest.readable { POLLIN } else { 0 }
                    | if r.interest.writable { POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let timeout_ms: i32 = match timeout {
            // poll(2) takes i32 milliseconds; saturate long waits.
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
            None => -1,
        };
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // spurious wakeup; callers loop
            }
            return Err(err);
        }
        for (reg, fd) in regs.iter().zip(&fds) {
            let closed = fd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
            let readable = fd.revents & POLLIN != 0 || closed;
            let writable = fd.revents & POLLOUT != 0;
            if readable || writable || closed {
                events.push(Event {
                    token: reg.token,
                    readable,
                    writable,
                    closed,
                });
            }
        }
        Ok(())
    }

    /// The wake-sending half of a self-pipe: cloneable, sendable, and
    /// safe to fire from any thread. Waking an already-pending receiver
    /// is a no-op, so wakes never block or accumulate.
    #[derive(Debug)]
    pub struct Waker {
        tx: UnixStream,
    }

    impl Waker {
        /// Interrupts the poll loop that registered the paired receiver.
        pub fn wake(&self) -> io::Result<()> {
            // `Write` is implemented for `&UnixStream`, so a shared Waker
            // (e.g. behind an Arc) can wake without locking.
            match (&self.tx).write(&[1u8]) {
                Ok(_) => Ok(()),
                // Pipe full = a wake is already pending: mission
                // accomplished.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
                Err(e) => Err(e),
            }
        }

        /// An independent handle to the same receiver.
        pub fn try_clone(&self) -> io::Result<Waker> {
            Ok(Waker {
                tx: self.tx.try_clone()?,
            })
        }
    }

    /// The wake-receiving half: register [`WakeReceiver::as_raw_fd`] in
    /// the poller (readable interest) and [`WakeReceiver::drain`] it when
    /// its token reports ready.
    #[derive(Debug)]
    pub struct WakeReceiver {
        rx: UnixStream,
    }

    impl WakeReceiver {
        /// Builds a connected waker pair.
        pub fn pair() -> io::Result<(Waker, WakeReceiver)> {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            Ok((Waker { tx }, WakeReceiver { rx }))
        }

        /// The fd to register in a [`super::Poller`].
        pub fn as_raw_fd(&self) -> super::RawFd {
            self.rx.as_raw_fd()
        }

        /// Consumes every pending wake byte (level-triggered: without the
        /// drain the poller would spin on the pipe).
        pub fn drain(&mut self) {
            let mut buf = [0u8; 64];
            loop {
                match self.rx.read(&mut buf) {
                    Ok(0) => return,
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return, // WouldBlock: drained
                }
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{Event, Registration};
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// Degraded fallback: report everything ready after a short sleep.
    /// Callers already treat readiness as a hint (level-triggered API +
    /// WouldBlock handling), so this stays correct, just busy.
    pub(super) fn wait(
        regs: &[Registration],
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        let nap = timeout.unwrap_or(Duration::from_millis(10));
        std::thread::sleep(nap.min(Duration::from_millis(10)));
        for reg in regs {
            events.push(Event {
                token: reg.token,
                readable: true,
                writable: true,
                closed: false,
            });
        }
        Ok(())
    }

    /// Flag-based waker for the fallback poller (which never blocks long
    /// enough to need a real pipe).
    #[derive(Debug)]
    pub struct Waker {
        flag: Arc<AtomicBool>,
    }

    impl Waker {
        pub fn wake(&self) -> io::Result<()> {
            self.flag.store(true, Ordering::Release);
            Ok(())
        }

        pub fn try_clone(&self) -> io::Result<Waker> {
            Ok(Waker {
                flag: Arc::clone(&self.flag),
            })
        }
    }

    #[derive(Debug)]
    pub struct WakeReceiver {
        flag: Arc<AtomicBool>,
    }

    impl WakeReceiver {
        pub fn pair() -> io::Result<(Waker, WakeReceiver)> {
            let flag = Arc::new(AtomicBool::new(false));
            Ok((
                Waker {
                    flag: Arc::clone(&flag),
                },
                WakeReceiver { flag },
            ))
        }

        pub fn as_raw_fd(&self) -> super::RawFd {
            -1
        }

        pub fn drain(&mut self) {
            self.flag.store(false, Ordering::Release);
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_only_when_data_arrives() {
        let (mut a, b) = tcp_pair();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new();
        poller.register(b.as_raw_fd(), 7, Interest::READABLE);
        let mut events = Vec::new();

        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "idle socket must not report readable");

        a.write_all(b"hi").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable && !events[0].closed);
    }

    #[test]
    fn hangup_reports_closed_and_readable() {
        let (a, b) = tcp_pair();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new();
        poller.register(b.as_raw_fd(), 1, Interest::READABLE);
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        // A close may surface as POLLIN-with-EOF or POLLHUP depending on
        // the kernel; either way the owner must be told to read.
        assert!(events[0].readable);
        let mut buf = [0u8; 8];
        assert_eq!((&b).read(&mut buf).unwrap(), 0, "read must see EOF");
    }

    #[test]
    fn writable_interest_and_modify() {
        let (_a, b) = tcp_pair();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new();
        poller.register(b.as_raw_fd(), 3, Interest::BOTH);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));

        // Downgrade to read-only: an idle socket then reports nothing.
        assert!(poller.modify(3, Interest::READABLE));
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);

        assert!(poller.deregister(3));
        assert!(!poller.deregister(3));
        assert!(poller.is_empty());
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let (waker, mut wake_rx) = WakeReceiver::pair().unwrap();
        let mut poller = Poller::new();
        poller.register(wake_rx.as_raw_fd(), 0, Interest::READABLE);

        // Keep one handle alive across the thread's exit: dropping the
        // last Waker closes the pipe, which (correctly) leaves the
        // receiver readable-at-EOF forever.
        let thread_waker = waker.try_clone().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            thread_waker.wake().unwrap();
        });
        let start = Instant::now();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "wake was missed");
        assert_eq!(events[0].token, 0);
        wake_rx.drain();
        // Drained: the next wait is quiet again.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        handle.join().unwrap();
    }

    #[test]
    fn repeated_wakes_coalesce() {
        let (waker, mut wake_rx) = WakeReceiver::pair().unwrap();
        let clone = waker.try_clone().unwrap();
        // Far more wakes than the pipe buffers: must never block or fail.
        for _ in 0..100_000 {
            waker.wake().unwrap();
            clone.wake().unwrap();
        }
        let mut poller = Poller::new();
        poller.register(wake_rx.as_raw_fd(), 0, Interest::READABLE);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        wake_rx.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
    }
}
