//! Minimal, API-compatible subset of the `rand` crate, vendored because the
//! build environment is fully offline. Only the surface actually used by
//! this workspace is provided: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic for a
//! given seed, which is all the workspace relies on (dataset generation and
//! LDA sampling are seeded and reproducibility-tested).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Mirrors `rand::SeedableRng`, seed-from-integer form only.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Same contract as real rand: sampling an empty range panics.
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let span = if inclusive {
                    // Never 0 for the <= 64-bit types this is instantiated
                    // for: a full-domain inclusive range gives 2^64 in u128.
                    (hi as u128).wrapping_sub(lo as u128).wrapping_add(1)
                } else {
                    (hi as u128).wrapping_sub(lo as u128)
                };
                // Multiply-shift bounded sampling; the tiny modulo bias is
                // irrelevant for test-data generation.
                let v = (rng.next_u64() as u128) % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Ranges usable with [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Values producible by [`Rng::gen`], mirroring `rand::distributions::Standard`.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Mirrors `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand itself does for integer seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Mirrors `rand::seq::SliceRandom` (shuffle only).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(5u32..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn empty_exclusive_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        r.gen_range(5u32..5);
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn empty_inclusive_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        // Built from runtime values so the range is genuinely reversed, as a
        // caller bug would produce (a literal trips reversed_empty_ranges).
        let (lo, hi) = (2u32, 1u32);
        r.gen_range(lo..=hi);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
