//! Minimal, API-compatible subset of the `proptest` crate, vendored because
//! the build environment is fully offline.
//!
//! Supported surface (exactly what this workspace's `proptests.rs` modules
//! use): the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! attribute, `prop_assert!`/`prop_assert_eq!`, [`strategy::Strategy`] with
//! `prop_map`, range and tuple strategies, [`collection::vec`], and
//! [`arbitrary::any`].
//!
//! Semantics differ from real proptest in one deliberate way: failing cases
//! panic immediately with the generated inputs in the message, and there is
//! no shrinking. Generation is deterministic per test (seeded from the test
//! body's address-independent case counter), so CI failures reproduce.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`, mirroring
    /// `proptest::strategy::Strategy` (generation only — no value trees).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $gen:ident),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.$gen(self.start, self.end, false)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.$gen(*self.start(), *self.end(), true)
                }
            }
        )*};
    }

    impl_range_strategy!(
        u8 => gen_u8, u16 => gen_u16, u32 => gen_u32, u64 => gen_u64,
        usize => gen_usize, i32 => gen_i32, i64 => gen_i64
    );

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_f64(self.start, self.end)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            // The closed upper bound is approximated by the half-open draw;
            // indistinguishable in practice for property generation.
            rng.gen_f64(*self.start(), *self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
        A.0, B.1, C.2, D.3, E.4
    )(A.0, B.1, C.2, D.3, E.4, F.5));

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Mirrors `proptest::arbitrary::Arbitrary` for the primitives used here.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy returned by [`any`] for primitives.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

    macro_rules! impl_arbitrary {
        ($($t:ty => |$rng:ident| $e:expr),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $e
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(core::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary!(
        bool => |rng| rng.next_u64() & 1 == 1,
        u8 => |rng| rng.next_u64() as u8,
        u16 => |rng| rng.next_u64() as u16,
        u32 => |rng| rng.next_u64() as u32,
        u64 => |rng| rng.next_u64(),
        usize => |rng| rng.next_u64() as usize,
        i32 => |rng| rng.next_u64() as i32,
        i64 => |rng| rng.next_u64() as i64,
        f64 => |rng| rng.gen_f64(0.0, 1.0)
    );

    /// Mirrors `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Mirrors `proptest::collection::SizeRange`: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from the size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_usize(self.size.lo, self.size.hi_exclusive, false);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    /// Mirrors `proptest::test_runner::Config` (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; this subset keeps the same
            // default so coverage is comparable.
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic xoshiro256** generator driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn seeded(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }

        pub fn gen_f64(&mut self, lo: f64, hi: f64) -> f64 {
            let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + unit * (hi - lo)
        }
    }

    macro_rules! impl_gen_int {
        ($($name:ident => $t:ty),*) => {$(
            impl TestRng {
                pub fn $name(&mut self, lo: $t, hi: $t, inclusive: bool) -> $t {
                    // Same contract as the rand shim: empty ranges panic
                    // with a diagnostic, never divide by zero below.
                    if inclusive {
                        assert!(lo <= hi, "cannot sample empty range");
                    } else {
                        assert!(lo < hi, "cannot sample empty range");
                    }
                    let span = if inclusive {
                        (hi as u128).wrapping_sub(lo as u128).wrapping_add(1)
                    } else {
                        (hi as u128).wrapping_sub(lo as u128)
                    };
                    let v = (self.next_u64() as u128) % span;
                    lo.wrapping_add(v as $t)
                }
            }
        )*};
    }

    impl_gen_int!(
        gen_u8 => u8, gen_u16 => u16, gen_u32 => u32, gen_u64 => u64,
        gen_usize => usize, gen_i32 => i32, gen_i64 => i64
    );
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection::SizeRange;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Mirrors `proptest::proptest!`. Each test runs `cases` times with freshly
/// generated inputs; a failed assertion panics with the standard message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Seed per test from its name so distinct tests explore
            // distinct sequences, deterministically across runs.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                });
            let mut rng = $crate::test_runner::TestRng::seeded(seed);
            for _case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Mirrors `proptest::prop_assert!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds, including through `prop_map`
        /// and tuple/vec composition.
        #[test]
        fn ranges_in_bounds(
            x in 3u32..17,
            y in 0.25f64..=0.75,
            pair in (0u32..=100, any::<bool>()),
            v in crate::collection::vec((0u32..=100).prop_map(|n| n as f64 / 100.0), 2..9),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
            prop_assert!(pair.0 <= 100);
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for f in v {
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }

        #[test]
        fn fixed_size_vec(v in crate::collection::vec(0u32..10, 4usize)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    #[test]
    fn default_config_is_256_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
    }
}
