//! Minimal, API-compatible subset of the `criterion` crate, vendored because
//! the build environment is fully offline.
//!
//! Supports the surface used by `crates/bench/benches/micro.rs`:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], the builder knobs
//! (`sample_size`, `measurement_time`, `warm_up_time`), and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! warm-up pass followed by timed samples; the mean, min, and max
//! per-iteration times are printed in criterion's familiar layout. There is
//! no statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

/// Mirrors `criterion::BatchSize` (the distinction is irrelevant to the
/// simple timing loop, but the API accepts all variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Re-export of `std::hint::black_box`, as criterion provides.
pub use std::hint::black_box;

/// Mirrors `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        let (mean, min, max) = b.stats();
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        );
        self
    }
}

/// Mirrors `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<f64>,
    budget: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed().as_secs_f64());
            if Instant::now() > deadline {
                break;
            }
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_secs_f64());
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn stats(&self) -> (f64, f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self
            .samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        (mean, min, max)
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Mirrors `criterion::criterion_group!`, both the plain and the
/// `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_uses_setup() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(2.5e-9), "2.500 ns");
        assert_eq!(fmt_duration(2.5e-6), "2.500 µs");
        assert_eq!(fmt_duration(2.5e-3), "2.500 ms");
        assert_eq!(fmt_duration(2.5), "2.500 s");
    }
}
