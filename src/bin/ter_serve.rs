//! The `ter_serve` command-line front end: run the daemon, feed it a
//! preset stream, or query it.
//!
//! ```text
//! ter_serve serve --dir DIR [--addr 127.0.0.1:7341] [--preset ebooks]
//!                 [--scale 1.0] [--window 400] [--checkpoint-every 8]
//!                 [--queue-depth 16] [--shards 8] [--threads T]
//!                 [--io-threads 2] [--flush-window 1]
//!                 [--flush-interval-ms 5] [--fsync-delay-ms 0]
//! ter_serve feed  --addr ADDR [--preset ebooks] [--scale 1.0]
//!                 [--window 400] [--batch 64] [--from auto|N]
//!                 [--pipeline W] [--resilient] [--batches N]
//!                 [--oracle-check] [--quiet]
//! ter_serve query --addr ADDR [--id ID] [--pattern 'match(a, b)']
//! ter_serve subscribe --addr ADDR --pattern 'match(a, b)'
//!                 [--sub-id 1] [--resync-seq 0] [--events N]
//! ter_serve metrics --addr ADDR [--watch N]
//! ter_serve trace --addr ADDR [--slowest N] [--follow]
//! ter_serve shutdown --addr ADDR
//! ```
//!
//! The daemon prints `LISTENING <addr>` once the socket is bound (`:0`
//! resolves to a real port), so harnesses can scrape the address. Both
//! `serve` and `feed` build the *same* deterministic generated dataset
//! from `(--preset, --scale, --window)`; the context fingerprint
//! guarantees a store directory is never mixed across datasets.
//!
//! `feed --from auto` (the default) asks the daemon where its WAL ends
//! and resumes the stream cursor there — after a `kill -9`, rerunning the
//! same `feed` command completes the stream without double-feeding.
//! `--pipeline W` keeps up to `W` unacked batches on the wire (protocol
//! v2 windowed ingest — the daemon overlaps each batch's fsync with the
//! previous batch's compute); `--resilient` additionally survives daemon
//! restarts mid-feed by re-dialing and resuming from the daemon's own
//! committed position. `--oracle-check` replays the whole stream through
//! an in-process engine and insists the daemon's final statistics are
//! bit-identical.
//!
//! `query --pattern` runs a one-shot declarative pattern query (protocol
//! v3); `subscribe` registers the pattern as a *standing* query and
//! streams the daemon's incremental match/retraction notifications to
//! stdout as the window slides — one line per event, `LAGGED` when the
//! daemon shed the subscription under backpressure (rerun `subscribe`
//! quoting the printed resync position).
//!
//! `metrics` scrapes the daemon's telemetry registry over the wire
//! (protocol v3 `MetricsDump`) and prints it in the `ter_obs` text
//! exposition format; `--watch N` re-scrapes every N seconds and renders
//! counter/histogram *deltas* instead — a poor-man's `top` for the
//! daemon. `serve --metrics-text <path|->` additionally makes the daemon
//! itself write the same exposition to a file (atomically, on every
//! cadence checkpoint, at shutdown, and on a step-stage panic) — the
//! flight-recorder dump a post-mortem reads after a `kill -9`.
//!
//! `trace` scrapes the daemon's causal per-batch traces (protocol v3
//! `TraceDump`): first the cumulative critical-path attribution table —
//! where each acked batch's end-to-end latency went, segment by segment
//! — then the slowest retained traces rendered as span trees.
//! `--slowest N` bounds the tree count; `--follow` keeps re-scraping and
//! prints traces it has not shown before.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use ter_datasets::{preset, GenOptions, Preset};
use ter_exec::ExecConfig;
use ter_ids::{ErProcessor, Params, PruningMode, TerContext, TerIdsEngine};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;
use ter_serve::{CkptMode, Client, ResilientClient, ServeOptions, Server};
use ter_store::CompactionPolicy;
use ter_stream::StreamSet;

fn usage() -> ! {
    eprintln!(
        "usage: ter_serve <serve|feed|query|shutdown> [flags]\n\
         \n\
         serve    --dir DIR [--addr 127.0.0.1:7341] [--preset ebooks] [--scale 1.0]\n\
         \x20        [--window 400] [--checkpoint-every 8] [--queue-depth 16]\n\
         \x20        [--ckpt-mode full|delta] [--checkpoint-bytes N]\n\
         \x20        [--max-chain-len 16] [--max-chain-bytes 0]\n\
         \x20        [--shards 8] [--threads T] [--io-threads 2]\n\
         \x20        [--flush-window 1] [--flush-interval-ms 5]\n\
         \x20        [--notify-buffer 262144] [--metrics-text PATH|-]\n\
         feed     --addr ADDR [--preset ebooks] [--scale 1.0] [--window 400]\n\
         \x20        [--batch 64] [--from auto|N] [--batches N] [--pipeline W]\n\
         \x20        [--resilient] [--oracle-check] [--quiet]\n\
         query    --addr ADDR [--id ID] [--pattern 'match(a, b)']\n\
         subscribe --addr ADDR --pattern 'match(a, b)' [--sub-id 1]\n\
         \x20        [--resync-seq 0] [--events N]\n\
         metrics  --addr ADDR [--watch N]\n\
         trace    --addr ADDR [--slowest N] [--follow]\n\
         shutdown --addr ADDR"
    );
    std::process::exit(2);
}

/// Flag parser: `--key value` pairs after the subcommand.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut out = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let Some(key) = args[i].strip_prefix("--") else {
                eprintln!("unexpected argument: {}", args[i]);
                usage();
            };
            // Boolean flags take no value.
            if matches!(key, "oracle-check" | "quiet" | "resilient" | "follow") {
                out.push((key.to_string(), "true".to_string()));
                i += 1;
                continue;
            }
            let Some(value) = args.get(i + 1) else {
                eprintln!("flag --{key} needs a value");
                usage();
            };
            out.push((key.to_string(), value.clone()));
            i += 2;
        }
        Self(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for --{key}: {raw}");
                usage();
            }),
        }
    }

    fn required(&self, key: &str) -> &str {
        self.get(key).unwrap_or_else(|| {
            eprintln!("missing required flag --{key}");
            usage();
        })
    }

    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

fn parse_preset(name: &str) -> Preset {
    match name.to_ascii_lowercase().as_str() {
        "citations" => Preset::Citations,
        "anime" => Preset::Anime,
        "bikes" => Preset::Bikes,
        "ebooks" => Preset::EBooks,
        "songs" => Preset::Songs,
        _ => {
            eprintln!("unknown preset {name} (citations|anime|bikes|ebooks|songs)");
            usage();
        }
    }
}

/// Builds the deterministic dataset + offline context shared by `serve`,
/// `feed --from auto`, and the oracle check.
fn build(flags: &Flags) -> (TerContext, StreamSet, Params) {
    let p = parse_preset(flags.get("preset").unwrap_or("ebooks"));
    let scale: f64 = flags.parsed("scale", 1.0);
    let params = Params {
        window: flags.parsed("window", Params::default().window),
        ..Params::default()
    };
    let ds = preset(
        p,
        &GenOptions {
            scale,
            ..GenOptions::default()
        },
    );
    let keywords = ds.keywords();
    let ctx = TerContext::build(
        ds.repo.clone(),
        keywords,
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        params.fanout,
    );
    (ctx, ds.streams, params)
}

fn cmd_serve(flags: &Flags) -> ExitCode {
    let dir = flags.required("dir").to_string();
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7341").to_string();
    let opts = ServeOptions {
        queue_depth: flags.parsed("queue-depth", 16),
        checkpoint_every: flags.parsed("checkpoint-every", 8),
        ckpt_mode: match flags.get("ckpt-mode").unwrap_or("full") {
            "full" => CkptMode::Full,
            "delta" => CkptMode::Delta,
            other => {
                eprintln!("invalid --ckpt-mode {other} (full|delta)");
                usage();
            }
        },
        // Byte-based cadence on top of the count cadence (0 = off):
        // bounds replay work directly when batch sizes vary.
        checkpoint_bytes: flags.parsed("checkpoint-bytes", 0),
        compaction: CompactionPolicy {
            max_chain_len: flags.parsed(
                "max-chain-len",
                CompactionPolicy::two_generation().max_chain_len,
            ),
            max_chain_bytes: flags.parsed(
                "max-chain-bytes",
                CompactionPolicy::two_generation().max_chain_bytes,
            ),
            ..CompactionPolicy::two_generation()
        },
        exec: ExecConfig::new(
            flags.parsed("shards", 8),
            flags.parsed("threads", ExecConfig::default().threads),
        ),
        // Test-harness knob: slows the step stage so crash tests can pin
        // the daemon mid-stream deterministically. Zero in production.
        ingest_hold: Duration::from_millis(flags.parsed("ingest-hold-ms", 0)),
        io_threads: flags.parsed("io-threads", ServeOptions::default().io_threads),
        flush_window: flags.parsed("flush-window", ServeOptions::default().flush_window),
        flush_interval: Duration::from_millis(flags.parsed(
            "flush-interval-ms",
            ServeOptions::default().flush_interval.as_millis() as u64,
        )),
        // Fault-injection knob: slows every WAL commit fsync so crash
        // harnesses can reliably land a SIGKILL inside an open flush
        // window. Zero in production.
        fsync_delay: Duration::from_millis(flags.parsed("fsync-delay-ms", 0)),
        notify_buffer: flags.parsed("notify-buffer", ServeOptions::default().notify_buffer),
        // Fault-injection knob: panic the step stage right before this
        // batch sequence — crash harnesses assert the panic-path flight
        // dump. Absent in production.
        panic_on_batch: flags.get("panic-on-batch").map(|raw| {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("invalid --panic-on-batch");
                usage();
            })
        }),
    };
    if let Some(target) = flags.get("metrics-text") {
        ter_obs::set_dump_path(Some(std::path::PathBuf::from(target)));
    }
    eprintln!(
        "building context ({})...",
        flags.get("preset").unwrap_or("ebooks")
    );
    let (ctx, _streams, params) = build(flags);
    let server = match Server::bind(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    let bound = server.addr().expect("bound address");
    // The line harnesses scrape; keep the format stable.
    println!("LISTENING {bound}");
    use std::io::Write;
    std::io::stdout().flush().ok();
    match server.run(&ctx, params, std::path::Path::new(&dir), &opts) {
        Ok(report) => {
            println!(
                "shutdown: resumed_at={} replayed={} batches={} arrivals={} checkpoints={} delta_checkpoints={} fsyncs={}",
                report.resumed_at,
                report.replayed,
                report.batches,
                report.arrivals,
                report.checkpoints,
                report.delta_checkpoints,
                report.fsyncs
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::from(1)
        }
    }
}

fn parse_addr(flags: &Flags) -> std::net::SocketAddr {
    flags.required("addr").parse().unwrap_or_else(|_| {
        eprintln!("invalid --addr");
        usage();
    })
}

fn connect(flags: &Flags) -> Client {
    let addr = parse_addr(flags);
    match Client::connect_retry(addr, Duration::from_secs(30)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            std::process::exit(1);
        }
    }
}

/// Replays the whole stream through an in-process engine and compares the
/// daemon's final statistics bit-for-bit.
fn oracle_check(
    ctx: &TerContext,
    params: Params,
    streams: &StreamSet,
    batch: usize,
    stats: &ter_serve::StatsInfo,
) -> bool {
    let mut oracle = TerIdsEngine::new(ctx, params, PruningMode::Full);
    for b in streams.cursor_at(0, batch) {
        oracle.step_batch(&b);
    }
    if stats.stats == oracle.prune_stats() && stats.window_len == oracle.window_len() {
        println!("PARITY OK: daemon statistics bit-identical to the library engine");
        true
    } else {
        eprintln!(
            "PARITY FAILED:\n  daemon: {:?} (window {})\n  oracle: {:?} (window {})",
            stats.stats,
            stats.window_len,
            oracle.prune_stats(),
            oracle.window_len()
        );
        false
    }
}

fn cmd_feed(flags: &Flags) -> ExitCode {
    let batch: usize = flags.parsed("batch", 64);
    let quiet = flags.has("quiet");
    let pipeline: usize = flags.parsed("pipeline", 1).max(1);
    // `--batches N` stops after N batches — harnesses use it to leave a
    // stream half-fed before a kill.
    let limit: usize = flags.parsed("batches", usize::MAX);
    let (ctx, streams, params) = build(flags);

    // ---- resilient mode: the wrapper owns resume + reconnect ----
    if flags.has("resilient") {
        let addr = parse_addr(flags);
        let mut rc = ResilientClient::new(addr, Duration::from_secs(30));
        let all: Vec<Vec<ter_stream::Arrival>> = streams.cursor_at(0, batch).collect();
        let already = match rc.stats() {
            Ok(s) => s.next_batch_seq as usize,
            Err(e) => {
                eprintln!("stats: {e}");
                return ExitCode::from(1);
            }
        };
        let end = all.len().min(already.saturating_add(limit));
        if !quiet {
            println!(
                "feeding resiliently: {} of {} batches committed, window {}",
                already,
                end,
                pipeline.max(2)
            );
        }
        let start = Instant::now();
        let report = match rc.feed(&all[..end], pipeline.max(2)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("resilient feed failed: {e}");
                return ExitCode::from(1);
            }
        };
        let secs = start.elapsed().as_secs_f64();
        println!(
            "fed {} arrivals in {secs:.2}s ({:.0} tuples/s), {} busy retries, {} reconnects",
            report.arrivals,
            report.arrivals as f64 / secs.max(1e-9),
            report.busy_retries,
            report.reconnects
        );
        if flags.has("oracle-check") {
            let stats = match rc.stats() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("stats: {e}");
                    return ExitCode::from(1);
                }
            };
            if !oracle_check(&ctx, params, &streams, batch, &stats) {
                return ExitCode::from(1);
            }
        }
        return ExitCode::SUCCESS;
    }

    let mut client = connect(flags);
    let from = match flags.get("from").unwrap_or("auto") {
        "auto" => {
            let stats = client.stats().expect("stats");
            // The feeder always sends full `batch`-sized batches (only the
            // final one may be short), so the committed batch count maps
            // directly to an arrival offset.
            (stats.next_batch_seq as usize) * batch
        }
        raw => raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid --from (auto or an arrival index)");
            usage();
        }),
    };
    let mut cursor = streams.cursor_at(from, batch);
    let total = cursor.remaining();
    if !quiet {
        println!(
            "feeding {} arrivals (from arrival {}, batch {}, pipeline {})",
            total, from, batch, pipeline
        );
    }
    let start = Instant::now();
    let mut matches = 0usize;
    let mut fed = 0usize;
    if pipeline > 1 {
        // ---- windowed (v2) ingest: one go-back-N run over the tail ----
        let batches: Vec<Vec<ter_stream::Arrival>> = cursor.by_ref().take(limit).collect();
        fed = batches.iter().map(Vec::len).sum();
        match client.ingest_pipelined(&batches, pipeline) {
            Ok(run) => {
                matches = run.per_batch.iter().flatten().map(Vec::len).sum::<usize>();
                if !quiet && run.busy_retries > 0 {
                    println!("absorbed {} busy retries", run.busy_retries);
                }
            }
            Err(e) => {
                eprintln!("pipelined ingest failed: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        for (i, b) in cursor.by_ref().enumerate() {
            if i >= limit {
                break;
            }
            let per_arrival = match client.ingest_wait(&b) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("ingest failed at arrival {fed}: {e}");
                    return ExitCode::from(1);
                }
            };
            fed += b.len();
            matches += per_arrival.iter().map(Vec::len).sum::<usize>();
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "fed {fed} arrivals in {secs:.2}s ({:.0} tuples/s), {matches} matches reported",
        fed as f64 / secs.max(1e-9)
    );
    if flags.has("oracle-check") {
        let stats = client.stats().expect("stats");
        if !oracle_check(&ctx, params, &streams, batch, &stats) {
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

fn cmd_query(flags: &Flags) -> ExitCode {
    let mut client = connect(flags);
    if let Some(pattern) = flags.get("pattern") {
        match client.pattern_query(pattern) {
            Ok((seq, rows)) => {
                println!("position: batch {seq}, {} rows", rows.len());
                for row in rows {
                    println!("{row:?}");
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("pattern query failed: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if let Some(raw) = flags.get("id") {
        let id: u64 = raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid --id");
            usage();
        });
        let info = client.entity(id).expect("entity query");
        if info.found {
            println!(
                "entity {id}: stream={} timestamp={} topical={} partners={:?}",
                info.stream_id, info.timestamp, info.possibly_topical, info.partners
            );
        } else {
            println!("entity {id}: not live");
        }
        return ExitCode::SUCCESS;
    }
    let stats = client.stats().expect("stats");
    let window = client.window().expect("window");
    let results = client.results().expect("results");
    println!(
        "position: batch {} ({} arrivals this session), WAL {} bytes",
        stats.next_batch_seq, stats.session_arrivals, stats.wal_bytes
    );
    println!("window: {}/{} live tuples", window.len, window.capacity);
    println!(
        "pruning: {} pairs → topic {} / sim {} / prob {} / instance {} / matches {}",
        stats.stats.total_pairs,
        stats.stats.topic,
        stats.stats.sim,
        stats.stats.prob,
        stats.stats.instance,
        stats.stats.matches
    );
    println!("live matches: {results:?}");
    ExitCode::SUCCESS
}

/// Registers a standing query and streams its notifications to stdout:
/// first the snapshot (`SNAPSHOT <seq> <rows>` then one `ROW` line per
/// row), then one `NOTIFY` line per pushed batch delta. Exits after
/// `--events N` events, on `LAGGED` (the daemon shed us — rerun with the
/// printed resync position), or when the daemon goes away.
fn cmd_subscribe(flags: &Flags) -> ExitCode {
    let pattern = flags.required("pattern").to_string();
    let sub_id: u64 = flags.parsed("sub-id", 1);
    let resync_seq: u64 = flags.parsed("resync-seq", 0);
    let limit: u64 = flags.parsed("events", u64::MAX);
    let mut client = connect(flags);
    let ack = match client.subscribe(sub_id, resync_seq, &pattern) {
        Ok(ack) => ack,
        Err(e) => {
            eprintln!("subscribe failed: {e}");
            return ExitCode::from(1);
        }
    };
    println!("SNAPSHOT seq={} rows={}", ack.seq, ack.rows.len());
    for row in &ack.rows {
        println!("ROW {row:?}");
    }
    use std::io::Write;
    std::io::stdout().flush().ok();
    let mut seen = 0u64;
    while seen < limit {
        match client.next_event() {
            Ok(ter_serve::SubEvent::Notify {
                seq,
                added,
                retracted,
                ..
            }) => {
                println!("NOTIFY seq={seq} added={added:?} retracted={retracted:?}");
                std::io::stdout().flush().ok();
                seen += 1;
            }
            Ok(ter_serve::SubEvent::Lagged { resync_seq, .. }) => {
                println!("LAGGED resync_seq={resync_seq}");
                eprintln!(
                    "subscription shed under backpressure; resubscribe with --resync-seq {resync_seq}"
                );
                return ExitCode::from(3);
            }
            Err(e) => {
                eprintln!("subscription ended: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let _ = client.unsubscribe(sub_id);
    ExitCode::SUCCESS
}

/// Scrapes the daemon's metric registry + flight ring over the wire.
/// One-shot: prints the full `ter_obs` text exposition. `--watch N`:
/// re-scrapes every N seconds and prints only what moved — counter and
/// histogram deltas per interval, gauge current values, histogram
/// quantiles over the interval's own samples.
fn cmd_metrics(flags: &Flags) -> ExitCode {
    let watch: u64 = flags.parsed("watch", 0);
    let mut client = connect(flags);
    let (rows, flight) = match client.metrics_dump() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("metrics dump failed: {e}");
            return ExitCode::from(1);
        }
    };
    if watch == 0 {
        let mut text = ter_obs::render_parts("scrape", &rows, &flight);
        // The daemon's retained traces + attribution table ride along
        // (same lines a local `--metrics-text` dump carries), so piping
        // the scrape into trace2folded.sh works on a remote daemon too.
        match client.trace_dump() {
            Ok((cp, traces)) => ter_obs::render_traces_into(&mut text, &cp, &traces),
            Err(e) => eprintln!("trace dump failed (metrics rendered without traces): {e}"),
        }
        print!("{text}");
        return ExitCode::SUCCESS;
    }
    use std::io::Write;
    let mut prev = rows;
    loop {
        std::thread::sleep(Duration::from_secs(watch.max(1)));
        let (rows, _) = match client.metrics_dump() {
            Ok(x) => x,
            Err(e) => {
                eprintln!("metrics watch ended: {e}");
                return ExitCode::from(1);
            }
        };
        println!("--- delta over {}s ---", watch.max(1));
        for (p, n) in prev.iter().zip(rows.iter()) {
            match n.kind {
                ter_obs::KIND_COUNTER => {
                    let d = n.value.saturating_sub(p.value);
                    if d > 0 {
                        println!("{} +{d}", n.name);
                    }
                }
                ter_obs::KIND_GAUGE => {
                    if n.value != 0 || p.value != 0 {
                        println!("{} {}", n.name, n.value);
                    }
                }
                _ => {
                    // Per-interval quantiles: the delta of the two
                    // cumulative bucket vectors is the interval's own
                    // distribution — quantiles of the *recent* samples,
                    // not of everything since daemon start.
                    let d = n.delta(p);
                    if d.value > 0 {
                        println!(
                            "{} +{} p50<={} p95<={} p99<={}",
                            n.name,
                            d.value,
                            d.quantile(0.50),
                            d.quantile(0.95),
                            d.quantile(0.99)
                        );
                    }
                }
            }
        }
        std::io::stdout().flush().ok();
        prev = rows;
    }
}

/// Renders the cumulative critical-path attribution table: where the
/// mean acked batch's end-to-end latency went, segment by segment.
fn print_attribution(cp: &ter_obs::trace::CriticalPath) {
    if cp.traces == 0 {
        println!("no completed traces yet (tracing disabled, or no ingest acked)");
        return;
    }
    println!(
        "critical path over {} traces, mean end-to-end {}us:",
        cp.traces,
        cp.total_micros / cp.traces
    );
    for (name, us) in cp.segments() {
        let pct = 100.0 * us as f64 / cp.total_micros.max(1) as f64;
        println!("  {name:<14} {us:>12}us  {pct:>5.1}%");
    }
}

/// Renders one retained trace as an indented span tree. Spans arrive in
/// kind order with explicit parents: engine stages nest under the step
/// span, everything else under the batch root (the header line).
fn print_trace(t: &ter_obs::trace::Trace) {
    let anomaly = if t.anomaly { "  [anomaly]" } else { "" };
    println!(
        "batch seq={} dur={}us covered={}{anomaly}",
        t.batch_seq, t.dur, t.covered
    );
    for s in &t.spans {
        if s.kind == ter_obs::trace::kind::ROOT {
            continue; // the header line above is the root span
        }
        let depth = if s.parent == ter_obs::trace::kind::ROOT {
            1
        } else {
            2
        };
        println!(
            "{:indent$}{} +{}us dur={}us",
            "",
            ter_obs::trace::kind::name(s.kind),
            s.start.saturating_sub(t.start),
            s.dur,
            indent = depth * 2
        );
    }
}

/// Scrapes the daemon's causal trace surface (protocol v3 `TraceDump`):
/// attribution table first, then the `--slowest N` retained traces as
/// span trees. `--follow` re-scrapes every 2 seconds and prints traces
/// not shown before.
fn cmd_trace(flags: &Flags) -> ExitCode {
    use std::io::Write;
    let slowest: usize = flags.parsed("slowest", 5);
    let follow = flags.get("follow").is_some();
    let mut client = connect(flags);
    let mut seen = std::collections::HashSet::new();
    loop {
        let (cp, traces) = match client.trace_dump() {
            Ok(x) => x,
            Err(e) => {
                eprintln!("trace dump failed: {e}");
                return ExitCode::from(1);
            }
        };
        print_attribution(&cp);
        let mut fresh: Vec<&ter_obs::trace::Trace> = traces
            .iter()
            .filter(|t| !seen.contains(&t.batch_seq))
            .collect();
        fresh.sort_by_key(|t| std::cmp::Reverse(t.dur));
        fresh.truncate(slowest);
        for t in &fresh {
            print_trace(t);
        }
        for t in &traces {
            seen.insert(t.batch_seq);
        }
        if !follow {
            return ExitCode::SUCCESS;
        }
        std::io::stdout().flush().ok();
        std::thread::sleep(Duration::from_secs(2));
    }
}

fn cmd_shutdown(flags: &Flags) -> ExitCode {
    let mut client = connect(flags);
    match client.shutdown() {
        Ok(batches) => {
            println!("daemon stopped after {batches} batches this run");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shutdown failed: {e}");
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = Flags::parse(&args[1..]);
    match cmd.as_str() {
        "serve" => cmd_serve(&flags),
        "feed" => cmd_feed(&flags),
        "query" => cmd_query(&flags),
        "subscribe" => cmd_subscribe(&flags),
        "metrics" => cmd_metrics(&flags),
        "trace" => cmd_trace(&flags),
        "shutdown" => cmd_shutdown(&flags),
        _ => usage(),
    }
}
