//! Umbrella crate for the TER-iDS reproduction workspace.
//!
//! The implementation lives in the `crates/` members; this root package
//! exists to host the workspace-level integration tests (`tests/`) and
//! runnable examples (`examples/`), and re-exports every member so docs
//! for the whole system build from one place.

pub use ter_datasets as datasets;
pub use ter_exec as exec;
pub use ter_ids as core;
pub use ter_impute as impute;
pub use ter_index as index;
pub use ter_repo as repo;
pub use ter_rules as rules;
pub use ter_stream as stream;
pub use ter_text as text;
pub use ter_topics as topics;
