//! Property tests for the persistence layer.
//!
//! Two contracts, per the recovery spec:
//!
//! 1. **Round-trip identity** — `decode(encode(v)) == v` (exact, `f64`s
//!    compared bitwise) for every persisted type.
//! 2. **Rejection, not panic** — arbitrary single-byte mutations of a
//!    framed file are rejected (`Err`), and arbitrary byte soup fed to
//!    any decoder returns without panicking.

use proptest::prelude::*;
use ter_ids::meta::TupleMeta;
use ter_ids::{EngineState, PruneStats};
use ter_repo::Record;
use ter_stream::{Arrival, AttrCandidates, ProbTuple};
use ter_text::{Interval, Token, TokenSet, TopicVector};

use crate::codec::{decode_exact, encode_to_vec, Codec};
use crate::frame::{decode_single_frame, read_frame, write_frame};

fn arb_tokenset() -> impl Strategy<Value = TokenSet> {
    proptest::collection::vec(0u32..400, 0..6)
        .prop_map(|v| TokenSet::new(v.into_iter().map(Token).collect()))
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    // Mix of regular, point, empty-accumulator, and missing-sentinel
    // intervals — every shape the engine persists.
    ((0u32..=100), (0u32..=100), 0u8..4).prop_map(|(a, b, kind)| match kind {
        0 => Interval::empty(),
        1 => Interval::missing(),
        2 => Interval::point(a as f64 / 100.0),
        _ => {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            Interval::new(lo as f64 / 100.0, hi as f64 / 100.0)
        }
    })
}

fn arb_topics() -> impl Strategy<Value = TopicVector> {
    proptest::collection::vec(any::<bool>(), 0..130).prop_map(|bits| {
        let mut v = TopicVector::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            if *b {
                v.set(i);
            }
        }
        v
    })
}

/// Per-attribute spec: present value, or a (non-empty) candidate
/// distribution for a missing attribute.
type AttrSpec = (bool, TokenSet, Vec<(TokenSet, u32)>);

fn arb_attr_spec() -> impl Strategy<Value = AttrSpec> {
    (
        any::<bool>(),
        arb_tokenset(),
        proptest::collection::vec((arb_tokenset(), 1u32..50), 1..4),
    )
}

fn assemble_prob_tuple(id: u64, specs: &[AttrSpec]) -> ProbTuple {
    let attrs: Vec<Option<TokenSet>> = specs
        .iter()
        .map(|(present, value, _)| present.then(|| value.clone()))
        .collect();
    let base = Record { id, attrs };
    let imputed: Vec<AttrCandidates> = specs
        .iter()
        .enumerate()
        .filter(|(_, (present, _, _))| !present)
        .map(|(attr, (_, _, cands))| {
            AttrCandidates::normalized(
                attr,
                cands.iter().map(|(v, w)| (v.clone(), *w as f64)).collect(),
            )
        })
        .collect();
    ProbTuple { base, imputed }
}

fn arb_prob_tuple() -> impl Strategy<Value = ProbTuple> {
    (
        any::<u64>(),
        proptest::collection::vec(arb_attr_spec(), 1..4),
    )
        .prop_map(|(id, specs)| assemble_prob_tuple(id, &specs))
}

fn arb_tuple_meta() -> impl Strategy<Value = TupleMeta> {
    (
        arb_prob_tuple(),
        (0usize..4, any::<u64>()),
        proptest::collection::vec(arb_interval(), 1..4),
        proptest::collection::vec((0u32..=1000).prop_map(|v| v as f64 / 1000.0), 1..4),
        proptest::collection::vec(arb_interval(), 0..7),
        (arb_topics(), any::<bool>(), arb_tokenset()),
    )
        .prop_map(
            |(tuple, (stream_id, timestamp), bounds, expect, aux, (topics, topical, tokens))| {
                TupleMeta {
                    id: tuple.base.id,
                    stream_id,
                    timestamp,
                    tuple,
                    main_bounds: bounds.clone(),
                    main_expect: expect,
                    aux_bounds: aux,
                    size_bounds: bounds,
                    topics,
                    possibly_topical: topical,
                    possible_tokens: tokens,
                }
            },
        )
}

fn arb_prune_stats() -> impl Strategy<Value = PruneStats> {
    proptest::collection::vec(any::<u64>(), 6usize).prop_map(|v| PruneStats {
        total_pairs: v[0],
        topic: v[1],
        sim: v[2],
        prob: v[3],
        instance: v[4],
        matches: v[5],
    })
}

fn arb_pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((any::<u64>(), any::<u64>()), 0..8)
}

fn arb_engine_state() -> impl Strategy<Value = EngineState> {
    // Structurally arbitrary (round-trip does not require the cross-field
    // invariants `EngineState::validate` enforces at import).
    (
        (
            0usize..500,
            any::<u16>(),
            proptest::collection::vec(any::<u64>(), 0..6),
        ),
        proptest::collection::vec(arb_tuple_meta(), 0..4),
        (arb_pairs(), arb_pairs(), arb_prune_stats()),
        proptest::collection::vec(
            (
                proptest::collection::vec(any::<u16>(), 1..4),
                proptest::collection::vec(any::<u64>(), 1..5),
            ),
            0..5,
        ),
    )
        .prop_map(
            |((cap, grid, counts), metas, (results, reported, stats), cells)| EngineState {
                window_capacity: cap,
                grid_cells: grid,
                window: metas.iter().map(|m| (m.timestamp, m.id)).collect(),
                metas,
                stream_counts: counts.into_iter().map(|c| c as usize).collect(),
                results,
                reported,
                stats,
                cells: cells
                    .into_iter()
                    .map(|(k, ids)| (k.into_boxed_slice(), ids))
                    .collect(),
            },
        )
}

fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = encode_to_vec(v);
    let back: T = decode_exact(&bytes).expect("round-trip decode failed");
    assert_eq!(&back, v);
    // Canonical: re-encoding reproduces the same bytes.
    assert_eq!(encode_to_vec(&back), bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn token_sets_round_trip(ts in arb_tokenset()) {
        round_trip(&ts);
    }

    #[test]
    fn intervals_round_trip(iv in arb_interval()) {
        round_trip(&iv);
    }

    #[test]
    fn topic_vectors_round_trip(tv in arb_topics()) {
        round_trip(&tv);
    }

    #[test]
    fn prob_tuples_round_trip(pt in arb_prob_tuple()) {
        round_trip(&pt.base);
        round_trip(&pt);
    }

    #[test]
    fn arrivals_round_trip(
        pt in arb_prob_tuple(),
        stream_id in 0usize..8,
        timestamp in any::<u64>(),
    ) {
        round_trip(&Arrival { stream_id, timestamp, record: pt.base });
    }

    #[test]
    fn tuple_metas_round_trip(meta in arb_tuple_meta()) {
        round_trip(&meta);
    }

    #[test]
    fn engine_states_round_trip(state in arb_engine_state()) {
        round_trip(&state);
    }

    /// Any single-byte change to a single-frame file is rejected: a CRC or
    /// payload byte is a ≤8-bit burst error CRC-32 always detects, a
    /// shrunken length leaves trailing bytes, a grown one tears the frame.
    #[test]
    fn framed_mutations_are_rejected(
        state in arb_engine_state(),
        idx_raw in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &encode_to_vec(&state));
        let idx = idx_raw % framed.len();
        framed[idx] ^= flip;
        assert!(
            decode_single_frame(&framed).is_err(),
            "mutation {flip:#x} at byte {idx} accepted"
        );
    }

    /// Arbitrary byte soup never panics any decoder — it returns `Ok` of
    /// something or a `CodecError`, both acceptable below the CRC layer.
    #[test]
    fn byte_soup_never_panics(soup in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut pos = 0;
        let _ = read_frame(&soup, &mut pos);
        let _ = decode_single_frame(&soup);
        let _ = decode_exact::<TokenSet>(&soup);
        let _ = decode_exact::<TopicVector>(&soup);
        let _ = decode_exact::<Interval>(&soup);
        let _ = decode_exact::<Record>(&soup);
        let _ = decode_exact::<Arrival>(&soup);
        let _ = decode_exact::<ProbTuple>(&soup);
        let _ = decode_exact::<TupleMeta>(&soup);
        let _ = decode_exact::<PruneStats>(&soup);
        let _ = decode_exact::<EngineState>(&soup);
    }

    /// Truncating an encoded value at any point yields `Err`, not a panic
    /// (torn checkpoint payloads must be survivable).
    #[test]
    fn truncated_states_are_rejected(state in arb_engine_state(), cut_raw in any::<usize>()) {
        let bytes = encode_to_vec(&state);
        if !bytes.is_empty() {
            let cut = cut_raw % bytes.len();
            assert!(decode_exact::<EngineState>(&bytes[..cut]).is_err());
        }
    }

    /// Group-commit crash contract, schedule-randomized: under any
    /// interleaving of `append_nosync` and `sync` (the flush windows), a
    /// power-loss cut anywhere at or past the synced boundary recovers a
    /// dense valid prefix containing every synced — hence every ackable —
    /// batch. The byte-exhaustive single-schedule variant lives in the
    /// wal unit tests; this one varies the schedule itself.
    #[test]
    fn group_commit_schedules_survive_any_cut(
        ops in proptest::collection::vec(any::<bool>(), 1..24),
        cut_frac in 0u32..=1000,
        pt in arb_prob_tuple(),
        seed in any::<u64>(),
    ) {
        let path = std::env::temp_dir().join(format!(
            "ter_store_prop_gc_{}_{seed:016x}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut wal = crate::wal::Wal::open(&path, 11).expect("open");
        let mut appended = 0u64;
        for &do_sync in &ops {
            if do_sync {
                wal.sync().expect("sync");
            } else {
                let arrival = Arrival {
                    stream_id: (appended % 3) as usize,
                    timestamp: appended,
                    record: Record { id: appended, ..pt.base.clone() },
                };
                wal.append_nosync(&[arrival]).expect("append");
                appended += 1;
            }
        }
        let synced_seq = wal.synced_seq();
        let synced_len = wal.synced_len_bytes();
        drop(wal);
        let full = std::fs::read(&path).expect("read wal");
        // A crash keeps the synced prefix and an arbitrary amount of the
        // unsynced tail.
        let span = full.len() as u64 - synced_len;
        let cut = synced_len + span * u64::from(cut_frac) / 1000;
        std::fs::write(&path, &full[..cut as usize]).expect("cut");
        let wal = crate::wal::Wal::open(&path, 11).expect("reopen");
        prop_assert!(
            wal.next_seq() >= synced_seq,
            "cut at {cut} lost a synced batch ({} < {synced_seq})",
            wal.next_seq()
        );
        let batches = wal.read_batches(0).expect("replay");
        prop_assert_eq!(batches.len() as u64, wal.next_seq());
        let _ = std::fs::remove_file(&path);
    }
}
