//! The append-only write-ahead log of arrival batches.
//!
//! File layout (`wal.log`):
//!
//! ```text
//! [magic "TERWAL01"; 8 bytes][fingerprint: u64 LE][base_seq: u64 LE][frame]*
//! ```
//!
//! Each frame's payload is `[seq: u64][Vec<Arrival>]` where `seq` starts
//! at the header's `base_seq` and must increase by exactly 1 per frame —
//! the WAL is a dense run `[base_seq, next_seq)` of the arrival-batch
//! sequence. `base_seq` is 0 for a fresh log; it moves forward only when
//! the store resets a lost/stale log underneath a newer durable
//! checkpoint ([`Wal::reset_to`]), so sequence numbers — and with them
//! checkpoint offsets and the resume position — stay monotonic across
//! resets instead of silently restarting at 0. Appends are buffered
//! nowhere: [`Wal::append`] writes the frame and `fsync`s before
//! returning (fsync-on-commit), so a batch handed to the engine is
//! already durable.
//!
//! [`Wal::open`] scans the existing file and **truncates to the newest
//! consistent prefix**: a torn tail (crash mid-append), a CRC-corrupt
//! frame, an undecodable payload, or a sequence gap each cut the file at
//! the last frame that was fully valid. A file with a damaged header is
//! reset to empty. None of these paths panic — corruption degrades to
//! replaying less, never to refusing service.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use ter_stream::Arrival;

use crate::codec::{decode_exact, Codec, Encoder};
use crate::frame::{read_frame, write_frame};
use crate::StoreError;

/// Magic prefix of a WAL file (embeds the format version).
pub const WAL_MAGIC: &[u8; 8] = b"TERWAL01";

const HEADER_LEN: u64 = 24;

/// One recovered WAL record.
#[derive(Debug, Clone, PartialEq)]
struct BatchRecord {
    seq: u64,
    arrivals: Vec<Arrival>,
}

impl Codec for BatchRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.seq);
        self.arrivals.encode(enc);
    }
    fn decode(dec: &mut crate::codec::Decoder<'_>) -> Result<Self, crate::codec::CodecError> {
        Ok(BatchRecord {
            seq: dec.u64()?,
            arrivals: Vec::decode(dec)?,
        })
    }
}

/// The open write-ahead log. See the [module docs](self).
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    fingerprint: u64,
    /// First sequence number the log covers (0 unless reset forward).
    base_seq: u64,
    /// Sequence number the next appended batch will get.
    next_seq: u64,
    /// Committed byte length of the file.
    tail: u64,
    /// Byte length covered by the last fsync — the power-loss-durable
    /// prefix. Equals `tail` except between [`Wal::append_nosync`] and
    /// [`Wal::sync`].
    synced_tail: u64,
    /// Sequence the durable prefix reaches (`next_seq` of the last sync).
    synced_seq: u64,
    /// Commit-path fsyncs issued so far (group-commit instrumentation).
    fsyncs: u64,
    /// Fault-injection shim: artificial latency added to every commit
    /// fsync. Zero outside fault-injection tests.
    sync_delay: std::time::Duration,
}

impl Wal {
    /// Opens (creating if absent) the WAL at `path`, validating the
    /// existing content and truncating any inconsistent tail.
    ///
    /// `fingerprint` identifies the (context, params) the log belongs to;
    /// an existing WAL with a *valid* header but a different fingerprint
    /// is refused (feeding another context's token ids into an engine
    /// would silently corrupt results — that is an operator error, not
    /// recoverable corruption).
    pub fn open(path: impl Into<PathBuf>, fingerprint: u64) -> Result<Self, StoreError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let header_ok = bytes.len() >= HEADER_LEN as usize && &bytes[..8] == WAL_MAGIC;
        if !header_ok {
            // Unrecognizable header: the newest consistent prefix is
            // empty. Reset rather than refuse. (The store layer moves the
            // base forward afterwards if a newer checkpoint exists, so
            // sequence numbers never run backwards.)
            let mut wal = Self {
                file,
                path,
                fingerprint,
                base_seq: 0,
                next_seq: 0,
                tail: HEADER_LEN,
                synced_tail: HEADER_LEN,
                synced_seq: 0,
                fsyncs: 0,
                sync_delay: std::time::Duration::ZERO,
            };
            wal.write_header(0)?;
            return Ok(wal);
        }
        let found = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if found != fingerprint {
            return Err(StoreError::Mismatch(format!(
                "WAL fingerprint {found:#x} != expected {fingerprint:#x}"
            )));
        }
        let base_seq = u64::from_le_bytes(bytes[16..24].try_into().unwrap());

        // Scan frames; stop at the first inconsistency.
        let mut pos = HEADER_LEN as usize;
        let mut next_seq = base_seq;
        loop {
            let mut probe = pos;
            match read_frame(&bytes, &mut probe) {
                Ok(payload) => match decode_exact::<BatchRecord>(payload) {
                    Ok(rec) if rec.seq == next_seq => {
                        next_seq += 1;
                        pos = probe;
                    }
                    _ => break, // wrong seq or undecodable — cut here
                },
                // Clean EOF is indistinguishable from a torn tail here and
                // needs no distinction: both cut at the last valid frame
                // (for a clean EOF that is already the end of the file).
                Err(_) => break,
            }
        }
        if pos as u64 != bytes.len() as u64 {
            file.set_len(pos as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok(Self {
            file,
            path,
            fingerprint,
            base_seq,
            next_seq,
            // The scanned prefix was validated on disk, so it is as
            // durable as the file itself: start with nothing pending.
            tail: pos as u64,
            synced_tail: pos as u64,
            synced_seq: next_seq,
            fsyncs: 0,
            sync_delay: std::time::Duration::ZERO,
        })
    }

    /// Rewrites the 24-byte header (truncating the file) so the empty log
    /// covers `[base, base)`.
    fn write_header(&mut self, base: u64) -> Result<(), StoreError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(WAL_MAGIC)?;
        self.file.write_all(&self.fingerprint.to_le_bytes())?;
        self.file.write_all(&base.to_le_bytes())?;
        self.file.sync_data()?;
        self.base_seq = base;
        self.next_seq = base;
        self.tail = HEADER_LEN;
        self.synced_tail = HEADER_LEN;
        self.synced_seq = base;
        Ok(())
    }

    /// Empties the log and moves its sequence base to `base` — used by the
    /// store when the log fell behind a newer durable checkpoint (lost
    /// file, corrupt header, truncated tail): the stale frames are covered
    /// by the checkpoint, and keeping the sequence monotonic means later
    /// checkpoints and `resume_seq` keep counting the logical stream
    /// position instead of restarting at 0.
    pub fn reset_to(&mut self, base: u64) -> Result<(), StoreError> {
        self.write_header(base)
    }

    /// First sequence number the log covers.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The next appended batch's sequence number (== the logical stream
    /// position in committed batches).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Committed size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.tail
    }

    /// Byte length of the power-loss-durable prefix: everything at or
    /// below this offset survived the last [`Wal::sync`] (appends since
    /// then sit only in the page cache).
    pub fn synced_len_bytes(&self) -> u64 {
        self.synced_tail
    }

    /// Sequence the durable prefix reaches: batches `< synced_seq` are
    /// fsynced, batches in `[synced_seq, next_seq)` are appended but not
    /// yet covered by a sync.
    pub fn synced_seq(&self) -> u64 {
        self.synced_seq
    }

    /// Commit-path fsyncs issued so far ([`Wal::sync`] calls that reached
    /// the disk, including the one inside [`Wal::append`]). Group commit's
    /// whole point is to make this grow slower than `next_seq`.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Fault-injection shim: sleep this long inside every [`Wal::sync`]
    /// before the real fsync, simulating a slow device. Zero disables.
    pub fn set_sync_delay(&mut self, delay: std::time::Duration) {
        self.sync_delay = delay;
    }

    /// Appends one arrival batch and `fsync`s (fsync-on-commit). Returns
    /// the batch's sequence number. The one-batch flush window:
    /// equivalent to [`Wal::append_nosync`] + [`Wal::sync`].
    pub fn append(&mut self, arrivals: &[Arrival]) -> Result<u64, StoreError> {
        let seq = self.append_nosync(arrivals)?;
        self.sync()?;
        Ok(seq)
    }

    /// Appends one arrival batch **without** fsync — the group-commit
    /// half-step. The frame is written to the file (visible to readers
    /// and to a process that dies, since the page cache survives a
    /// kill -9) but not durable against power loss until the next
    /// [`Wal::sync`] covers it. A caller must therefore not acknowledge
    /// the batch to anyone before that sync returns.
    pub fn append_nosync(&mut self, arrivals: &[Arrival]) -> Result<u64, StoreError> {
        let t0 = ter_obs::timer();
        let seq = self.next_seq;
        // Mirrors `BatchRecord::encode` without cloning the batch into a
        // throwaway record — this is the per-commit ingest path.
        let mut enc = Encoder::new();
        enc.u64(seq);
        enc.usize(arrivals.len());
        for a in arrivals {
            a.encode(&mut enc);
        }
        let mut framed = Vec::new();
        write_frame(&mut framed, &enc.into_bytes());
        self.file.seek(SeekFrom::Start(self.tail))?;
        self.file.write_all(&framed)?;
        self.tail += framed.len() as u64;
        self.next_seq += 1;
        ter_obs::OBS.wal_append_bytes.add(framed.len() as u64);
        let us = ter_obs::OBS.wal_append_micros.observe_since(t0);
        ter_obs::flight(ter_obs::kind::WAL_APPEND, seq, framed.len() as u64, 0, us);
        // No-op unless a causal trace is open for this batch sequence
        // (the daemon's commit stage; library callers with a different
        // sequence base cost one relaxed load).
        ter_obs::trace::add_elapsed(seq, ter_obs::trace::kind::WAL, us);
        Ok(seq)
    }

    /// Makes every append so far durable with one fsync (the group
    /// commit). A no-op when nothing is pending — callers can flush
    /// defensively without paying for an empty fsync.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.synced_tail == self.tail {
            return Ok(());
        }
        let t0 = ter_obs::timer();
        let covered = self.next_seq - self.synced_seq;
        if !self.sync_delay.is_zero() {
            std::thread::sleep(self.sync_delay);
        }
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.synced_tail = self.tail;
        self.synced_seq = self.next_seq;
        ter_obs::OBS.fsyncs.inc();
        ter_obs::OBS.flush_window_batches.record(covered);
        let us = ter_obs::OBS.fsync_micros.observe_since(t0);
        ter_obs::flight(ter_obs::kind::FSYNC, self.synced_seq, covered, 0, us);
        // The group commit's shared span: the same fsync is linked from
        // every batch it just made durable.
        ter_obs::trace::fsync_covering(self.synced_seq - covered, covered, us);
        Ok(())
    }

    /// Drops every frame with sequence `< before_seq`, moving the log's
    /// base forward — WAL compaction. The surviving suffix is rewritten
    /// atomically (tmp file + fsync + rename + dir sync), so a crash at
    /// any point leaves either the old log or the compacted one, never a
    /// torn hybrid. `before_seq` is clamped to `[base_seq, next_seq]`;
    /// compacting the whole log leaves a valid empty log based at
    /// `next_seq`. Returns the number of bytes reclaimed.
    ///
    /// Callers must only drop frames that a *durable* checkpoint already
    /// covers — the store layer enforces its two-generation policy before
    /// calling this.
    pub fn truncate_before(&mut self, before_seq: u64) -> Result<u64, StoreError> {
        let before_seq = before_seq.clamp(self.base_seq, self.next_seq);
        if before_seq == self.base_seq {
            return Ok(0);
        }
        let survivors = self.read_batches(before_seq)?;
        let mut bytes = Vec::with_capacity(HEADER_LEN as usize);
        bytes.extend_from_slice(WAL_MAGIC);
        bytes.extend_from_slice(&self.fingerprint.to_le_bytes());
        bytes.extend_from_slice(&before_seq.to_le_bytes());
        for (seq, arrivals) in &survivors {
            let mut enc = Encoder::new();
            enc.u64(*seq);
            arrivals.encode(&mut enc);
            write_frame(&mut bytes, &enc.into_bytes());
        }
        let tmp = self.path.with_extension("compact");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
        // Keep the handle across the rename: the fd follows the inode, so
        // once `tmp` becomes the WAL there is no reopen step that could
        // fail and silently leave appends going to an unlinked file. If
        // the rename itself fails, `self` is untouched and still owns the
        // original log.
        std::fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            // Best-effort dir sync (matches the checkpoint writer): losing
            // it weakens durability of the rename, not consistency.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        let reclaimed = self.tail - bytes.len() as u64;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.base_seq = before_seq;
        self.tail = bytes.len() as u64;
        // The rewritten file was fully fsynced before the rename: the
        // durable prefix is the whole log again.
        self.synced_tail = self.tail;
        self.synced_seq = self.next_seq;
        Ok(reclaimed)
    }

    /// Re-reads the committed batches with sequence `>= from_seq`, in
    /// order. The committed region was validated at open and every append
    /// since went through the encoder, so errors here indicate the file
    /// changed underneath us — reported, never panicked.
    pub fn read_batches(&self, from_seq: u64) -> Result<Vec<(u64, Vec<Arrival>)>, StoreError> {
        let mut file = File::open(&self.path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        bytes.truncate(self.tail as usize);
        if bytes.len() < HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
            return Err(StoreError::Mismatch("WAL header vanished".into()));
        }
        let mut pos = HEADER_LEN as usize;
        let mut out = Vec::new();
        let mut expect = self.base_seq;
        while pos < bytes.len() {
            let payload = read_frame(&bytes, &mut pos).map_err(StoreError::Frame)?;
            let rec: BatchRecord = decode_exact(payload)?;
            if rec.seq != expect {
                return Err(StoreError::Mismatch(format!(
                    "WAL sequence jumped to {} (expected {expect})",
                    rec.seq
                )));
            }
            expect += 1;
            if rec.seq >= from_seq {
                out.push((rec.seq, rec.arrivals));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use ter_repo::{Record, Schema};
    use ter_text::Dictionary;

    fn temp_path(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("ter_store_wal_{}_{tag}.log", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    fn arrivals(n: usize, start: u64) -> Vec<Arrival> {
        let schema = Schema::new(vec!["a", "b"]);
        let mut dict = Dictionary::new();
        (0..n)
            .map(|i| {
                let id = start + i as u64;
                let text = format!("tok{id} common");
                Arrival {
                    stream_id: i % 2,
                    timestamp: id,
                    record: Record::from_texts(
                        &schema,
                        id,
                        &[
                            Some(text.as_str()),
                            if i % 3 == 0 { None } else { Some("x") },
                        ],
                        &mut dict,
                    ),
                }
            })
            .collect()
    }

    #[test]
    fn append_reopen_replay() {
        let path = temp_path("replay");
        let b0 = arrivals(3, 0);
        let b1 = arrivals(2, 10);
        {
            let mut wal = Wal::open(&path, 42).unwrap();
            assert_eq!(wal.append(&b0).unwrap(), 0);
            assert_eq!(wal.append(&b1).unwrap(), 1);
        }
        let wal = Wal::open(&path, 42).unwrap();
        assert_eq!(wal.next_seq(), 2);
        let all = wal.read_batches(0).unwrap();
        assert_eq!(all, vec![(0, b0), (1, b1.clone())]);
        let suffix = wal.read_batches(1).unwrap();
        assert_eq!(suffix, vec![(1, b1)]);
        assert!(wal.read_batches(2).unwrap().is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_truncated_at_every_cut() {
        let path = temp_path("torn");
        let b0 = arrivals(2, 0);
        let b1 = arrivals(2, 10);
        let (full, after_first): (Vec<u8>, u64) = {
            let mut wal = Wal::open(&path, 7).unwrap();
            wal.append(&b0).unwrap();
            let after_first = wal.len_bytes();
            wal.append(&b1).unwrap();
            (fs::read(&path).unwrap(), after_first)
        };
        // Cut the file at every byte boundary inside the second frame: the
        // reopened WAL must come back with exactly the first batch.
        for cut in after_first..full.len() as u64 {
            fs::write(&path, &full[..cut as usize]).unwrap();
            let wal = Wal::open(&path, 7).unwrap();
            assert_eq!(wal.next_seq(), 1, "cut at {cut}");
            assert_eq!(wal.len_bytes(), after_first, "cut at {cut}");
            assert_eq!(wal.read_batches(0).unwrap(), vec![(0, b0.clone())]);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_frame_truncates_to_prefix() {
        let path = temp_path("crc");
        let b0 = arrivals(2, 0);
        let b1 = arrivals(2, 10);
        let after_first = {
            let mut wal = Wal::open(&path, 7).unwrap();
            wal.append(&b0).unwrap();
            let a = wal.len_bytes();
            wal.append(&b1).unwrap();
            a
        };
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte inside the second frame.
        let idx = after_first as usize + 12;
        bytes[idx] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let wal = Wal::open(&path, 7).unwrap();
        assert_eq!(wal.next_seq(), 1);
        assert_eq!(wal.read_batches(0).unwrap(), vec![(0, b0)]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn garbage_header_resets_to_empty() {
        let path = temp_path("garbage");
        fs::write(&path, b"not a wal at all").unwrap();
        let wal = Wal::open(&path, 7).unwrap();
        assert_eq!(wal.next_seq(), 0);
        assert!(wal.read_batches(0).unwrap().is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = temp_path("fp");
        {
            let mut wal = Wal::open(&path, 1).unwrap();
            wal.append(&arrivals(1, 0)).unwrap();
        }
        assert!(matches!(Wal::open(&path, 2), Err(StoreError::Mismatch(_))));
        // The refused open must not have damaged the file.
        let wal = Wal::open(&path, 1).unwrap();
        assert_eq!(wal.next_seq(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncate_before_drops_prefix_and_keeps_appending() {
        let path = temp_path("compact");
        let batches: Vec<Vec<Arrival>> = (0..5).map(|i| arrivals(2, i * 10)).collect();
        let mut wal = Wal::open(&path, 3).unwrap();
        for b in &batches {
            wal.append(b).unwrap();
        }
        let before = wal.len_bytes();
        let reclaimed = wal.truncate_before(3).unwrap();
        assert!(reclaimed > 0 && wal.len_bytes() == before - reclaimed);
        assert_eq!(wal.base_seq(), 3);
        assert_eq!(wal.next_seq(), 5);
        assert_eq!(
            wal.read_batches(0).unwrap(),
            vec![(3, batches[3].clone()), (4, batches[4].clone())]
        );
        // Appends continue at the same logical sequence.
        let b5 = arrivals(1, 90);
        assert_eq!(wal.append(&b5).unwrap(), 5);
        drop(wal);
        // Survives reopen: base comes from the rewritten header.
        let wal = Wal::open(&path, 3).unwrap();
        assert_eq!(wal.base_seq(), 3);
        assert_eq!(wal.next_seq(), 6);
        assert_eq!(wal.read_batches(5).unwrap(), vec![(5, b5)]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncate_before_clamps_and_noops() {
        let path = temp_path("compactclamp");
        let mut wal = Wal::open(&path, 3).unwrap();
        wal.append(&arrivals(1, 0)).unwrap();
        wal.append(&arrivals(1, 10)).unwrap();
        // Below the base: nothing to do.
        assert_eq!(wal.truncate_before(0).unwrap(), 0);
        assert_eq!(wal.base_seq(), 0);
        // Past the tip: clamped to an empty log based at next_seq.
        wal.truncate_before(99).unwrap();
        assert_eq!(wal.base_seq(), 2);
        assert_eq!(wal.next_seq(), 2);
        assert!(wal.read_batches(0).unwrap().is_empty());
        let b = arrivals(1, 20);
        assert_eq!(wal.append(&b).unwrap(), 2);
        assert_eq!(wal.read_batches(0).unwrap(), vec![(2, b)]);
        let _ = fs::remove_file(&path);
    }

    /// One fsync covers a whole flush window, and the counter proves it:
    /// W unsynced appends + one sync = 1 commit fsync, vs W via the
    /// legacy fsync-per-batch `append`.
    #[test]
    fn group_commit_amortizes_fsyncs() {
        let path = temp_path("group");
        let mut wal = Wal::open(&path, 5).unwrap();
        assert_eq!(wal.fsyncs(), 0);
        for i in 0..8u64 {
            assert_eq!(wal.append_nosync(&arrivals(1, i * 10)).unwrap(), i);
        }
        assert_eq!(wal.next_seq(), 8);
        assert_eq!(wal.synced_seq(), 0, "nothing durable before the sync");
        wal.sync().unwrap();
        assert_eq!(wal.fsyncs(), 1, "the window shares one fsync");
        assert_eq!(wal.synced_seq(), 8);
        assert_eq!(wal.synced_len_bytes(), wal.len_bytes());
        // An empty sync is free.
        wal.sync().unwrap();
        assert_eq!(wal.fsyncs(), 1);
        // W=1 degenerates to fsync-per-batch.
        for i in 8..12u64 {
            wal.append(&arrivals(1, i * 10)).unwrap();
        }
        assert_eq!(wal.fsyncs(), 5);
        assert_eq!(wal.synced_seq(), 12);
        let _ = fs::remove_file(&path);
    }

    /// The power-loss model: a crash can keep everything fsynced and any
    /// prefix of the unsynced tail (modulo torn bytes). Cutting the file
    /// at *every* byte between the synced boundary and the true tail must
    /// recover at least the synced prefix — acked-under-group-commit
    /// batches survive every flush-window cut — and never a torn batch.
    #[test]
    fn flush_window_cut_at_every_byte_keeps_the_synced_prefix() {
        let path = temp_path("windowcut");
        let (full, synced_len, synced_seq) = {
            let mut wal = Wal::open(&path, 9).unwrap();
            wal.append_nosync(&arrivals(2, 0)).unwrap();
            wal.append_nosync(&arrivals(1, 10)).unwrap();
            wal.sync().unwrap();
            let (len, seq) = (wal.synced_len_bytes(), wal.synced_seq());
            // An open flush window: two more appends, no covering sync.
            wal.append_nosync(&arrivals(2, 20)).unwrap();
            wal.append_nosync(&arrivals(1, 30)).unwrap();
            assert_eq!(wal.next_seq(), 4);
            (fs::read(&path).unwrap(), len, seq)
        };
        assert!(synced_len < full.len() as u64);
        assert_eq!(synced_seq, 2);
        for cut in synced_len..=full.len() as u64 {
            fs::write(&path, &full[..cut as usize]).unwrap();
            let wal = Wal::open(&path, 9).unwrap();
            assert!(
                wal.next_seq() >= synced_seq,
                "cut at {cut} lost a synced batch ({} < {synced_seq})",
                wal.next_seq()
            );
            // Whatever survived is a dense, fully-valid prefix.
            let batches = wal.read_batches(0).unwrap();
            assert_eq!(batches.len() as u64, wal.next_seq());
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn sync_delay_shim_slows_commits() {
        let path = temp_path("slowsync");
        let mut wal = Wal::open(&path, 2).unwrap();
        wal.set_sync_delay(std::time::Duration::from_millis(30));
        wal.append_nosync(&arrivals(1, 0)).unwrap();
        let t0 = std::time::Instant::now();
        wal.sync().unwrap();
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(30),
            "injected fsync latency was not applied"
        );
        // The no-op path must stay fast: nothing pending, no delay.
        let t1 = std::time::Instant::now();
        wal.sync().unwrap();
        assert!(t1.elapsed() < std::time::Duration::from_millis(30));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn empty_batch_is_legal() {
        let path = temp_path("empty");
        {
            let mut wal = Wal::open(&path, 1).unwrap();
            wal.append(&[]).unwrap();
            wal.append(&arrivals(1, 0)).unwrap();
        }
        let wal = Wal::open(&path, 1).unwrap();
        assert_eq!(wal.next_seq(), 2);
        assert_eq!(wal.read_batches(0).unwrap()[0].1, vec![]);
        let _ = fs::remove_file(&path);
    }
}
