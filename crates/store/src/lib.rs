//! `ter_store`: write-ahead log + checkpoint persistence with
//! bit-identical crash recovery.
//!
//! A TER-iDS service must not lose its sliding-window state, ER-grid, and
//! result set on restart — without persistence a crash means replaying
//! the whole stream from tuple 0. This crate makes both engines durable:
//!
//! * [`codec`] — a hand-rolled, versioned binary codec (the workspace is
//!   offline; no serde) with bit-exact `f64` transport;
//! * [`frame`] — the length-prefixed CRC-32 frame grammar shared by every
//!   file, with torn-tail vs corruption discrimination;
//! * [`wal`] — the append-only write-ahead log of arrival batches with
//!   fsync-on-commit and truncation to the newest consistent prefix;
//! * [`checkpoint`] — atomic [`EngineState`](ter_ids::EngineState)
//!   snapshots plus the manifest naming the latest durable
//!   (checkpoint, WAL offset) pair;
//! * [`store`] — [`TerStore`], the per-directory orchestration, and
//!   [`Recovery`], the never-panicking recovery ladder.
//!
//! The recovery contract is the repo's gold standard: an engine restored
//! from (checkpoint + WAL-suffix replay) at *any* cut point emits
//! **bit-identical** results, statistics, and per-step match lists to a
//! never-crashed run, for both `TerIdsEngine` and `ShardedTerIdsEngine`
//! (`tests/recovery_parity.rs` enforces this across all five dataset
//! presets).

pub mod checkpoint;
pub mod codec;
pub mod delta;
pub mod frame;
pub mod store;
pub mod wal;

#[cfg(test)]
mod proptests;

pub use checkpoint::{Checkpoint, Manifest};
pub use codec::{decode_exact, encode_to_vec, Codec, CodecError, Decoder, Encoder};
pub use delta::DeltaFile;
pub use frame::{crc32, FrameError};
pub use store::{context_fingerprint, CompactionPolicy, Recovery, TerStore};
pub use wal::Wal;

/// Everything that can go wrong in the persistence layer. Recovery
/// callers see `Err`, never a panic.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// A frame failed its integrity checks.
    Frame(FrameError),
    /// A payload failed to decode.
    Codec(CodecError),
    /// The bytes are consistent but belong to something else (wrong
    /// fingerprint, wrong version, foreign file).
    Mismatch(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Frame(e) => write!(f, "frame error: {e}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::Mismatch(what) => write!(f, "mismatch: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<FrameError> for StoreError {
    fn from(e: FrameError) -> Self {
        StoreError::Frame(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}
