//! Delta-checkpoint files: incremental frames chained to a base
//! checkpoint.
//!
//! A **delta** (`delt-<base>-<to>.bin`) carries the [`StateDelta`]
//! between two WAL stamps — the state at stamp `to` equals the state at
//! stamp `base` with the delta applied:
//!
//! ```text
//! [magic "TERDELT1"; 8 bytes][frame: [version: u32][fingerprint: u64]
//!                                    [base_seq: u64][wal_seq: u64]
//!                                    [StateDelta]]
//! ```
//!
//! `base_seq` names the predecessor stamp — a full `ckpt-<base>.bin` or
//! another delta whose `wal_seq` equals it — so the files on disk form
//! chains rooted at full checkpoints. Like checkpoints, deltas are
//! single-frame files written atomically and read with the exact-consume
//! rule: any single-byte corruption is rejected, and the recovery ladder
//! treats a rejected delta as "the chain ends here", degrading to the
//! older consistent prefix instead of panicking or skipping.
//!
//! Deltas are legal because window entries are append/evict-only (see
//! [`ter_ids::state`]): a delta between two exported snapshots is exactly
//! the arrivals/evictions, result-set adds/removes, reported additions,
//! and touched grid cells — size proportional to the churn between the
//! stamps, not to the window.

use std::path::Path;

use ter_ids::StateDelta;

use crate::checkpoint::FORMAT_VERSION;
use crate::codec::{Codec, Decoder, Encoder};
use crate::frame::{decode_single_frame, write_frame};
use crate::StoreError;

/// Magic prefix of a delta-checkpoint file (embeds the format version).
pub const DELTA_MAGIC: &[u8; 8] = b"TERDELT1";

/// A decoded delta file: applying `delta` to the state at `base_seq`
/// yields the state at `wal_seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaFile {
    /// (context, params) identity the delta belongs to.
    pub fingerprint: u64,
    /// Stamp of the predecessor (full checkpoint or earlier delta).
    pub base_seq: u64,
    /// Stamp this delta reaches.
    pub wal_seq: u64,
    /// The incremental payload.
    pub delta: StateDelta,
}

/// The canonical delta file name for a (predecessor, reached) stamp
/// pair. Both stamps are in the name so retention can reason about
/// chains without decoding payloads.
pub fn delta_file_name(base_seq: u64, wal_seq: u64) -> String {
    format!("delt-{base_seq:020}-{wal_seq:020}.bin")
}

/// Parses `(base_seq, wal_seq)` back out of a [`delta_file_name`]-shaped
/// name (`None` for foreign files).
pub fn delta_seqs_of(name: &str) -> Option<(u64, u64)> {
    let core = name.strip_prefix("delt-")?.strip_suffix(".bin")?;
    let (base, to) = core.split_once('-')?;
    // Exactly the zero-padded fixed-width form the writer produces; a
    // hand-renamed file with stray separators must not parse.
    if base.len() != 20 || to.len() != 20 {
        return None;
    }
    Some((base.parse().ok()?, to.parse().ok()?))
}

impl DeltaFile {
    /// Serializes and atomically writes the delta to `path`, returning
    /// its total byte size.
    pub fn write(&self, path: &Path) -> Result<u64, StoreError> {
        let mut payload = Encoder::new();
        payload.u32(FORMAT_VERSION);
        payload.u64(self.fingerprint);
        payload.u64(self.base_seq);
        payload.u64(self.wal_seq);
        self.delta.encode(&mut payload);
        let mut bytes = DELTA_MAGIC.to_vec();
        write_frame(&mut bytes, &payload.into_bytes());
        let total = bytes.len() as u64;
        crate::checkpoint::write_atomic(path, &bytes)?;
        Ok(total)
    }

    /// Loads and validates a delta file.
    pub fn load(path: &Path, fingerprint: u64) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < 8 || &bytes[..8] != DELTA_MAGIC {
            return Err(StoreError::Mismatch("bad delta file magic".into()));
        }
        let payload = decode_single_frame(&bytes[8..]).map_err(StoreError::Frame)?;
        let mut dec = Decoder::new(payload);
        let version = dec.u32().map_err(StoreError::Codec)?;
        if version != FORMAT_VERSION {
            return Err(StoreError::Mismatch(format!(
                "delta version {version} (expected {FORMAT_VERSION})"
            )));
        }
        let found = dec.u64().map_err(StoreError::Codec)?;
        if found != fingerprint {
            return Err(StoreError::Mismatch(format!(
                "delta fingerprint {found:#x} != expected {fingerprint:#x}"
            )));
        }
        let base_seq = dec.u64().map_err(StoreError::Codec)?;
        let wal_seq = dec.u64().map_err(StoreError::Codec)?;
        if wal_seq <= base_seq {
            return Err(StoreError::Mismatch(format!(
                "delta stamps do not advance ({base_seq} -> {wal_seq})"
            )));
        }
        let delta = StateDelta::decode(&mut dec).map_err(StoreError::Codec)?;
        if !dec.is_exhausted() {
            return Err(StoreError::Codec(crate::codec::CodecError::TrailingBytes));
        }
        Ok(Self {
            fingerprint,
            base_seq,
            wal_seq,
            delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use ter_ids::PruneStats;

    fn temp(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("ter_store_delt_{}_{tag}.bin", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    fn sample() -> DeltaFile {
        DeltaFile {
            fingerprint: 0xFEED,
            base_seq: 4,
            wal_seq: 9,
            delta: StateDelta {
                window_capacity: 8,
                evicted: vec![3, 4],
                arrivals: vec![(7, 21), (8, 22)],
                results_added: vec![(21, 22)],
                stats: PruneStats {
                    total_pairs: 5,
                    ..Default::default()
                },
                ..Default::default()
            },
        }
    }

    #[test]
    fn file_name_round_trip() {
        let name = delta_file_name(4, 9);
        assert_eq!(name, format!("delt-{:020}-{:020}.bin", 4, 9));
        assert_eq!(delta_seqs_of(&name), Some((4, 9)));
        assert_eq!(delta_seqs_of("ckpt-00000000000000000004.bin"), None);
        assert_eq!(delta_seqs_of("delt-4-9.bin"), None, "non-canonical widths");
        assert_eq!(delta_seqs_of("delt-junk.bin"), None);
    }

    #[test]
    fn delta_file_round_trip() {
        let path = temp("rt");
        let d = sample();
        // The delta's metas list is empty while arrivals is not — that
        // inconsistency is apply()'s to reject, not the file codec's;
        // persistence round-trips any structurally-decodable payload.
        d.write(&path).unwrap();
        assert_eq!(DeltaFile::load(&path, 0xFEED).unwrap(), d);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_wrong_fingerprint_stale_stamps_and_any_corruption() {
        let path = temp("bad");
        sample().write(&path).unwrap();
        assert!(DeltaFile::load(&path, 0x1234).is_err());
        let mut regress = sample();
        regress.wal_seq = regress.base_seq;
        regress.write(&path).unwrap();
        assert!(
            DeltaFile::load(&path, 0xFEED).is_err(),
            "stamp must advance"
        );
        sample().write(&path).unwrap();
        let bytes = fs::read(&path).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            fs::write(&path, &bad).unwrap();
            assert!(
                DeltaFile::load(&path, 0xFEED).is_err(),
                "corruption at byte {i} accepted"
            );
        }
        let _ = fs::remove_file(&path);
    }
}
