//! The durable store: one directory tying WAL, checkpoints, and manifest
//! together, plus the recovery path.
//!
//! ```text
//! <dir>/
//!   wal.log                  append-only arrival batches (crate::wal)
//!   ckpt-<seq>.bin           EngineState snapshots (crate::checkpoint)
//!   MANIFEST                 newest durable (checkpoint, WAL seq) pair
//! ```
//!
//! Write protocol per arrival batch: `log_batch` (append + fsync) →
//! `step_batch` on the engine. Periodically: `checkpoint(engine state)`,
//! which writes `ckpt-<seq>.bin` atomically, flips the manifest to it,
//! and then deletes older checkpoints (in that order — the old pair
//! stays recoverable until the new one is durable).
//!
//! Recovery ([`TerStore::recover`]) never panics and degrades gracefully:
//!
//! 1. manifest valid + named checkpoint valid → restore its state, replay
//!    the WAL suffix `wal_seq..`;
//! 2. checkpoint newer than the (truncated) WAL → the checkpoint alone is
//!    the newest consistent state, empty suffix;
//! 3. manifest missing/corrupt or checkpoint damaged → fall back to any
//!    other on-disk checkpoint (newest first), else the empty state plus
//!    a full WAL replay.

use std::fs;
use std::hash::Hasher;
use std::path::{Path, PathBuf};

use ter_ids::{EngineState, ErProcessor, Params, StateDelta, TerContext};
use ter_stream::Arrival;
use ter_text::fxhash::FxHasher;
use ter_text::Token;

use crate::checkpoint::{checkpoint_file_name, checkpoint_seq_of, Checkpoint, Manifest};
use crate::delta::{delta_file_name, delta_seqs_of, DeltaFile};
use crate::wal::Wal;
use crate::StoreError;

/// File name of the WAL inside a store directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Identity of the (context, params) a store's bytes belong to. Token ids
/// are dictionary-relative, so state is only meaningful against the same
/// deterministic offline pre-computation; and WAL replay is only
/// bit-identical under the same engine parameters (a changed imputation
/// cap, say, would impute the replayed suffix differently than the
/// checkpointed prefix). The fingerprint covers *every* [`Params`] field
/// plus the context identity, turning a silent mix-up into a refused
/// open / ignored checkpoint.
pub fn context_fingerprint(ctx: &TerContext, params: &Params) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(ctx.arity() as u64);
    h.write_u64(params.window as u64);
    h.write_u64(params.grid_cells as u64);
    h.write_u64(params.alpha.to_bits());
    h.write_u64(params.rho.to_bits());
    h.write_u64(params.fanout as u64);
    h.write_u64(params.impute.max_candidates_per_attr as u64);
    h.write_u64(params.donors as u64);
    h.write_u64(ctx.repo.len() as u64);
    for &Token(t) in ctx.keywords.tokens().tokens() {
        h.write_u32(t);
    }
    h.finish()
}

/// `delt-*.bin` files present in `dir` as `(base_seq, wal_seq, name)`,
/// sorted ascending. Errors (unreadable directory) degrade to "no
/// deltas" — the ladder below never needs them to exist.
fn delta_files_in(dir: &Path) -> Vec<(u64, u64, String)> {
    let mut files: Vec<(u64, u64, String)> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter_map(|n| delta_seqs_of(&n).map(|(b, t)| (b, t, n)))
            .collect(),
        Err(_) => Vec::new(),
    };
    files.sort();
    files
}

/// Walks the longest valid delta chain rooted at stamp `base` and
/// returns `(tip stamp, links, cumulative file bytes)`. Only files that
/// load and validate count; the first damaged link ends the chain.
fn scan_chain(dir: &Path, fingerprint: u64, base: u64) -> (u64, usize, u64) {
    let files = delta_files_in(dir);
    let mut tip = base;
    let mut len = 0usize;
    let mut bytes = 0u64;
    loop {
        // Furthest-reaching valid link from the current tip wins.
        let next = files.iter().rev().find_map(|(b, t, name)| {
            (*b == tip && *t > tip && DeltaFile::load(&dir.join(name), fingerprint).is_ok())
                .then_some((*t, name))
        });
        match next {
            Some((t, name)) => {
                bytes += fs::metadata(dir.join(name)).map(|m| m.len()).unwrap_or(0);
                tip = t;
                len += 1;
            }
            None => return (tip, len, bytes),
        }
    }
}

/// What [`TerStore::recover`] reconstructed.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// The newest consistent state — a full checkpoint plus however much
    /// of its delta chain was valid — if any survived.
    pub state: Option<EngineState>,
    /// WAL batches already folded into `state` (0 without a checkpoint):
    /// the stamp of the base checkpoint plus every applied delta.
    pub checkpoint_seq: u64,
    /// Deltas applied on top of the base checkpoint to reach `state` (0
    /// for a plain full-checkpoint recovery).
    pub chain_applied: usize,
    /// WAL batches after the checkpoint, in sequence order — replay these
    /// through `step_batch` to reach the newest consistent stream position.
    pub suffix: Vec<Vec<Arrival>>,
}

impl Recovery {
    /// The stream position (in committed batches) recovery reaches once
    /// the suffix is replayed.
    pub fn resume_seq(&self) -> u64 {
        self.checkpoint_seq + self.suffix.len() as u64
    }

    /// Replays the WAL suffix through an engine that already imported the
    /// checkpoint state (or started fresh when there was none). Returns
    /// the number of replayed arrivals.
    pub fn replay_into(&self, engine: &mut impl ErProcessor) -> usize {
        let mut replayed = 0;
        for batch in &self.suffix {
            engine.step_batch(batch);
            replayed += batch.len();
        }
        replayed
    }
}

/// How aggressively [`TerStore::checkpoint`] reclaims disk.
///
/// The default (`keep_checkpoints: 1`, `truncate_wal: false`) preserves
/// the original behavior: one checkpoint on disk, the WAL kept whole so a
/// lost checkpoint can always fall back to a from-zero replay. The
/// daemon's policy (`two_generation()`) keeps the two newest checkpoint
/// generations and drops WAL frames *only once two generations have
/// passed* — i.e. everything below the older surviving checkpoint — so
/// recovery still succeeds from either generation while the log stops
/// growing without bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Newest checkpoint files retained after a successful checkpoint
    /// (at least 1 — the one the manifest names).
    pub keep_checkpoints: usize,
    /// Whether to drop WAL frames already covered by the *oldest
    /// retained* checkpoint generation.
    pub truncate_wal: bool,
    /// Deltas allowed on one chain before [`TerStore::needs_rebase`]
    /// demands a fresh full checkpoint (0 = unbounded). Recovery replays
    /// the whole chain, so this bounds recovery time.
    pub max_chain_len: usize,
    /// Cumulative delta bytes allowed on one chain before a rebase is
    /// demanded (0 = unbounded). Once the chain has cost as much disk and
    /// recovery I/O as a full snapshot, incrementality has paid out.
    pub max_chain_bytes: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            keep_checkpoints: 1,
            truncate_wal: false,
            max_chain_len: 16,
            max_chain_bytes: 0,
        }
    }
}

impl CompactionPolicy {
    /// The bounded-disk policy: two checkpoint generations, WAL truncated
    /// beneath the older one, delta chains rebased after 16 links.
    pub fn two_generation() -> Self {
        Self {
            keep_checkpoints: 2,
            truncate_wal: true,
            ..Self::default()
        }
    }

    /// Whether a chain of `len` deltas totalling `bytes` has exceeded
    /// either bound and must be closed by a full checkpoint.
    pub fn chain_exceeded(&self, len: usize, bytes: u64) -> bool {
        (self.max_chain_len > 0 && len >= self.max_chain_len)
            || (self.max_chain_bytes > 0 && bytes >= self.max_chain_bytes)
    }
}

/// The open store. See the [module docs](self).
#[derive(Debug)]
pub struct TerStore {
    dir: PathBuf,
    wal: Wal,
    fingerprint: u64,
    compaction: CompactionPolicy,
    /// Stamp of the newest durable state on disk — the last full
    /// checkpoint or the tip of its valid delta chain. `None` before the
    /// first checkpoint. Delta stamps must chain onto exactly this.
    tip_seq: Option<u64>,
    /// Deltas on the current chain (0 right after a full checkpoint).
    chain_len: usize,
    /// Cumulative bytes of the current chain's delta files.
    chain_bytes: u64,
}

impl TerStore {
    /// Opens (creating if needed) the store in `dir` for the engine
    /// identity `fingerprint` (see [`context_fingerprint`]). Scans and
    /// truncates the WAL's torn tail; if the (possibly reset) log ends
    /// before a valid durable checkpoint, the log's stale frames are
    /// dropped and its sequence base moved to the checkpoint, so batch
    /// numbering — and with it every later checkpoint and resume
    /// position — keeps counting the logical stream instead of restarting
    /// at 0.
    pub fn open(dir: impl Into<PathBuf>, fingerprint: u64) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut wal = Wal::open(dir.join(WAL_FILE), fingerprint)?;
        let mut tip_seq = None;
        let mut chain_len = 0;
        let mut chain_bytes = 0;
        if let Ok(m) = Manifest::load(&dir.join(MANIFEST_FILE), fingerprint) {
            if Checkpoint::load(&dir.join(&m.checkpoint), fingerprint).is_ok() {
                // Walk the durable delta chain off the manifest's
                // checkpoint so new deltas keep chaining where the last
                // run stopped, and so a lost WAL re-bases at the *chain
                // tip*, not just the full checkpoint beneath it.
                let (tip, len, bytes) = scan_chain(&dir, fingerprint, m.wal_seq);
                tip_seq = Some(tip);
                chain_len = len;
                chain_bytes = bytes;
                if tip > wal.next_seq() {
                    wal.reset_to(tip)?;
                }
            }
        }
        Ok(Self {
            dir,
            wal,
            fingerprint,
            compaction: CompactionPolicy::default(),
            tip_seq,
            chain_len,
            chain_bytes,
        })
    }

    /// Sets the checkpoint/WAL retention policy (see [`CompactionPolicy`]).
    pub fn set_compaction(&mut self, policy: CompactionPolicy) {
        self.compaction = CompactionPolicy {
            keep_checkpoints: policy.keep_checkpoints.max(1),
            ..policy
        };
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Committed WAL batches so far.
    pub fn wal_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Committed WAL size in bytes.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// Durably appends one arrival batch (fsync-on-commit) and returns
    /// its sequence number. Call *before* feeding the batch to the engine
    /// — write-ahead means the log is never behind the state.
    pub fn log_batch(&mut self, batch: &[Arrival]) -> Result<u64, StoreError> {
        self.wal.append(batch)
    }

    /// The group-commit half-step: appends one batch **without** fsync.
    /// Several appends can then share one [`TerStore::sync_wal`] — the
    /// flush window — but none of them may be acknowledged before that
    /// sync returns (acked ⇒ fsynced is the service's durability
    /// contract).
    pub fn log_batch_nosync(&mut self, batch: &[Arrival]) -> Result<u64, StoreError> {
        self.wal.append_nosync(batch)
    }

    /// One fsync covering every [`TerStore::log_batch_nosync`] since the
    /// last sync. No-op when nothing is pending.
    pub fn sync_wal(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// Commit-path fsyncs issued so far (see [`Wal::fsyncs`]).
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.fsyncs()
    }

    /// Sequence the WAL's power-loss-durable prefix reaches (see
    /// [`Wal::synced_seq`]).
    pub fn wal_synced_seq(&self) -> u64 {
        self.wal.synced_seq()
    }

    /// Fault-injection shim: artificial latency added to every commit
    /// fsync (see [`Wal::set_sync_delay`]).
    pub fn set_fsync_delay(&mut self, delay: std::time::Duration) {
        self.wal.set_sync_delay(delay);
    }

    /// Atomically installs `state` as the checkpoint at the current WAL
    /// position, flips the manifest, and applies the retention policy:
    /// checkpoints beyond `keep_checkpoints` generations are deleted, and
    /// (if `truncate_wal`) WAL frames beneath the oldest *retained*
    /// generation are compacted away — never before a full complement of
    /// generations exists, so recovery always has a fallback checkpoint
    /// with its complete replay suffix. Returns the checkpoint's byte
    /// size.
    pub fn checkpoint(&mut self, state: &EngineState) -> Result<u64, StoreError> {
        self.checkpoint_at(self.wal.next_seq(), state)
    }

    /// [`TerStore::checkpoint`] at an *explicit* WAL position — the
    /// append/ack-decoupled form. A pipelined service appends batch `n+1`
    /// while the engine still steps batch `n`; when the cadence fires
    /// after step `n`, the exported state covers exactly batches
    /// `0..=n`, so the checkpoint must be stamped `wal_seq = n+1` even
    /// though the log has already grown past it. Recovery then replays
    /// the WAL suffix `wal_seq..` as usual. `wal_seq` must lie within
    /// the log's committed range `[base_seq, next_seq]` — a stamp the
    /// log cannot replay from would create an unbridgeable gap.
    pub fn checkpoint_at(&mut self, wal_seq: u64, state: &EngineState) -> Result<u64, StoreError> {
        let t0 = ter_obs::timer();
        if wal_seq < self.wal.base_seq() || wal_seq > self.wal.next_seq() {
            return Err(StoreError::Mismatch(format!(
                "checkpoint stamp {wal_seq} outside the committed WAL range [{}, {}]",
                self.wal.base_seq(),
                self.wal.next_seq()
            )));
        }
        // A manifest must never name a position the log could lose: close
        // any open flush window before the checkpoint becomes visible.
        self.wal.sync()?;
        let name = checkpoint_file_name(wal_seq);
        let bytes = Checkpoint {
            fingerprint: self.fingerprint,
            wal_seq,
            state: state.clone(),
        }
        .write(&self.dir.join(&name))?;
        Manifest {
            fingerprint: self.fingerprint,
            wal_seq,
            checkpoint: name.clone(),
        }
        .write(&self.dir.join(MANIFEST_FILE))?;
        // Only after the manifest durably points at the new checkpoint is
        // it safe to drop older ones.
        let keep = self.compaction.keep_checkpoints;
        let retained: Vec<String> = {
            let files = self.checkpoint_files()?;
            for old in files.iter().skip(keep) {
                let _ = fs::remove_file(self.dir.join(old));
            }
            files.into_iter().take(keep).collect()
        };
        // Compact the WAL only once `keep` generations have passed: the
        // oldest retained checkpoint still owns every frame at or above
        // its seq, so either generation can drive a full recovery.
        if self.compaction.truncate_wal && retained.len() >= keep {
            if let Some(oldest_seq) = retained.last().and_then(|n| checkpoint_seq_of(n)) {
                self.wal.truncate_before(oldest_seq)?;
            }
        }
        // A full checkpoint closes the delta chain. Deltas reaching at
        // most the *oldest retained* generation's stamp are useless now —
        // every surviving recovery base is a full checkpoint at or past
        // them — while newer ones may still extend a retained fallback
        // generation, so they stay.
        let oldest_retained = retained
            .last()
            .and_then(|n| checkpoint_seq_of(n))
            .unwrap_or(wal_seq);
        for (_, to, name) in delta_files_in(&self.dir) {
            if to <= oldest_retained {
                let _ = fs::remove_file(self.dir.join(&name));
            }
        }
        self.tip_seq = Some(wal_seq);
        self.chain_len = 0;
        self.chain_bytes = 0;
        ter_obs::OBS.checkpoints.inc();
        ter_obs::OBS.last_checkpoint_seq.set(wal_seq);
        ter_obs::OBS.delta_chain_length.set(0);
        let us = ter_obs::OBS.checkpoint_micros.observe_since(t0);
        ter_obs::flight(ter_obs::kind::CHECKPOINT, wal_seq, bytes, 0, us);
        Ok(bytes)
    }

    /// Writes an incremental **delta checkpoint**: `delta` carries the
    /// state change from the durable chain tip `base_seq` to `wal_seq`
    /// (see [`crate::delta`]). The manifest is *not* flipped — recovery
    /// discovers deltas by directory scan and chains them off the
    /// manifest's full checkpoint — so a damaged delta costs only the
    /// chain suffix above it, never the base. Stamps must chain exactly
    /// onto the current tip and lie in the committed WAL range. Returns
    /// the delta file's byte size.
    pub fn checkpoint_delta_at(
        &mut self,
        base_seq: u64,
        wal_seq: u64,
        delta: &StateDelta,
    ) -> Result<u64, StoreError> {
        let t0 = ter_obs::timer();
        if self.tip_seq != Some(base_seq) {
            return Err(StoreError::Mismatch(format!(
                "delta base {base_seq} does not chain onto the durable tip {:?}",
                self.tip_seq
            )));
        }
        if wal_seq <= base_seq {
            return Err(StoreError::Mismatch(format!(
                "delta stamps do not advance ({base_seq} -> {wal_seq})"
            )));
        }
        if wal_seq < self.wal.base_seq() || wal_seq > self.wal.next_seq() {
            return Err(StoreError::Mismatch(format!(
                "delta stamp {wal_seq} outside the committed WAL range [{}, {}]",
                self.wal.base_seq(),
                self.wal.next_seq()
            )));
        }
        // Same rule as full checkpoints: a durable stamp must never name
        // a position the log could lose.
        self.wal.sync()?;
        let name = delta_file_name(base_seq, wal_seq);
        let bytes = DeltaFile {
            fingerprint: self.fingerprint,
            base_seq,
            wal_seq,
            delta: delta.clone(),
        }
        .write(&self.dir.join(&name))?;
        self.tip_seq = Some(wal_seq);
        self.chain_len += 1;
        self.chain_bytes += bytes;
        ter_obs::OBS.delta_checkpoints.inc();
        ter_obs::OBS.delta_bytes.add(bytes);
        ter_obs::OBS.delta_chain_length.set(self.chain_len as u64);
        ter_obs::OBS.last_checkpoint_seq.set(wal_seq);
        let us = ter_obs::OBS.checkpoint_micros.observe_since(t0);
        ter_obs::flight(
            ter_obs::kind::DELTA,
            wal_seq,
            bytes,
            self.chain_len as u64,
            us,
        );
        Ok(bytes)
    }

    /// Stamp of the newest durable state on disk (`None` before the
    /// first full checkpoint) — what the next delta must chain onto.
    pub fn tip_seq(&self) -> Option<u64> {
        self.tip_seq
    }

    /// Deltas on the current chain (0 right after a full checkpoint).
    pub fn chain_len(&self) -> usize {
        self.chain_len
    }

    /// Cumulative bytes of the current chain's delta files.
    pub fn chain_bytes(&self) -> u64 {
        self.chain_bytes
    }

    /// Whether the chain has outgrown the [`CompactionPolicy`] bounds and
    /// the next checkpoint must be a full rebase.
    pub fn needs_rebase(&self) -> bool {
        self.compaction
            .chain_exceeded(self.chain_len, self.chain_bytes)
    }

    /// `ckpt-*.bin` files present in the directory, newest (highest seq)
    /// first.
    fn checkpoint_files(&self) -> Result<Vec<String>, StoreError> {
        let mut names: Vec<String> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("ckpt-") && n.ends_with(".bin"))
            .collect();
        names.sort();
        names.reverse();
        Ok(names)
    }

    /// Reconstructs the newest consistent (state, WAL suffix) pair. Never
    /// panics: damaged manifests or checkpoints degrade to older
    /// checkpoints and ultimately to a full WAL replay from the empty
    /// state (see the [module docs](self) for the ladder).
    pub fn recover(&self) -> Result<Recovery, StoreError> {
        // Candidate checkpoints: the manifest's first, then any others on
        // disk, newest first.
        let mut candidates: Vec<String> = Vec::new();
        if let Ok(m) = Manifest::load(&self.dir.join(MANIFEST_FILE), self.fingerprint) {
            candidates.push(m.checkpoint);
        }
        for name in self.checkpoint_files()? {
            if !candidates.contains(&name) {
                candidates.push(name);
            }
        }
        let mut state = None;
        let mut checkpoint_seq = 0;
        for name in candidates {
            if let Ok(ck) = Checkpoint::load(&self.dir.join(&name), self.fingerprint) {
                state = Some(ck.state);
                checkpoint_seq = ck.wal_seq;
                break;
            }
        }
        // Extend the base along its delta chain: each link must load,
        // validate, and apply cleanly onto the state reached so far. The
        // first damaged link ends the chain — recovery degrades to the
        // older consistent prefix (base + surviving links) and lets the
        // WAL suffix bridge the rest. Never a panic, never a skip.
        let mut chain_applied = 0;
        if let Some(base_state) = state.take() {
            let files = delta_files_in(&self.dir);
            let mut cur = base_state;
            loop {
                let applied = files.iter().rev().find_map(|(b, t, name)| {
                    if *b != checkpoint_seq || *t <= checkpoint_seq {
                        return None;
                    }
                    let df = DeltaFile::load(&self.dir.join(name), self.fingerprint).ok()?;
                    df.delta.apply(&cur).ok().map(|next| (*t, next))
                });
                match applied {
                    Some((t, next)) => {
                        cur = next;
                        checkpoint_seq = t;
                        chain_applied += 1;
                    }
                    None => break,
                }
            }
            state = Some(cur);
        }
        // The log covers `[base_seq, next_seq)`. A newest-consistent
        // state (checkpoint + chain) older than the base means the store
        // lost both the state the base was advanced for *and* the frames
        // that led up to it — there is no consistent way to bridge the
        // gap, and pretending otherwise would silently skip batches.
        // Refuse. (WAL truncation only ever drops frames beneath the
        // oldest retained *full* checkpoint, so a chain degrading to its
        // base still lands at or above the log base.)
        if checkpoint_seq < self.wal.base_seq() {
            return Err(StoreError::Mismatch(format!(
                "newest consistent checkpoint is at batch {checkpoint_seq} but the WAL \
                 starts at {} — state beneath the log base was lost",
                self.wal.base_seq()
            )));
        }
        // A checkpoint "newer than the WAL" (the log was truncated by tail
        // corruption) simply has nothing to replay — the checkpoint alone
        // is the newest consistent state.
        let suffix = if checkpoint_seq >= self.wal.next_seq() {
            Vec::new()
        } else {
            self.wal
                .read_batches(checkpoint_seq)?
                .into_iter()
                .map(|(_, b)| b)
                .collect()
        };
        Ok(Recovery {
            state,
            checkpoint_seq,
            chain_applied,
            suffix,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::{Record, Schema};
    use ter_text::Dictionary;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p =
                std::env::temp_dir().join(format!("ter_store_dir_{}_{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&p);
            fs::create_dir_all(&p).unwrap();
            Self(p)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn batch(n: usize, start: u64) -> Vec<Arrival> {
        let schema = Schema::new(vec!["a"]);
        let mut dict = Dictionary::new();
        (0..n)
            .map(|i| {
                let id = start + i as u64;
                Arrival {
                    stream_id: 0,
                    timestamp: id,
                    record: Record::from_texts(&schema, id, &[Some("w")], &mut dict),
                }
            })
            .collect()
    }

    fn state_at(seq: u64) -> EngineState {
        EngineState {
            window_capacity: 8,
            stats: ter_ids::PruneStats {
                total_pairs: seq,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn full_cycle_checkpoint_plus_suffix() {
        let dir = TempDir::new("cycle");
        let (b0, b1, b2) = (batch(2, 0), batch(2, 10), batch(2, 20));
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&b0).unwrap();
            store.log_batch(&b1).unwrap();
            store.checkpoint(&state_at(2)).unwrap();
            store.log_batch(&b2).unwrap();
        }
        let store = TerStore::open(dir.path(), 1).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, Some(state_at(2)));
        assert_eq!(rec.checkpoint_seq, 2);
        assert_eq!(rec.suffix, vec![b2]);
        assert_eq!(rec.resume_seq(), 3);
    }

    /// Pipelined serving appends ahead of the engine: the WAL already
    /// holds batch 2 when the state covering batches 0–1 is
    /// checkpointed. The explicit stamp makes recovery replay exactly
    /// the un-stepped suffix; stamps outside the committed range are
    /// refused.
    #[test]
    fn checkpoint_at_explicit_seq_replays_the_pipelined_suffix() {
        let dir = TempDir::new("pipelined_ckpt");
        let (b0, b1, b2) = (batch(2, 0), batch(2, 10), batch(2, 20));
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&b0).unwrap();
            store.log_batch(&b1).unwrap();
            // Batch 2 is already appended (WAL runs ahead)...
            store.log_batch(&b2).unwrap();
            // ...but the engine has only stepped batches 0–1.
            store.checkpoint_at(2, &state_at(2)).unwrap();
            assert!(matches!(
                store.checkpoint_at(4, &state_at(4)),
                Err(StoreError::Mismatch(_))
            ));
        }
        let store = TerStore::open(dir.path(), 1).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, Some(state_at(2)));
        assert_eq!(rec.checkpoint_seq, 2);
        assert_eq!(rec.suffix, vec![b2]);
        assert_eq!(rec.resume_seq(), 3);
    }

    #[test]
    fn no_manifest_replays_everything() {
        let dir = TempDir::new("nomani");
        let (b0, b1) = (batch(1, 0), batch(1, 10));
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&b0).unwrap();
            store.log_batch(&b1).unwrap();
        }
        let store = TerStore::open(dir.path(), 1).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, None);
        assert_eq!(rec.checkpoint_seq, 0);
        assert_eq!(rec.suffix, vec![b0, b1]);
    }

    #[test]
    fn empty_manifest_falls_back_to_on_disk_checkpoint() {
        let dir = TempDir::new("emptymani");
        let b0 = batch(1, 0);
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&b0).unwrap();
            store.checkpoint(&state_at(1)).unwrap();
        }
        fs::write(dir.path().join(MANIFEST_FILE), b"").unwrap();
        let store = TerStore::open(dir.path(), 1).unwrap();
        let rec = store.recover().unwrap();
        // The checkpoint file itself is still discovered and used.
        assert_eq!(rec.state, Some(state_at(1)));
        assert_eq!(rec.checkpoint_seq, 1);
        assert!(rec.suffix.is_empty());
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_full_replay() {
        let dir = TempDir::new("badckpt");
        let b0 = batch(1, 0);
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&b0).unwrap();
            store.checkpoint(&state_at(1)).unwrap();
        }
        let name = checkpoint_file_name(1);
        let mut bytes = fs::read(dir.path().join(&name)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(dir.path().join(&name), &bytes).unwrap();
        let store = TerStore::open(dir.path(), 1).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, None);
        assert_eq!(rec.checkpoint_seq, 0);
        assert_eq!(rec.suffix, vec![b0]);
    }

    #[test]
    fn checkpoint_newer_than_wal_stands_alone() {
        let dir = TempDir::new("newer");
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&batch(1, 0)).unwrap();
            store.log_batch(&batch(1, 10)).unwrap();
            store.checkpoint(&state_at(2)).unwrap();
        }
        // Lose the whole WAL (e.g. tail corruption truncated it to zero).
        fs::remove_file(dir.path().join(WAL_FILE)).unwrap();
        let store = TerStore::open(dir.path(), 1).unwrap();
        // The fresh log is re-based at the durable checkpoint, so the
        // logical stream position survives the loss.
        assert_eq!(store.wal_seq(), 2);
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, Some(state_at(2)));
        assert_eq!(rec.checkpoint_seq, 2);
        assert!(rec.suffix.is_empty(), "no suffix can exist past the WAL");
        assert_eq!(rec.resume_seq(), 2);
    }

    /// Sequence numbering must keep counting the logical stream across a
    /// WAL loss: post-recovery appends and checkpoints continue at the
    /// checkpoint's offset instead of restarting at 0 (which would make
    /// `resume_seq` under-count and double-feed the stream).
    #[test]
    fn seq_numbering_survives_wal_reset() {
        let dir = TempDir::new("rebase");
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&batch(1, 0)).unwrap();
            store.log_batch(&batch(1, 10)).unwrap();
            store.checkpoint(&state_at(2)).unwrap();
        }
        // Garbage-corrupt the WAL header: open resets it, then re-bases.
        fs::write(dir.path().join(WAL_FILE), b"garbage").unwrap();
        let mut store = TerStore::open(dir.path(), 1).unwrap();
        assert_eq!(store.wal_seq(), 2);
        let (b2, b3) = (batch(1, 20), batch(1, 30));
        assert_eq!(store.log_batch(&b2).unwrap(), 2);
        store.checkpoint(&state_at(3)).unwrap();
        assert_eq!(store.log_batch(&b3).unwrap(), 3);
        drop(store);

        let store = TerStore::open(dir.path(), 1).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, Some(state_at(3)));
        assert_eq!(rec.checkpoint_seq, 3);
        assert_eq!(rec.suffix, vec![b3]);
        assert_eq!(rec.resume_seq(), 4);
    }

    /// If the checkpoint the WAL was re-based on is later destroyed, no
    /// consistent state covers the gap below the log base — recovery must
    /// refuse (an error, never a panic, and never a silent skip).
    #[test]
    fn unbridgeable_gap_is_refused() {
        let dir = TempDir::new("gap");
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&batch(1, 0)).unwrap();
            store.log_batch(&batch(1, 10)).unwrap();
            store.checkpoint(&state_at(2)).unwrap();
        }
        fs::remove_file(dir.path().join(WAL_FILE)).unwrap();
        // Re-bases the WAL at 2 (checkpoint still valid at this point).
        drop(TerStore::open(dir.path(), 1).unwrap());
        // Now the checkpoint is destroyed too.
        fs::remove_file(dir.path().join(checkpoint_file_name(2))).unwrap();
        let store = TerStore::open(dir.path(), 1).unwrap();
        assert!(matches!(store.recover(), Err(StoreError::Mismatch(_))));
    }

    #[test]
    fn older_checkpoints_are_pruned_only_after_manifest_flip() {
        let dir = TempDir::new("prune");
        let mut store = TerStore::open(dir.path(), 1).unwrap();
        store.log_batch(&batch(1, 0)).unwrap();
        store.checkpoint(&state_at(1)).unwrap();
        store.log_batch(&batch(1, 10)).unwrap();
        store.checkpoint(&state_at(2)).unwrap();
        let files = store.checkpoint_files().unwrap();
        assert_eq!(files, vec![checkpoint_file_name(2)]);
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, Some(state_at(2)));
    }

    /// Two-generation compaction bounds the WAL while keeping *both*
    /// surviving checkpoint generations recoverable: with either one
    /// destroyed, recovery reconstructs the exact same stream position
    /// from the other plus the retained WAL frames.
    #[test]
    fn compaction_recovers_from_either_surviving_generation() {
        let batches: Vec<Vec<Arrival>> = (0..8).map(|i| batch(1, i * 10)).collect();
        // Build: 3 batches, ckpt A (seq 3), 2 batches, ckpt B (seq 5),
        // 2 more batches logged after B.
        let build = |dir: &Path| {
            let mut store = TerStore::open(dir, 1).unwrap();
            store.set_compaction(CompactionPolicy::two_generation());
            for b in &batches[..3] {
                store.log_batch(b).unwrap();
            }
            store.checkpoint(&state_at(3)).unwrap();
            // One generation so far: the WAL must NOT have been compacted
            // (a damaged ckpt A could still need the full replay).
            assert_eq!(store.wal.base_seq(), 0);
            for b in &batches[3..5] {
                store.log_batch(b).unwrap();
            }
            store.checkpoint(&state_at(5)).unwrap();
            // Two generations passed: frames below A (seq 3) are gone.
            assert_eq!(store.wal.base_seq(), 3);
            for b in &batches[5..7] {
                store.log_batch(b).unwrap();
            }
            let mut names = store.checkpoint_files().unwrap();
            names.sort();
            assert_eq!(
                names,
                vec![checkpoint_file_name(3), checkpoint_file_name(5)],
                "exactly the two newest generations are retained"
            );
        };

        // Newest generation (B) destroyed → recover from A, replaying the
        // retained frames 3.. (the compacted WAL still covers them).
        let dir = TempDir::new("gen_b_lost");
        build(dir.path());
        fs::remove_file(dir.path().join(checkpoint_file_name(5))).unwrap();
        let store = TerStore::open(dir.path(), 1).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, Some(state_at(3)));
        assert_eq!(rec.checkpoint_seq, 3);
        assert_eq!(rec.suffix, batches[3..7].to_vec());
        assert_eq!(rec.resume_seq(), 7);

        // Older generation (A) corrupted → recover from B.
        let dir = TempDir::new("gen_a_lost");
        build(dir.path());
        let a = dir.path().join(checkpoint_file_name(3));
        let mut bytes = fs::read(&a).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&a, &bytes).unwrap();
        let store = TerStore::open(dir.path(), 1).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, Some(state_at(5)));
        assert_eq!(rec.checkpoint_seq, 5);
        assert_eq!(rec.suffix, batches[5..7].to_vec());
        assert_eq!(rec.resume_seq(), 7);

        // Both intact → the manifest's generation wins, same position.
        let dir = TempDir::new("gen_both");
        build(dir.path());
        let store = TerStore::open(dir.path(), 1).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.checkpoint_seq, 5);
        assert_eq!(rec.resume_seq(), 7);
    }

    /// A third checkpoint under the two-generation policy rolls the
    /// retention window forward: generation 1 disappears, the WAL base
    /// advances to generation 2.
    #[test]
    fn compaction_rolls_generations_forward() {
        let dir = TempDir::new("genroll");
        let mut store = TerStore::open(dir.path(), 1).unwrap();
        store.set_compaction(CompactionPolicy::two_generation());
        for i in 0..3 {
            store.log_batch(&batch(1, i * 10)).unwrap();
            store.checkpoint(&state_at(i + 1)).unwrap();
        }
        let mut names = store.checkpoint_files().unwrap();
        names.sort();
        assert_eq!(
            names,
            vec![checkpoint_file_name(2), checkpoint_file_name(3)]
        );
        assert_eq!(store.wal.base_seq(), 2);
        assert_eq!(store.wal_seq(), 3);
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, Some(state_at(3)));
        assert!(rec.suffix.is_empty());
    }

    fn delta(from: u64, to: u64) -> StateDelta {
        ter_ids::delta_between(&state_at(from), &state_at(to)).unwrap()
    }

    #[test]
    fn delta_chain_recovers_to_tip() {
        let dir = TempDir::new("chain");
        let (b0, b1, b2, b3) = (batch(1, 0), batch(1, 10), batch(1, 20), batch(1, 30));
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&b0).unwrap();
            store.checkpoint(&state_at(1)).unwrap();
            assert_eq!(store.tip_seq(), Some(1));
            store.log_batch(&b1).unwrap();
            store.checkpoint_delta_at(1, 2, &delta(1, 2)).unwrap();
            store.log_batch(&b2).unwrap();
            store.checkpoint_delta_at(2, 3, &delta(2, 3)).unwrap();
            assert_eq!((store.chain_len(), store.tip_seq()), (2, Some(3)));
            assert!(store.chain_bytes() > 0);
            store.log_batch(&b3).unwrap();
        }
        let store = TerStore::open(dir.path(), 1).unwrap();
        assert_eq!((store.chain_len(), store.tip_seq()), (2, Some(3)));
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, Some(state_at(3)));
        assert_eq!(rec.checkpoint_seq, 3);
        assert_eq!(rec.chain_applied, 2);
        assert_eq!(rec.suffix, vec![b3]);
        assert_eq!(rec.resume_seq(), 4);
    }

    /// A damaged mid-chain delta ends the chain there: recovery restores
    /// the base plus the surviving prefix and replays the rest from the
    /// WAL — the same stream position, reached the slower way.
    #[test]
    fn damaged_delta_degrades_to_older_prefix() {
        let dir = TempDir::new("chainbad");
        let (b0, b1, b2) = (batch(1, 0), batch(1, 10), batch(1, 20));
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&b0).unwrap();
            store.checkpoint(&state_at(1)).unwrap();
            store.log_batch(&b1).unwrap();
            store.checkpoint_delta_at(1, 2, &delta(1, 2)).unwrap();
            store.log_batch(&b2).unwrap();
            store.checkpoint_delta_at(2, 3, &delta(2, 3)).unwrap();
        }
        let second = dir.path().join(delta_file_name(2, 3));
        let mut bytes = fs::read(&second).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&second, &bytes).unwrap();
        let store = TerStore::open(dir.path(), 1).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, Some(state_at(2)));
        assert_eq!(rec.checkpoint_seq, 2);
        assert_eq!(rec.chain_applied, 1);
        assert_eq!(rec.suffix, vec![b2]);
        assert_eq!(rec.resume_seq(), 3, "same position, reached via WAL");
    }

    #[test]
    fn delta_stamps_must_chain_onto_the_tip() {
        let dir = TempDir::new("chaintip");
        let mut store = TerStore::open(dir.path(), 1).unwrap();
        store.log_batch(&batch(1, 0)).unwrap();
        // No full checkpoint yet: nothing to chain onto.
        assert!(store.checkpoint_delta_at(0, 1, &delta(0, 1)).is_err());
        store.checkpoint(&state_at(1)).unwrap();
        store.log_batch(&batch(1, 10)).unwrap();
        // Wrong base, non-advancing stamp, stamp past the log: refused.
        assert!(store.checkpoint_delta_at(0, 2, &delta(0, 2)).is_err());
        assert!(store.checkpoint_delta_at(1, 1, &delta(1, 1)).is_err());
        assert!(store.checkpoint_delta_at(1, 9, &delta(1, 9)).is_err());
        store.checkpoint_delta_at(1, 2, &delta(1, 2)).unwrap();
        // The old tip is spent — the next delta chains onto 2, not 1.
        store.log_batch(&batch(1, 20)).unwrap();
        assert!(store.checkpoint_delta_at(1, 3, &delta(1, 3)).is_err());
        store.checkpoint_delta_at(2, 3, &delta(2, 3)).unwrap();
    }

    /// A full checkpoint closes the chain and (under the default policy,
    /// `keep_checkpoints: 1`) prunes every delta the retained generation
    /// covers; the chain counters restart at zero.
    #[test]
    fn full_checkpoint_resets_chain_and_prunes_spent_deltas() {
        let dir = TempDir::new("chainreset");
        let mut store = TerStore::open(dir.path(), 1).unwrap();
        store.set_compaction(CompactionPolicy {
            max_chain_len: 2,
            ..CompactionPolicy::default()
        });
        store.log_batch(&batch(1, 0)).unwrap();
        store.checkpoint(&state_at(1)).unwrap();
        store.log_batch(&batch(1, 10)).unwrap();
        store.checkpoint_delta_at(1, 2, &delta(1, 2)).unwrap();
        assert!(!store.needs_rebase());
        store.log_batch(&batch(1, 20)).unwrap();
        store.checkpoint_delta_at(2, 3, &delta(2, 3)).unwrap();
        assert!(store.needs_rebase(), "chain bound reached");
        store.checkpoint(&state_at(3)).unwrap();
        assert_eq!((store.chain_len(), store.chain_bytes()), (0, 0));
        assert_eq!(store.tip_seq(), Some(3));
        assert!(!store.needs_rebase());
        assert_eq!(delta_files_in(dir.path()), vec![], "spent deltas pruned");
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, Some(state_at(3)));
        assert_eq!(rec.chain_applied, 0);
    }

    /// Losing the WAL must re-base the fresh log at the *chain tip*, not
    /// merely the full checkpoint beneath it — otherwise post-recovery
    /// sequence numbers would collide with the surviving deltas.
    #[test]
    fn wal_reset_rebases_at_the_chain_tip() {
        let dir = TempDir::new("chainrebase");
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&batch(1, 0)).unwrap();
            store.checkpoint(&state_at(1)).unwrap();
            store.log_batch(&batch(1, 10)).unwrap();
            store.checkpoint_delta_at(1, 2, &delta(1, 2)).unwrap();
        }
        fs::remove_file(dir.path().join(WAL_FILE)).unwrap();
        let store = TerStore::open(dir.path(), 1).unwrap();
        assert_eq!(store.wal_seq(), 2, "log re-based at the chain tip");
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, Some(state_at(2)));
        assert_eq!(rec.checkpoint_seq, 2);
        assert_eq!(rec.chain_applied, 1);
        assert!(rec.suffix.is_empty());
    }

    #[test]
    fn fingerprint_mismatch_refused_at_open() {
        let dir = TempDir::new("fpmis");
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&batch(1, 0)).unwrap();
        }
        assert!(matches!(
            TerStore::open(dir.path(), 2),
            Err(StoreError::Mismatch(_))
        ));
    }

    #[test]
    fn foreign_fingerprint_checkpoint_is_ignored() {
        let dir = TempDir::new("fpckpt");
        let b0 = batch(1, 0);
        {
            let mut store = TerStore::open(dir.path(), 1).unwrap();
            store.log_batch(&b0).unwrap();
            store.checkpoint(&state_at(1)).unwrap();
        }
        // Same directory opened under another identity: WAL refuses.
        assert!(TerStore::open(dir.path(), 9).is_err());
        // Fabricate a store whose WAL matches but whose checkpoint does
        // not (as if the manifest survived a context change).
        fs::remove_file(dir.path().join(WAL_FILE)).unwrap();
        let store = TerStore::open(dir.path(), 9).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.state, None, "foreign checkpoint must not load");
    }
}
