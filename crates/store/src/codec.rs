//! Hand-rolled binary codec for every persisted type.
//!
//! The workspace is offline (no serde), so persistence is a small
//! explicit framework: [`Encoder`] appends little-endian primitives to a
//! byte vector, [`Decoder`] reads them back fallibly, and [`Codec`] ties
//! the two together per type. Design rules:
//!
//! * **Bit-exact floats** — `f64` travels as `to_bits`/`from_bits`, so a
//!   decoded checkpoint is bitwise the state that was exported (the
//!   recovery parity contract is exact equality, not approximation).
//! * **No panics on malformed input** — every read is bounds-checked,
//!   collection lengths are validated against the remaining byte budget
//!   before allocation, and semantic invariants (sorted token sets,
//!   imputation covering exactly the missing attributes, …) are checked
//!   and reported as [`CodecError`] instead of tripping the constructors'
//!   asserts. Frame CRCs catch corruption first; the decoder is the
//!   second line of defense.
//! * **Canonical encodings** — one byte sequence per value, so
//!   encode∘decode is the identity and decode∘encode reproduces the
//!   input bytes (property-tested in `proptests.rs`).

use ter_ids::meta::TupleMeta;
use ter_ids::{EngineState, PruneStats, StateDelta};
use ter_index::CellKey;
use ter_repo::Record;
use ter_stream::{Arrival, AttrCandidates, ProbTuple};
use ter_text::{Interval, Token, TokenSet, TopicVector};

/// Why decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value did.
    UnexpectedEof,
    /// A declared collection length exceeds the remaining bytes.
    LengthOverrun,
    /// A value violates a semantic invariant of its type.
    Invalid(&'static str),
    /// Bytes were left over where a value had to consume its whole input.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::LengthOverrun => write!(f, "declared length exceeds input"),
            CodecError::Invalid(what) => write!(f, "invalid value: {what}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte sink.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.raw(&[v]);
    }

    /// Writes a `u16` (LE).
    pub fn u16(&mut self, v: u16) {
        self.raw(&v.to_le_bytes());
    }

    /// Writes a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.raw(&v.to_le_bytes());
    }

    /// Writes a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.raw(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` bit pattern (exact, including `-0.0`, infinities,
    /// and the empty-interval sentinels).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one strict `0`/`1` byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.raw(v.as_bytes());
    }
}

/// Bounds-checked reader over encoded bytes.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16` (LE).
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32` (LE).
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` (LE).
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` encoded as `u64`.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a strict `0`/`1` bool byte.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte")),
        }
    }

    /// Reads a collection length and checks it against the remaining byte
    /// budget assuming at least `min_elem_bytes` per element, so corrupt
    /// lengths cannot drive pathological allocations.
    pub fn len_capped(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.usize()?;
        if n.checked_mul(min_elem_bytes.max(1))
            .is_none_or(|need| need > self.remaining())
        {
            return Err(CodecError::LengthOverrun);
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.len_capped(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("utf-8 string"))
    }
}

/// A type that round-trips through the binary codec.
pub trait Codec: Sized {
    /// Appends the canonical encoding of `self`.
    fn encode(&self, enc: &mut Encoder);
    /// Reads one value, validating every invariant the type's constructors
    /// would otherwise assert.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError>;
}

/// Encodes a value into a fresh byte vector.
pub fn encode_to_vec<T: Codec>(v: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    v.encode(&mut enc);
    enc.into_bytes()
}

/// Decodes a value that must consume the whole buffer.
pub fn decode_exact<T: Codec>(buf: &[u8]) -> Result<T, CodecError> {
    let mut dec = Decoder::new(buf);
    let v = T::decode(&mut dec)?;
    if !dec.is_exhausted() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(v)
}

impl Codec for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.u64()
    }
}

impl Codec for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.usize()
    }
}

impl Codec for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.f64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.f64()
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let n = dec.len_capped(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.u8(0),
            Some(v) => {
                enc.u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }
}

/// Grid cell key (`Box<[u16]>`).
impl Codec for CellKey {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        for &k in self.iter() {
            enc.u16(k);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let n = dec.len_capped(2)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(dec.u16()?);
        }
        Ok(out.into_boxed_slice())
    }
}

impl Codec for TokenSet {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        for &Token(t) in self.tokens() {
            enc.u32(t);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let n = dec.len_capped(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(Token(dec.u32()?));
        }
        if !out.windows(2).all(|w| w[0] < w[1]) {
            return Err(CodecError::Invalid("token set not strictly sorted"));
        }
        Ok(TokenSet::from_sorted(out))
    }
}

impl Codec for Interval {
    fn encode(&self, enc: &mut Encoder) {
        enc.f64(self.lo);
        enc.f64(self.hi);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        // Constructed as a literal: `Interval::new` debug-asserts
        // `lo <= hi`, but the empty accumulator `[+∞, −∞]` is a legal
        // persisted value (and CRCs already vouch for the bytes).
        let lo = dec.f64()?;
        let hi = dec.f64()?;
        if lo.is_nan() || hi.is_nan() {
            return Err(CodecError::Invalid("NaN interval endpoint"));
        }
        Ok(Interval { lo, hi })
    }
}

impl Codec for TopicVector {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        for &w in self.words() {
            enc.u64(w);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = dec.usize()?;
        let want_words = len.div_ceil(64);
        if want_words
            .checked_mul(8)
            .is_none_or(|b| b > dec.remaining())
        {
            return Err(CodecError::LengthOverrun);
        }
        let mut words = Vec::with_capacity(want_words);
        for _ in 0..want_words {
            words.push(dec.u64()?);
        }
        if len % 64 != 0 && words.last().is_some_and(|w| w >> (len % 64) != 0) {
            return Err(CodecError::Invalid("topic vector stray bits"));
        }
        Ok(TopicVector::from_words(len, words))
    }
}

impl Codec for Record {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.id);
        self.attrs.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let id = dec.u64()?;
        let attrs: Vec<Option<TokenSet>> = Vec::decode(dec)?;
        if attrs.is_empty() {
            return Err(CodecError::Invalid("record with no attributes"));
        }
        Ok(Record { id, attrs })
    }
}

impl Codec for Arrival {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.stream_id);
        enc.u64(self.timestamp);
        self.record.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Arrival {
            stream_id: dec.usize()?,
            timestamp: dec.u64()?,
            record: Record::decode(dec)?,
        })
    }
}

impl Codec for AttrCandidates {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.attr);
        self.candidates.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let attr = dec.usize()?;
        let candidates: Vec<(TokenSet, f64)> = Vec::decode(dec)?;
        if candidates.is_empty() {
            return Err(CodecError::Invalid("empty candidate distribution"));
        }
        Ok(AttrCandidates { attr, candidates })
    }
}

impl Codec for ProbTuple {
    fn encode(&self, enc: &mut Encoder) {
        self.base.encode(enc);
        self.imputed.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let base = Record::decode(dec)?;
        let imputed: Vec<AttrCandidates> = Vec::decode(dec)?;
        // `ProbTuple::new` asserts this invariant; report it instead.
        let covered: Vec<usize> = imputed.iter().map(|c| c.attr).collect();
        if covered != base.missing_attrs() {
            return Err(CodecError::Invalid(
                "imputation does not cover exactly the missing attributes",
            ));
        }
        Ok(ProbTuple { base, imputed })
    }
}

impl Codec for TupleMeta {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.id);
        enc.usize(self.stream_id);
        enc.u64(self.timestamp);
        self.tuple.encode(enc);
        self.main_bounds.encode(enc);
        self.main_expect.encode(enc);
        self.aux_bounds.encode(enc);
        self.size_bounds.encode(enc);
        self.topics.encode(enc);
        enc.bool(self.possibly_topical);
        self.possible_tokens.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(TupleMeta {
            id: dec.u64()?,
            stream_id: dec.usize()?,
            timestamp: dec.u64()?,
            tuple: ProbTuple::decode(dec)?,
            main_bounds: Vec::decode(dec)?,
            main_expect: Vec::decode(dec)?,
            aux_bounds: Vec::decode(dec)?,
            size_bounds: Vec::decode(dec)?,
            topics: TopicVector::decode(dec)?,
            possibly_topical: dec.bool()?,
            possible_tokens: TokenSet::decode(dec)?,
        })
    }
}

impl Codec for PruneStats {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.total_pairs);
        enc.u64(self.topic);
        enc.u64(self.sim);
        enc.u64(self.prob);
        enc.u64(self.instance);
        enc.u64(self.matches);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(PruneStats {
            total_pairs: dec.u64()?,
            topic: dec.u64()?,
            sim: dec.u64()?,
            prob: dec.u64()?,
            instance: dec.u64()?,
            matches: dec.u64()?,
        })
    }
}

impl Codec for EngineState {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.window_capacity);
        enc.u16(self.grid_cells);
        self.window.encode(enc);
        self.metas.encode(enc);
        self.stream_counts.encode(enc);
        self.results.encode(enc);
        self.reported.encode(enc);
        self.stats.encode(enc);
        self.cells.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(EngineState {
            window_capacity: dec.usize()?,
            grid_cells: dec.u16()?,
            window: Vec::decode(dec)?,
            metas: Vec::decode(dec)?,
            stream_counts: Vec::decode(dec)?,
            results: Vec::decode(dec)?,
            reported: Vec::decode(dec)?,
            stats: PruneStats::decode(dec)?,
            cells: Vec::decode(dec)?,
        })
    }
}

impl Codec for StateDelta {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.window_capacity);
        enc.u16(self.grid_cells);
        self.evicted.encode(enc);
        self.arrivals.encode(enc);
        self.arrival_metas.encode(enc);
        self.stream_counts.encode(enc);
        self.results_added.encode(enc);
        self.results_removed.encode(enc);
        self.reported_added.encode(enc);
        self.stats.encode(enc);
        self.cells_changed.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(StateDelta {
            window_capacity: dec.usize()?,
            grid_cells: dec.u16()?,
            evicted: Vec::decode(dec)?,
            arrivals: Vec::decode(dec)?,
            arrival_metas: Vec::decode(dec)?,
            stream_counts: Vec::decode(dec)?,
            results_added: Vec::decode(dec)?,
            results_removed: Vec::decode(dec)?,
            reported_added: Vec::decode(dec)?,
            stats: PruneStats::decode(dec)?,
            cells_changed: Vec::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut enc = Encoder::new();
        enc.u8(7);
        enc.u16(65535);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX);
        enc.f64(-0.0);
        enc.f64(f64::INFINITY);
        enc.bool(true);
        enc.str("héllo");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u16().unwrap(), 65535);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        assert_eq!(dec.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(dec.f64().unwrap(), f64::INFINITY);
        assert!(dec.bool().unwrap());
        assert_eq!(dec.str().unwrap(), "héllo");
        assert!(dec.is_exhausted());
    }

    #[test]
    fn eof_and_bad_tags() {
        let mut dec = Decoder::new(&[]);
        assert_eq!(dec.u64(), Err(CodecError::UnexpectedEof));
        let mut dec = Decoder::new(&[2]);
        assert_eq!(dec.bool(), Err(CodecError::Invalid("bool byte")));
        let mut dec = Decoder::new(&[9, 0]);
        assert_eq!(
            Option::<u64>::decode(&mut dec),
            Err(CodecError::Invalid("option tag"))
        );
    }

    #[test]
    fn length_overrun_rejected_before_allocation() {
        // Declares 2^60 u64s in a 16-byte buffer.
        let mut enc = Encoder::new();
        enc.u64(1 << 60);
        enc.u64(0);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Vec::<u64>::decode(&mut dec), Err(CodecError::LengthOverrun));
    }

    #[test]
    fn unsorted_token_set_rejected() {
        let mut enc = Encoder::new();
        enc.usize(2);
        enc.u32(5);
        enc.u32(5); // duplicate — not strictly sorted
        let bytes = enc.into_bytes();
        assert_eq!(
            decode_exact::<TokenSet>(&bytes),
            Err(CodecError::Invalid("token set not strictly sorted"))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&42u64);
        bytes.push(0);
        assert_eq!(decode_exact::<u64>(&bytes), Err(CodecError::TrailingBytes));
    }
}
