//! Checkpoint and manifest files.
//!
//! A **checkpoint** (`ckpt-<seq>.bin`) snapshots the full
//! [`EngineState`] after `seq` WAL batches:
//!
//! ```text
//! [magic "TERCKPT1"; 8 bytes][frame: [version: u32][fingerprint: u64]
//!                                    [wal_seq: u64][EngineState]]
//! ```
//!
//! The **manifest** (`MANIFEST`) names the latest durable (checkpoint,
//! WAL offset) pair:
//!
//! ```text
//! [magic "TERMANI1"; 8 bytes][frame: [version: u32][fingerprint: u64]
//!                                    [wal_seq: u64][checkpoint file name]]
//! ```
//!
//! Both are single-frame files read with the exact-consume rule, so any
//! single-byte corruption is rejected (see [`crate::frame`]), and both
//! are replaced atomically: write `<name>.tmp`, `fsync`, `rename`,
//! `fsync` the directory. A reader therefore sees either the old or the
//! new file, never a half-written one. Loaders return `Err` on any
//! inconsistency — recovery treats that as "this checkpoint does not
//! exist" and falls back to an older consistent pair, ultimately the
//! empty state plus a full WAL replay.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

use ter_ids::EngineState;

use crate::codec::{encode_to_vec, Codec, Decoder, Encoder};
use crate::frame::{decode_single_frame, write_frame};
use crate::StoreError;

/// Magic prefix of a checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"TERCKPT1";
/// Magic prefix of the manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"TERMANI1";
/// Current payload version of both file kinds.
pub const FORMAT_VERSION: u32 = 1;

/// A decoded checkpoint: the engine state after `wal_seq` WAL batches.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// (context, params) identity the snapshot belongs to.
    pub fingerprint: u64,
    /// Number of WAL batches folded into `state`.
    pub wal_seq: u64,
    /// The snapshot itself.
    pub state: EngineState,
}

/// The manifest: which checkpoint is current.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// (context, params) identity.
    pub fingerprint: u64,
    /// WAL batches folded into the named checkpoint.
    pub wal_seq: u64,
    /// Checkpoint file name (relative to the store directory).
    pub checkpoint: String,
}

/// The canonical checkpoint file name for a WAL offset.
pub fn checkpoint_file_name(wal_seq: u64) -> String {
    format!("ckpt-{wal_seq:020}.bin")
}

/// Parses the WAL offset back out of a [`checkpoint_file_name`]-shaped
/// file name (`None` for foreign files).
pub fn checkpoint_seq_of(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

/// Writes `bytes` to `path` atomically (tmp + fsync + rename + dir sync).
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Make the rename itself durable. Directories cannot be fsynced on
        // every platform; failing to do so weakens durability, not
        // consistency, so this is best-effort.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads a single-frame file with `magic`, returning the frame payload.
fn read_single_frame_file(path: &Path, magic: &[u8; 8]) -> Result<Vec<u8>, StoreError> {
    let bytes = fs::read(path)?;
    if bytes.len() < 8 || &bytes[..8] != magic {
        return Err(StoreError::Mismatch("bad file magic".into()));
    }
    Ok(decode_single_frame(&bytes[8..])
        .map_err(StoreError::Frame)?
        .to_vec())
}

impl Checkpoint {
    /// Serializes and atomically writes the checkpoint to `path`.
    pub fn write(&self, path: &Path) -> Result<u64, StoreError> {
        let mut payload = Encoder::new();
        payload.u32(FORMAT_VERSION);
        payload.u64(self.fingerprint);
        payload.u64(self.wal_seq);
        self.state.encode(&mut payload);
        let mut bytes = CHECKPOINT_MAGIC.to_vec();
        write_frame(&mut bytes, &payload.into_bytes());
        let total = bytes.len() as u64;
        write_atomic(path, &bytes)?;
        Ok(total)
    }

    /// Loads and validates a checkpoint file.
    pub fn load(path: &Path, fingerprint: u64) -> Result<Self, StoreError> {
        let payload = read_single_frame_file(path, CHECKPOINT_MAGIC)?;
        let mut dec = Decoder::new(&payload);
        let version = dec.u32().map_err(StoreError::Codec)?;
        if version != FORMAT_VERSION {
            return Err(StoreError::Mismatch(format!(
                "checkpoint version {version} (expected {FORMAT_VERSION})"
            )));
        }
        let found = dec.u64().map_err(StoreError::Codec)?;
        if found != fingerprint {
            return Err(StoreError::Mismatch(format!(
                "checkpoint fingerprint {found:#x} != expected {fingerprint:#x}"
            )));
        }
        let wal_seq = dec.u64().map_err(StoreError::Codec)?;
        let state = EngineState::decode(&mut dec).map_err(StoreError::Codec)?;
        if !dec.is_exhausted() {
            return Err(StoreError::Codec(crate::codec::CodecError::TrailingBytes));
        }
        Ok(Self {
            fingerprint,
            wal_seq,
            state,
        })
    }
}

impl Manifest {
    /// Serializes and atomically writes the manifest to `path`.
    pub fn write(&self, path: &Path) -> Result<(), StoreError> {
        let mut payload = Encoder::new();
        payload.u32(FORMAT_VERSION);
        payload.u64(self.fingerprint);
        payload.u64(self.wal_seq);
        payload.str(&self.checkpoint);
        let mut bytes = MANIFEST_MAGIC.to_vec();
        write_frame(&mut bytes, &payload.into_bytes());
        write_atomic(path, &bytes)
    }

    /// Loads and validates the manifest.
    pub fn load(path: &Path, fingerprint: u64) -> Result<Self, StoreError> {
        let payload = read_single_frame_file(path, MANIFEST_MAGIC)?;
        let mut dec = Decoder::new(&payload);
        let version = dec.u32().map_err(StoreError::Codec)?;
        if version != FORMAT_VERSION {
            return Err(StoreError::Mismatch(format!(
                "manifest version {version} (expected {FORMAT_VERSION})"
            )));
        }
        let found = dec.u64().map_err(StoreError::Codec)?;
        if found != fingerprint {
            return Err(StoreError::Mismatch(format!(
                "manifest fingerprint {found:#x} != expected {fingerprint:#x}"
            )));
        }
        let wal_seq = dec.u64().map_err(StoreError::Codec)?;
        let checkpoint = dec.str().map_err(StoreError::Codec)?;
        if !dec.is_exhausted() {
            return Err(StoreError::Codec(crate::codec::CodecError::TrailingBytes));
        }
        if checkpoint.contains(['/', '\\']) || checkpoint.contains("..") {
            return Err(StoreError::Mismatch(
                "manifest checkpoint name escapes the store directory".into(),
            ));
        }
        Ok(Self {
            fingerprint,
            wal_seq,
            checkpoint,
        })
    }
}

/// Round-trips `state` through the checkpoint encoding without touching
/// disk (sizing helper for benches).
pub fn encoded_state_len(state: &EngineState) -> usize {
    encode_to_vec(state).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("ter_store_ckpt_{}_{tag}.bin", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xABCD,
            wal_seq: 17,
            state: EngineState {
                window_capacity: 4,
                stats: ter_ids::PruneStats {
                    total_pairs: 9,
                    ..Default::default()
                },
                ..Default::default()
            },
        }
    }

    #[test]
    fn checkpoint_round_trip() {
        let path = temp("rt");
        let ck = sample();
        ck.write(&path).unwrap();
        assert_eq!(Checkpoint::load(&path, 0xABCD).unwrap(), ck);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_rejects_wrong_fingerprint_and_any_corruption() {
        let path = temp("fp");
        sample().write(&path).unwrap();
        assert!(Checkpoint::load(&path, 0x1234).is_err());
        let bytes = fs::read(&path).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert!(
                Checkpoint::load(&path, 0xABCD).is_err(),
                "corruption at byte {i} accepted"
            );
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn manifest_round_trip_and_empty_file() {
        let path = temp("mani");
        let m = Manifest {
            fingerprint: 7,
            wal_seq: 3,
            checkpoint: checkpoint_file_name(3),
        };
        m.write(&path).unwrap();
        assert_eq!(Manifest::load(&path, 7).unwrap(), m);
        // An empty manifest (0-byte file) is invalid, not a panic.
        fs::write(&path, b"").unwrap();
        assert!(Manifest::load(&path, 7).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn manifest_rejects_path_escapes() {
        let path = temp("escape");
        Manifest {
            fingerprint: 7,
            wal_seq: 0,
            checkpoint: "../../etc/passwd".into(),
        }
        .write(&path)
        .unwrap();
        assert!(Manifest::load(&path, 7).is_err());
        let _ = fs::remove_file(&path);
    }
}
