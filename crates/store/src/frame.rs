//! The frame grammar shared by every `ter_store` file.
//!
//! A frame is `[len: u32 LE][crc: u32 LE][payload; len bytes]` with
//! `crc = CRC-32/IEEE(payload)`. The two readers differ in what they
//! guarantee:
//!
//! * [`read_frame`] — sequential reader for multi-frame files (the WAL).
//!   Distinguishes a *torn* tail (fewer bytes than the header promises —
//!   the crash interrupted an append; truncate and continue) from a
//!   *corrupt* frame (CRC mismatch — truncate to the preceding frame).
//! * [`decode_single_frame`] — exact-consume reader for one-frame files
//!   (manifest, checkpoint). Requiring the frame to consume the entire
//!   buffer closes the length-field loophole: *any* single-byte change to
//!   such a file is guaranteed to be rejected, because a shrunken length
//!   leaves trailing bytes, a grown length runs past the buffer, and a
//!   payload/CRC change is a ≤8-bit burst error that CRC-32 always
//!   detects.

/// Byte cost of a frame header (`len` + `crc`).
pub const FRAME_HEADER_LEN: usize = 8;

/// Largest payload a frame may carry (1 GiB) — a sanity bound so corrupt
/// length fields cannot drive pathological allocations.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Why a frame could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes remain than a complete frame needs — a torn append.
    Torn,
    /// The stored CRC does not match the payload.
    BadCrc,
    /// The length field exceeds [`MAX_FRAME_LEN`].
    Oversized,
    /// A single-frame file had bytes after its frame.
    TrailingBytes,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Torn => write!(f, "torn frame (truncated tail)"),
            FrameError::BadCrc => write!(f, "frame CRC mismatch"),
            FrameError::Oversized => write!(f, "frame length exceeds the sanity bound"),
            FrameError::TrailingBytes => write!(f, "trailing bytes after a single-frame file"),
        }
    }
}

impl std::error::Error for FrameError {}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32/IEEE (the zlib/PNG polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Appends one frame wrapping `payload` to `out`.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] (a writer bug, not an
/// input condition).
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(payload.len() <= MAX_FRAME_LEN, "frame payload too large");
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads the frame starting at `*pos`, advancing `*pos` past it on
/// success. Never panics on malformed input.
pub fn read_frame<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], FrameError> {
    let rest = &buf[(*pos).min(buf.len())..];
    if rest.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Torn);
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized);
    }
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    if rest.len() - FRAME_HEADER_LEN < len {
        return Err(FrameError::Torn);
    }
    let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
    if crc32(payload) != crc {
        return Err(FrameError::BadCrc);
    }
    *pos += FRAME_HEADER_LEN + len;
    Ok(payload)
}

/// Reads a buffer that must contain exactly one frame (see module docs
/// for the rejection guarantee this buys).
pub fn decode_single_frame(buf: &[u8]) -> Result<&[u8], FrameError> {
    let mut pos = 0;
    let payload = read_frame(buf, &mut pos)?;
    if pos != buf.len() {
        return Err(FrameError::TrailingBytes);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The CRC-32/IEEE reference check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, b"world!");
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), b"hello");
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), b"");
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), b"world!");
        assert_eq!(pos, buf.len());
        assert_eq!(read_frame(&buf, &mut pos), Err(FrameError::Torn));
    }

    #[test]
    fn torn_tail_detected_at_every_cut() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes");
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(
                read_frame(&buf[..cut], &mut pos),
                Err(FrameError::Torn),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn every_single_byte_mutation_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"some payload worth protecting");
        for i in 0..buf.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = buf.clone();
                bad[i] ^= flip;
                assert!(
                    decode_single_frame(&bad).is_err(),
                    "mutation {flip:#x} at byte {i} accepted"
                );
            }
        }
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0xFF]; // len = u32::MAX
        buf.extend_from_slice(&[0; 12]);
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos), Err(FrameError::Oversized));
    }
}
