//! Rule discovery from a complete repository `R` ("CDD Rule Detection",
//! §2.2; evaluated in Figure 12 / Appendix C.2).
//!
//! Following the literature the paper cites (\[19, 41\]), we mine rules from
//! pairwise distance statistics:
//!
//! * **Interval (DD-style) rules** — for every attribute pair `A_x → A_j`,
//!   bucket the determinant distances of sampled record pairs into
//!   equi-width intervals; each bucket whose observed dependent distances
//!   span an acceptably tight interval yields a CDD
//!   `A_x → A_j, {[b·w, (b+1)·w], [min d_j, max d_j]}` (the relaxed
//!   `ε.min ≥ 0` the paper introduces).
//! * **Constant (editing-rule-style) refinement** — when an attribute value
//!   `v` is frequent, pairs sharing `v` get their own, usually tighter,
//!   dependent interval: `A_x → A_j, {v, A_j.I}` (the paper's
//!   `Gender, Symptom → Diagnosis, {male, …}` example).
//! * **Combined rules** — a frequent constant on `A_x` conjoined with a
//!   distance bucket on a second attribute `A_y`.
//!
//! Pair statistics are subsampled deterministically above
//! [`DiscoveryConfig::max_pairs`] so detection stays near-linear for the
//! large repositories of the Songs-scale experiments.

use ter_text::fxhash::FxHashMap;
use ter_text::Interval;

use ter_repo::Repository;

use crate::rule::{Cdd, Constraint};

/// Tunables for rule discovery.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Width of the determinant-distance buckets.
    pub bucket_width: f64,
    /// Emit a rule only if its dependent interval's upper end is at most
    /// this (looser rules impute too many candidates to be useful —
    /// the paper's "acceptable interval" criterion).
    pub accept_max: f64,
    /// Minimum number of observed pairs per bucket/constant group.
    pub min_support: usize,
    /// Cap on sampled record pairs per attribute pair.
    pub max_pairs: usize,
    /// Minimum number of repository samples sharing a constant value for
    /// constant-constraint mining.
    pub min_constant_support: usize,
    /// Also mine 2-determinant (constant + interval) combined rules.
    pub combine: bool,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        Self {
            bucket_width: 0.25,
            accept_max: 0.6,
            min_support: 4,
            max_pairs: 20_000,
            min_constant_support: 3,
            combine: true,
        }
    }
}

/// Per-attribute-pair distance cache over domain value ids.
struct DistCache<'a> {
    repo: &'a Repository,
    attr: usize,
    cache: FxHashMap<(u32, u32), f64>,
}

impl<'a> DistCache<'a> {
    fn new(repo: &'a Repository, attr: usize) -> Self {
        Self {
            repo,
            attr,
            cache: FxHashMap::default(),
        }
    }

    fn dist(&mut self, row_a: usize, row_b: usize) -> f64 {
        let ia = self.repo.value_id(row_a, self.attr);
        let ib = self.repo.value_id(row_b, self.attr);
        let key = (ia.min(ib), ia.max(ib));
        if key.0 == key.1 {
            return 0.0;
        }
        *self.cache.entry(key).or_insert_with(|| {
            let dom = self.repo.domain(self.attr);
            dom.value(key.0).jaccard_distance(dom.value(key.1))
        })
    }
}

/// Deterministically enumerates up to `max_pairs` distinct row pairs.
fn sample_pairs(n: usize, max_pairs: usize) -> Vec<(usize, usize)> {
    let total = n.saturating_mul(n.saturating_sub(1)) / 2;
    let mut out = Vec::with_capacity(total.min(max_pairs));
    if total <= max_pairs {
        for i in 0..n {
            for k in (i + 1)..n {
                out.push((i, k));
            }
        }
        return out;
    }
    // Stride through the pair space with a multiplicative step; xorshift
    // mixes the index so pairs are spread rather than clustered.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    while out.len() < max_pairs {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let i = (state % n as u64) as usize;
        let k = ((state >> 32) % n as u64) as usize;
        if i < k {
            out.push((i, k));
        } else if k < i {
            out.push((k, i));
        }
    }
    out
}

/// Detects CDD rules (interval, constant, and combined) for every
/// dependent attribute. Output order is deterministic.
pub fn detect_cdds(repo: &Repository, cfg: &DiscoveryConfig) -> Vec<Cdd> {
    let mut rules = Vec::new();
    let d = repo.schema().arity();
    if repo.len() < 2 {
        return rules;
    }
    let pairs = sample_pairs(repo.len(), cfg.max_pairs);

    for dep in 0..d {
        let mut dep_cache = DistCache::new(repo, dep);
        for det in 0..d {
            if det == dep {
                continue;
            }
            let mut det_cache = DistCache::new(repo, det);

            // ---- interval rules: bucket determinant distances ----
            let n_buckets = (1.0 / cfg.bucket_width).ceil() as usize;
            let mut bucket_dep: Vec<Interval> = vec![Interval::empty(); n_buckets];
            let mut bucket_cnt = vec![0usize; n_buckets];
            for &(i, k) in &pairs {
                let dx = det_cache.dist(i, k);
                let b = ((dx / cfg.bucket_width) as usize).min(n_buckets - 1);
                bucket_dep[b].expand(dep_cache.dist(i, k));
                bucket_cnt[b] += 1;
            }
            for b in 0..n_buckets {
                if bucket_cnt[b] >= cfg.min_support
                    && !bucket_dep[b].is_empty()
                    && bucket_dep[b].hi <= cfg.accept_max
                {
                    let lo = b as f64 * cfg.bucket_width;
                    let hi = ((b + 1) as f64 * cfg.bucket_width).min(1.0);
                    rules.push(Cdd::new(
                        vec![(det, Constraint::Interval(Interval::new(lo, hi)))],
                        dep,
                        bucket_dep[b],
                    ));
                }
            }

            // ---- constant refinement ----
            let groups = constant_groups(repo, det, cfg.min_constant_support);
            for (vid, rows) in &groups {
                let mut dep_iv = Interval::empty();
                let mut cnt = 0usize;
                for (ai, &ra) in rows.iter().enumerate() {
                    for &rb in &rows[ai + 1..] {
                        dep_iv.expand(dep_cache.dist(ra, rb));
                        cnt += 1;
                        if cnt > cfg.max_pairs {
                            break;
                        }
                    }
                    if cnt > cfg.max_pairs {
                        break;
                    }
                }
                if cnt >= cfg.min_support && !dep_iv.is_empty() {
                    let v = repo.domain(det).value(*vid).clone();
                    let constant_accepted = dep_iv.hi <= cfg.accept_max;
                    if constant_accepted {
                        rules.push(Cdd::new(
                            vec![(det, Constraint::Constant(v.clone()))],
                            dep,
                            dep_iv,
                        ));
                    }

                    // ---- combined constant + interval rules ----
                    // Mined regardless of whether the single-constant rule
                    // was accepted: combining a second determinant is most
                    // valuable exactly when the constant alone is too loose
                    // (the paper's editing-rule refinement rationale).
                    if cfg.combine {
                        for det2 in 0..d {
                            if det2 == dep || det2 == det {
                                continue;
                            }
                            let mut det2_cache = DistCache::new(repo, det2);
                            let mut bdep: Vec<Interval> = vec![Interval::empty(); n_buckets];
                            let mut bcnt = vec![0usize; n_buckets];
                            let mut budget = cfg.max_pairs;
                            'outer: for (ai, &ra) in rows.iter().enumerate() {
                                for &rb in &rows[ai + 1..] {
                                    let dx = det2_cache.dist(ra, rb);
                                    let b = ((dx / cfg.bucket_width) as usize).min(n_buckets - 1);
                                    bdep[b].expand(dep_cache.dist(ra, rb));
                                    bcnt[b] += 1;
                                    budget -= 1;
                                    if budget == 0 {
                                        break 'outer;
                                    }
                                }
                            }
                            for b in 0..n_buckets {
                                if bcnt[b] >= cfg.min_support
                                    && !bdep[b].is_empty()
                                    && bdep[b].hi <= cfg.accept_max
                                    // When the single-constant rule was
                                    // accepted, only keep a combined rule
                                    // that is strictly tighter.
                                    && (!constant_accepted || bdep[b].hi < dep_iv.hi)
                                {
                                    let lo = b as f64 * cfg.bucket_width;
                                    let hi = ((b + 1) as f64 * cfg.bucket_width).min(1.0);
                                    rules.push(Cdd::new(
                                        vec![
                                            (det, Constraint::Constant(v.clone())),
                                            (det2, Constraint::Interval(Interval::new(lo, hi))),
                                        ],
                                        dep,
                                        bdep[b],
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    rules
}

/// Detects plain differential dependencies: interval-only rules with the
/// classical `ε.min = 0` (so both constraints are anchored at zero). DDs
/// tolerate wider determinant ranges and therefore produce looser dependent
/// intervals — the behaviour behind the `DD+ER` baseline's lower accuracy
/// and higher cost (Figures 5, 13–17).
pub fn detect_dds(repo: &Repository, cfg: &DiscoveryConfig) -> Vec<Cdd> {
    let mut rules = Vec::new();
    let d = repo.schema().arity();
    if repo.len() < 2 {
        return rules;
    }
    let pairs = sample_pairs(repo.len(), cfg.max_pairs);
    let n_buckets = (1.0 / cfg.bucket_width).ceil() as usize;

    for dep in 0..d {
        let mut dep_cache = DistCache::new(repo, dep);
        for det in 0..d {
            if det == dep {
                continue;
            }
            let mut det_cache = DistCache::new(repo, det);
            // Cumulative buckets [0, (b+1)·w]: classical zero-anchored DDs.
            let mut cum_dep: Vec<Interval> = vec![Interval::empty(); n_buckets];
            let mut cum_cnt = vec![0usize; n_buckets];
            for &(i, k) in &pairs {
                let dx = det_cache.dist(i, k);
                let b = ((dx / cfg.bucket_width) as usize).min(n_buckets - 1);
                // A pair in bucket b belongs to every cumulative bucket ≥ b.
                for bb in b..n_buckets {
                    cum_dep[bb].expand(dep_cache.dist(i, k));
                    cum_cnt[bb] += 1;
                }
            }
            for b in 0..n_buckets {
                if cum_cnt[b] >= cfg.min_support && !cum_dep[b].is_empty() {
                    let hi = ((b + 1) as f64 * cfg.bucket_width).min(1.0);
                    let dep_iv = Interval::new(0.0, cum_dep[b].hi);
                    if dep_iv.hi <= cfg.accept_max {
                        rules.push(Cdd::new(
                            vec![(det, Constraint::Interval(Interval::new(0.0, hi)))],
                            dep,
                            dep_iv,
                        ));
                    }
                }
            }
        }
    }
    rules
}

/// Detects editing rules (reference \[12\]): constant determinants whose
/// group agrees *exactly* on the dependent attribute (`A_j.I = [0, 0]`).
pub fn detect_editing_rules(repo: &Repository, cfg: &DiscoveryConfig) -> Vec<Cdd> {
    let mut rules = Vec::new();
    let d = repo.schema().arity();
    for dep in 0..d {
        for det in 0..d {
            if det == dep {
                continue;
            }
            let groups = constant_groups(repo, det, cfg.min_constant_support);
            for (vid, rows) in &groups {
                let first_dep = repo.value_id(rows[0], dep);
                if rows.iter().all(|&r| repo.value_id(r, dep) == first_dep) {
                    rules.push(Cdd::new(
                        vec![(
                            det,
                            Constraint::Constant(repo.domain(det).value(*vid).clone()),
                        )],
                        dep,
                        Interval::point(0.0),
                    ));
                }
            }
        }
    }
    rules
}

/// Groups repository rows by their value id on `attr`, keeping groups with
/// at least `min_support` members. Deterministic order (by value id).
fn constant_groups(repo: &Repository, attr: usize, min_support: usize) -> Vec<(u32, Vec<usize>)> {
    let mut groups: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
    for row in 0..repo.len() {
        groups
            .entry(repo.value_id(row, attr))
            .or_default()
            .push(row);
    }
    let mut out: Vec<(u32, Vec<usize>)> = groups
        .into_iter()
        .filter(|(_, rows)| rows.len() >= min_support)
        .collect();
    out.sort_by_key(|(vid, _)| *vid);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::{Record, Schema};
    use ter_text::Dictionary;

    /// A repository where gender tightly determines diagnosis vocabulary:
    /// males have diabetes-flavoured diagnoses, females flu-flavoured.
    fn correlated_repo() -> Repository {
        let schema = Schema::new(vec!["gender", "symptom", "diagnosis"]);
        let mut dict = Dictionary::new();
        let mut recs = Vec::new();
        for i in 0..12u64 {
            let (g, s, dx) = if i % 2 == 0 {
                ("male", "weight loss blurred vision", "type two diabetes")
            } else {
                ("female", "fever cough aches", "seasonal flu")
            };
            recs.push(Record::from_texts(
                &schema,
                i,
                &[Some(g), Some(s), Some(dx)],
                &mut dict,
            ));
        }
        Repository::from_records(schema, recs)
    }

    #[test]
    fn detects_constant_rules_on_correlated_data() {
        let repo = correlated_repo();
        let rules = detect_cdds(&repo, &DiscoveryConfig::default());
        assert!(!rules.is_empty());
        // There must be a constant rule gender → diagnosis with a tight
        // (zero-width) dependent interval.
        let tight_constant = rules.iter().any(|r| {
            r.dependent == 2
                && r.dependent_interval.hi == 0.0
                && r.determinants()
                    .iter()
                    .any(|(a, c)| *a == 0 && matches!(c, Constraint::Constant(_)))
        });
        assert!(tight_constant, "rules: {}", rules.len());
    }

    #[test]
    fn discovered_rules_hold_on_training_data() {
        let repo = correlated_repo();
        let rules = detect_cdds(&repo, &DiscoveryConfig::default());
        for rule in &rules {
            for i in 0..repo.len() {
                for k in (i + 1)..repo.len() {
                    assert!(
                        rule.holds_on(repo.sample(i), repo.sample(k)),
                        "rule {rule:?} violated by pair ({i},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn editing_rules_require_exact_agreement() {
        let repo = correlated_repo();
        let ers = detect_editing_rules(&repo, &DiscoveryConfig::default());
        assert!(!ers.is_empty());
        for r in &ers {
            assert!(r.is_editing_rule());
        }
    }

    #[test]
    fn dds_are_zero_anchored_and_interval_only() {
        let repo = correlated_repo();
        let dds = detect_dds(&repo, &DiscoveryConfig::default());
        for r in &dds {
            assert!(r.is_dd());
            for (_, c) in r.determinants() {
                if let Constraint::Interval(i) = c {
                    assert_eq!(i.lo, 0.0);
                }
            }
            assert_eq!(r.dependent_interval.lo, 0.0);
        }
    }

    #[test]
    fn dd_intervals_no_tighter_than_cdd() {
        // The whole point of CDDs (and of the paper's accuracy argument):
        // a DD's dependent interval on the same (attr→attr) direction is
        // at least as wide as the best CDD's.
        let repo = correlated_repo();
        let cfg = DiscoveryConfig::default();
        let cdds = detect_cdds(&repo, &cfg);
        let dds = detect_dds(&repo, &cfg);
        let best_cdd = cdds
            .iter()
            .filter(|r| r.dependent == 2)
            .map(|r| r.dependent_interval.hi)
            .fold(f64::INFINITY, f64::min);
        let best_dd = dds
            .iter()
            .filter(|r| r.dependent == 2)
            .map(|r| r.dependent_interval.hi)
            .fold(f64::INFINITY, f64::min);
        if best_dd.is_finite() && best_cdd.is_finite() {
            assert!(best_cdd <= best_dd);
        }
    }

    #[test]
    fn tiny_repository_yields_no_rules() {
        let schema = Schema::new(vec!["a", "b"]);
        let mut dict = Dictionary::new();
        let recs = vec![Record::from_texts(
            &schema,
            1,
            &[Some("x"), Some("y")],
            &mut dict,
        )];
        let repo = Repository::from_records(schema, recs);
        assert!(detect_cdds(&repo, &DiscoveryConfig::default()).is_empty());
        assert!(detect_dds(&repo, &DiscoveryConfig::default()).is_empty());
    }

    #[test]
    fn sample_pairs_caps_and_dedups_shape() {
        let pairs = sample_pairs(100, 50);
        assert_eq!(pairs.len(), 50);
        for &(i, k) in &pairs {
            assert!(i < k && k < 100);
        }
        let all = sample_pairs(10, 1000);
        assert_eq!(all.len(), 45);
    }

    #[test]
    fn discovery_is_deterministic() {
        let repo = correlated_repo();
        let a = detect_cdds(&repo, &DiscoveryConfig::default());
        let b = detect_cdds(&repo, &DiscoveryConfig::default());
        assert_eq!(a, b);
    }
}
