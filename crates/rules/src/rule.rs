//! The CDD rule model (Definition 3) and its matching semantics.

use ter_repo::Record;
use ter_text::{Interval, TokenSet};

/// One determinant constraint `φ[A_x]` of a CDD.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// Distance constraint: `ε.min ≤ |r_1[A_x] − r_2[A_x]| ≤ ε.max`
    /// (Jaccard distance between the token sets). The paper relaxes
    /// `ε.min` to any non-negative value below `ε.max`.
    Interval(Interval),
    /// Constant constraint: `r_1[A_x] = r_2[A_x] = v` (editing-rule style).
    Constant(TokenSet),
}

impl Constraint {
    /// Whether a pair of present values satisfies the constraint
    /// (`(r_1, r_2) ≍ φ[A_x]` in the paper's notation).
    pub fn pair_satisfies(&self, a: &TokenSet, b: &TokenSet) -> bool {
        match self {
            Constraint::Interval(i) => i.contains(a.jaccard_distance(b)),
            Constraint::Constant(v) => a == v && b == v,
        }
    }

    /// Whether a single tuple's value is *compatible* with the constraint —
    /// i.e. some counterpart could still satisfy it. Interval constraints
    /// are always compatible; constant constraints require the value itself
    /// to equal `v`.
    pub fn value_compatible(&self, value: &TokenSet) -> bool {
        match self {
            Constraint::Interval(_) => true,
            Constraint::Constant(v) => value == v,
        }
    }
}

/// A conditional differential dependency `(X → A_j, φ[X A_j])`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdd {
    /// Determinant attributes with their constraints, sorted by attribute
    /// index and deduplicated (one constraint per attribute).
    determinants: Vec<(usize, Constraint)>,
    /// The dependent attribute `A_j ∉ X`.
    pub dependent: usize,
    /// The dependent distance constraint `A_j.I`.
    pub dependent_interval: Interval,
}

impl Cdd {
    /// Builds a rule; sorts determinants and validates `A_j ∉ X`.
    ///
    /// # Panics
    /// Panics if a determinant repeats, equals the dependent, or the
    /// interval endpoints leave `[0, 1]`.
    pub fn new(
        mut determinants: Vec<(usize, Constraint)>,
        dependent: usize,
        dependent_interval: Interval,
    ) -> Self {
        assert!(
            !determinants.is_empty(),
            "CDD needs at least one determinant"
        );
        determinants.sort_by_key(|(a, _)| *a);
        assert!(
            determinants.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate determinant attribute"
        );
        assert!(
            determinants.iter().all(|(a, _)| *a != dependent),
            "dependent attribute cannot be a determinant"
        );
        assert!(
            (0.0..=1.0).contains(&dependent_interval.lo)
                && (0.0..=1.0).contains(&dependent_interval.hi),
            "dependent interval outside [0,1]"
        );
        Self {
            determinants,
            dependent,
            dependent_interval,
        }
    }

    /// Determinant `(attribute, constraint)` pairs, sorted by attribute.
    pub fn determinants(&self) -> &[(usize, Constraint)] {
        &self.determinants
    }

    /// Sorted determinant attribute indices (the set `X`).
    pub fn determinant_attrs(&self) -> impl Iterator<Item = usize> + '_ {
        self.determinants.iter().map(|(a, _)| *a)
    }

    /// Whether every determinant is an interval constraint (a plain DD).
    pub fn is_dd(&self) -> bool {
        self.determinants
            .iter()
            .all(|(_, c)| matches!(c, Constraint::Interval(_)))
    }

    /// Whether this is an editing rule: all-constant determinants and an
    /// exact-copy dependent (`A_j.I = [0, 0]`).
    pub fn is_editing_rule(&self) -> bool {
        self.dependent_interval == Interval::point(0.0)
            && self
                .determinants
                .iter()
                .all(|(_, c)| matches!(c, Constraint::Constant(_)))
    }

    /// Whether the rule can be used to impute `record`'s missing
    /// `dependent` attribute: every determinant must be present in the
    /// record and compatible with constant constraints.
    pub fn applicable_to(&self, record: &Record) -> bool {
        self.determinants
            .iter()
            .all(|(a, c)| record.attr(*a).is_some_and(|v| c.value_compatible(v)))
    }

    /// Whether repository sample `sample` matches `record` under the
    /// determinant constraints (the retrieval step of §3: "retrieve all
    /// sample tuples s from R that satisfy distance constraints on X").
    ///
    /// `record`'s determinants must all be present (use
    /// [`Cdd::applicable_to`] first).
    pub fn sample_matches(&self, record: &Record, sample: &Record) -> bool {
        self.determinants
            .iter()
            .all(|(a, c)| match (record.attr(*a), sample.attr(*a)) {
                (Some(rv), Some(sv)) => c.pair_satisfies(rv, sv),
                _ => false,
            })
    }

    /// Whether a pair of complete records obeys the rule (either some
    /// determinant constraint fails, or the dependent constraint holds).
    /// Used to validate discovered rules on held-out data.
    pub fn holds_on(&self, a: &Record, b: &Record) -> bool {
        let lhs = self
            .determinants
            .iter()
            .all(|(x, c)| match (a.attr(*x), b.attr(*x)) {
                (Some(av), Some(bv)) => c.pair_satisfies(av, bv),
                _ => false,
            });
        if !lhs {
            return true;
        }
        match (a.attr(self.dependent), b.attr(self.dependent)) {
            (Some(av), Some(bv)) => self.dependent_interval.contains(av.jaccard_distance(bv)),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::{Record, Schema};
    use ter_text::Dictionary;

    fn schema() -> Schema {
        Schema::new(vec!["gender", "symptom", "diagnosis"])
    }

    fn rec(
        dict: &mut Dictionary,
        id: u64,
        g: Option<&str>,
        s: Option<&str>,
        dx: Option<&str>,
    ) -> Record {
        Record::from_texts(&schema(), id, &[g, s, dx], dict)
    }

    /// The paper's running example: CDD (Gender, Symptom → Diagnosis,
    /// {male, [0, 0.3], [0, 0.2]}) imputing tuple a2 from tuple p1.
    #[test]
    fn paper_example_2_2_matches() {
        let mut d = Dictionary::new();
        let male = ter_text::tokenize("male", &mut d);
        let rule = Cdd::new(
            vec![
                (0, Constraint::Constant(male)),
                (1, Constraint::Interval(Interval::new(0.0, 0.4))),
            ],
            2,
            Interval::new(0.0, 0.2),
        );
        let p1 = rec(
            &mut d,
            1,
            Some("male"),
            Some("weight loss blurred vision"),
            Some("diabetes"),
        );
        let a2 = rec(
            &mut d,
            2,
            Some("male"),
            Some("loss of weight blurred vision"),
            None,
        );
        assert!(rule.applicable_to(&a2));
        // symptom distance: |{weight,loss,blurred,vision} ∩ {loss,of,weight,blurred,vision}| = 4, union 5 → dist 0.2
        assert!(rule.sample_matches(&a2, &p1));
    }

    #[test]
    fn constant_constraint_requires_equality_on_both() {
        let mut d = Dictionary::new();
        let male = ter_text::tokenize("male", &mut d);
        let c = Constraint::Constant(male.clone());
        let female = ter_text::tokenize("female", &mut d);
        assert!(c.pair_satisfies(&male, &male));
        assert!(!c.pair_satisfies(&male, &female));
        assert!(!c.pair_satisfies(&female, &female));
    }

    #[test]
    fn interval_constraint_uses_jaccard_distance() {
        let mut d = Dictionary::new();
        let a = ter_text::tokenize("fever cough", &mut d);
        let b = ter_text::tokenize("fever headache", &mut d);
        // dist = 1 - 1/3 = 2/3
        assert!(Constraint::Interval(Interval::new(0.5, 0.8)).pair_satisfies(&a, &b));
        assert!(!Constraint::Interval(Interval::new(0.0, 0.5)).pair_satisfies(&a, &b));
    }

    #[test]
    fn applicable_requires_present_determinants() {
        let mut d = Dictionary::new();
        let rule = Cdd::new(
            vec![(1, Constraint::Interval(Interval::new(0.0, 0.5)))],
            2,
            Interval::new(0.0, 0.2),
        );
        let missing_sym = rec(&mut d, 1, Some("male"), None, None);
        let with_sym = rec(&mut d, 2, Some("male"), Some("fever"), None);
        assert!(!rule.applicable_to(&missing_sym));
        assert!(rule.applicable_to(&with_sym));
    }

    #[test]
    fn applicable_respects_constant_value() {
        let mut d = Dictionary::new();
        let male = ter_text::tokenize("male", &mut d);
        let rule = Cdd::new(
            vec![(0, Constraint::Constant(male))],
            2,
            Interval::new(0.0, 0.2),
        );
        let m = rec(&mut d, 1, Some("male"), None, None);
        let f = rec(&mut d, 2, Some("female"), None, None);
        assert!(rule.applicable_to(&m));
        assert!(!rule.applicable_to(&f));
    }

    #[test]
    fn holds_on_vacuous_when_lhs_fails() {
        let mut d = Dictionary::new();
        let rule = Cdd::new(
            vec![(0, Constraint::Interval(Interval::new(0.0, 0.0)))],
            2,
            Interval::new(0.0, 0.0),
        );
        let a = rec(&mut d, 1, Some("male"), Some("x"), Some("flu"));
        let b = rec(&mut d, 2, Some("female"), Some("x"), Some("diabetes"));
        // genders differ → distance 1.0 ∉ [0,0] → LHS fails → rule holds.
        assert!(rule.holds_on(&a, &b));
        let c = rec(&mut d, 3, Some("male"), Some("y"), Some("pneumonia"));
        // LHS holds (same gender) but diagnoses differ → violated.
        assert!(!rule.holds_on(&a, &c));
    }

    #[test]
    fn classification_helpers() {
        let mut d = Dictionary::new();
        let v = ter_text::tokenize("male", &mut d);
        let dd = Cdd::new(
            vec![(0, Constraint::Interval(Interval::new(0.0, 0.3)))],
            1,
            Interval::new(0.0, 0.2),
        );
        assert!(dd.is_dd());
        assert!(!dd.is_editing_rule());
        let er = Cdd::new(vec![(0, Constraint::Constant(v))], 1, Interval::point(0.0));
        assert!(er.is_editing_rule());
        assert!(!er.is_dd());
    }

    #[test]
    #[should_panic(expected = "dependent attribute cannot be a determinant")]
    fn dependent_in_lhs_panics() {
        let _ = Cdd::new(
            vec![(1, Constraint::Interval(Interval::new(0.0, 0.1)))],
            1,
            Interval::new(0.0, 0.1),
        );
    }

    #[test]
    #[should_panic(expected = "duplicate determinant")]
    fn duplicate_determinant_panics() {
        let _ = Cdd::new(
            vec![
                (0, Constraint::Interval(Interval::new(0.0, 0.1))),
                (0, Constraint::Interval(Interval::new(0.0, 0.2))),
            ],
            1,
            Interval::new(0.0, 0.1),
        );
    }

    #[test]
    fn determinants_are_sorted() {
        let mut d = Dictionary::new();
        let v = ter_text::tokenize("x", &mut d);
        let rule = Cdd::new(
            vec![
                (2, Constraint::Constant(v)),
                (0, Constraint::Interval(Interval::new(0.0, 0.1))),
            ],
            1,
            Interval::new(0.0, 0.1),
        );
        let attrs: Vec<usize> = rule.determinant_attrs().collect();
        assert_eq!(attrs, vec![0, 2]);
    }
}
