//! The CDD-index `I_j` (§5.1, Figure 2): a lattice of determinant-set
//! groups, each indexed by an aR-tree over constraint points.
//!
//! Rules with dependent attribute `A_j` are grouped by their determinant
//! attribute set `X` (the lattice levels of Figure 2 are the group sizes
//! `|X| = 1, 2, …`). Within a group, each rule becomes a point whose
//! coordinate on determinant `A_x` is
//!
//! * `dist(v, piv_1[A_x])` for a constant constraint `v` (the paper's
//!   pivot conversion of textual constants), or
//! * the sentinel `-1` for an interval constraint, which does not restrict
//!   the tuple's absolute value (the paper reserves `-1` for unconstrained
//!   dimensions; interval constraints restrict *pair* distances and are
//!   verified exactly after retrieval).
//!
//! Tree nodes aggregate the minimal interval bounding the dependent
//! constraints `A_j.I` beneath them — the coarse ranges that seed the
//! DR-index/ER-grid sides of the 3-way index join (§5.3).

use ter_index::{ArTree, Rect};
use ter_repo::{PivotTable, Record};
use ter_text::Interval;

use crate::rule::{Cdd, Constraint};

/// Node aggregate: bounds the dependent intervals of the rules beneath.
#[derive(Debug, Clone)]
pub struct CddAggregate {
    /// Minimal interval covering every `A_j.I` under the node
    /// (`A_j.I_e` in §5.1's aggregate list).
    pub dependent_interval: Interval,
}

impl ter_index::Aggregate for CddAggregate {
    fn merge(&mut self, other: &Self) {
        self.dependent_interval
            .expand_interval(&other.dependent_interval);
    }
}

/// One lattice node: all rules sharing a determinant attribute set.
#[derive(Debug, Clone)]
struct Group {
    /// Sorted determinant attributes `X`.
    attrs: Vec<usize>,
    /// Rule indices (into [`CddIndex::rules`]) indexed by constraint point.
    tree: ArTree<usize, CddAggregate>,
}

/// The CDD-index for one dependent attribute. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct CddIndex {
    dependent: usize,
    rules: Vec<Cdd>,
    /// Groups ordered by lattice level (`|X|` ascending, then by attrs).
    groups: Vec<Group>,
}

impl CddIndex {
    /// Builds the index from the rules whose dependent is `dependent`.
    /// Rules with other dependents are ignored (callers typically build one
    /// `I_j` per attribute from one global rule list, Algorithm 1 line 3).
    pub fn build(dependent: usize, all_rules: &[Cdd], pivots: &PivotTable) -> Self {
        let rules: Vec<Cdd> = all_rules
            .iter()
            .filter(|r| r.dependent == dependent)
            .cloned()
            .collect();

        // Partition rule indices by determinant attribute set.
        let mut sets: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
        for (ri, rule) in rules.iter().enumerate() {
            let attrs: Vec<usize> = rule.determinant_attrs().collect();
            match sets.iter_mut().find(|(a, _)| *a == attrs) {
                Some((_, v)) => v.push(ri),
                None => sets.push((attrs, vec![ri])),
            }
        }
        // Lattice order: level (set size) ascending, then lexicographic.
        sets.sort_by(|a, b| (a.0.len(), &a.0).cmp(&(b.0.len(), &b.0)));

        let groups = sets
            .into_iter()
            .map(|(attrs, rule_ids)| {
                let dim = attrs.len();
                let entries = rule_ids
                    .into_iter()
                    .map(|ri| ter_index::Entry {
                        point: rule_point(&rules[ri], &attrs, pivots).into_boxed_slice(),
                        payload: ri,
                        agg: CddAggregate {
                            dependent_interval: rules[ri].dependent_interval,
                        },
                    })
                    .collect();
                Group {
                    attrs,
                    tree: ArTree::bulk_load(dim, 16, entries),
                }
            })
            .collect();

        Self {
            dependent,
            rules,
            groups,
        }
    }

    /// The dependent attribute `A_j` this index serves.
    pub fn dependent(&self) -> usize {
        self.dependent
    }

    /// All indexed rules.
    pub fn rules(&self) -> &[Cdd] {
        &self.rules
    }

    /// Number of indexed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the index holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of lattice groups (distinct determinant sets).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Rules applicable to `record` for imputing its missing `A_j`:
    /// every determinant present in `record`, constants matching exactly.
    ///
    /// Retrieval descends each compatible lattice group's aR-tree with the
    /// 2^k boxes covering {constant-match, interval-sentinel} per dimension
    /// and verifies candidates exactly.
    pub fn applicable_rules<'a>(&'a self, record: &Record, pivots: &PivotTable) -> Vec<&'a Cdd> {
        let mut out = Vec::new();
        for group in &self.groups {
            // Lattice-level filter: X must be fully present in the record.
            if group.attrs.iter().any(|&a| record.is_missing(a)) {
                continue;
            }
            // Per-dimension admissible coordinates.
            let coords: Vec<f64> = group
                .attrs
                .iter()
                .map(|&a| pivots.convert_value(a, record.attr(a).unwrap()))
                .collect();
            // Enumerate the 2^k sentinel/constant boxes (k is the lattice
            // level, small by construction; fall back to one wide box that
            // covers both options per dimension beyond 8 determinants).
            let k = group.attrs.len();
            if k <= 8 {
                for mask in 0u32..(1 << k) {
                    let rect = Rect::new(
                        (0..k)
                            .map(|i| {
                                if mask & (1 << i) != 0 {
                                    Interval::point(coords[i])
                                } else {
                                    Interval::missing()
                                }
                            })
                            .collect(),
                    );
                    for e in group.tree.range_query(&rect) {
                        let rule = &self.rules[e.payload];
                        if rule.applicable_to(record) {
                            out.push(rule);
                        }
                    }
                }
            } else {
                let rect = Rect::new(
                    coords
                        .iter()
                        .map(|&c| Interval::new(-1.0, c.max(-1.0)))
                        .collect(),
                );
                for e in group.tree.range_query(&rect) {
                    let rule = &self.rules[e.payload];
                    if rule.applicable_to(record) {
                        out.push(rule);
                    }
                }
            }
        }
        out
    }

    /// Coarse bound on the dependent constraint over the rules applicable
    /// to `record`: the minimal interval covering their `A_j.I`s, from
    /// aggregates where possible. `None` when no rule applies. This seeds
    /// the DR-index query ranges in the index join (§5.3).
    pub fn dependent_bound(&self, record: &Record, pivots: &PivotTable) -> Option<Interval> {
        let mut acc = Interval::empty();
        for rule in self.applicable_rules(record, pivots) {
            acc.expand_interval(&rule.dependent_interval);
        }
        if acc.is_empty() {
            None
        } else {
            Some(acc)
        }
    }
}

/// The constraint point of `rule` within its group (see module docs).
fn rule_point(rule: &Cdd, attrs: &[usize], pivots: &PivotTable) -> Vec<f64> {
    attrs
        .iter()
        .map(|&a| {
            let (_, c) = rule
                .determinants()
                .iter()
                .find(|(x, _)| *x == a)
                .expect("group attr must be a determinant");
            match c {
                Constraint::Constant(v) => pivots.convert_value(a, v),
                Constraint::Interval(_) => -1.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_repo::{PivotConfig, Record, Repository, Schema};
    use ter_text::{Dictionary, TokenSet};

    fn schema() -> Schema {
        Schema::new(vec!["gender", "symptom", "diagnosis"])
    }

    fn setup() -> (Repository, PivotTable, Dictionary) {
        let mut dict = Dictionary::new();
        let s = schema();
        let recs = vec![
            Record::from_texts(
                &s,
                1,
                &[Some("male"), Some("weight loss"), Some("diabetes")],
                &mut dict,
            ),
            Record::from_texts(
                &s,
                2,
                &[Some("female"), Some("fever cough"), Some("flu")],
                &mut dict,
            ),
            Record::from_texts(
                &s,
                3,
                &[Some("male"), Some("blurred vision"), Some("diabetes")],
                &mut dict,
            ),
            Record::from_texts(
                &s,
                4,
                &[Some("female"), Some("red eye"), Some("conjunctivitis")],
                &mut dict,
            ),
        ];
        let repo = Repository::from_records(s, recs);
        let pivots = PivotTable::select(&repo, &PivotConfig::default());
        (repo, pivots, dict)
    }

    fn male(dict: &mut Dictionary) -> TokenSet {
        ter_text::tokenize("male", dict)
    }

    fn test_rules(dict: &mut Dictionary) -> Vec<Cdd> {
        vec![
            // constant rule: gender=male → diagnosis within 0.2
            Cdd::new(
                vec![(0, Constraint::Constant(male(dict)))],
                2,
                Interval::new(0.0, 0.2),
            ),
            // interval rule: symptom close → diagnosis within 0.5
            Cdd::new(
                vec![(1, Constraint::Interval(Interval::new(0.0, 0.5)))],
                2,
                Interval::new(0.0, 0.5),
            ),
            // combined rule (level 2)
            Cdd::new(
                vec![
                    (0, Constraint::Constant(male(dict))),
                    (1, Constraint::Interval(Interval::new(0.0, 0.3))),
                ],
                2,
                Interval::new(0.0, 0.1),
            ),
            // rule for a different dependent — must be excluded
            Cdd::new(
                vec![(0, Constraint::Interval(Interval::new(0.0, 0.5)))],
                1,
                Interval::new(0.0, 0.4),
            ),
        ]
    }

    #[test]
    fn build_filters_by_dependent_and_forms_lattice() {
        let (_, pivots, mut dict) = setup();
        let rules = test_rules(&mut dict);
        let idx = CddIndex::build(2, &rules, &pivots);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.group_count(), 3); // {gender}, {symptom}, {gender,symptom}
        assert_eq!(idx.dependent(), 2);
    }

    #[test]
    fn applicable_rules_match_brute_force() {
        let (_, pivots, mut dict) = setup();
        let rules = test_rules(&mut dict);
        let idx = CddIndex::build(2, &rules, &pivots);
        let s = schema();
        let cases = [
            Record::from_texts(
                &s,
                10,
                &[Some("male"), Some("weight loss"), None],
                &mut dict,
            ),
            Record::from_texts(&s, 11, &[Some("female"), Some("fever"), None], &mut dict),
            Record::from_texts(&s, 12, &[Some("male"), None, None], &mut dict),
            Record::from_texts(&s, 13, &[None, None, None], &mut dict),
        ];
        for rec in &cases {
            let mut got: Vec<_> = idx
                .applicable_rules(rec, &pivots)
                .into_iter()
                .cloned()
                .collect();
            let mut expect: Vec<Cdd> = idx
                .rules()
                .iter()
                .filter(|r| r.applicable_to(rec))
                .cloned()
                .collect();
            let key = |r: &Cdd| format!("{r:?}");
            got.sort_by_key(key);
            expect.sort_by_key(key);
            assert_eq!(got, expect, "record {}", rec.id);
        }
    }

    #[test]
    fn constant_rules_excluded_for_other_values() {
        let (_, pivots, mut dict) = setup();
        let rules = test_rules(&mut dict);
        let idx = CddIndex::build(2, &rules, &pivots);
        let s = schema();
        let female_rec = Record::from_texts(
            &s,
            20,
            &[Some("female"), Some("weight loss"), None],
            &mut dict,
        );
        let applicable = idx.applicable_rules(&female_rec, &pivots);
        // Only the pure interval rule applies (constants demand "male").
        assert_eq!(applicable.len(), 1);
        assert!(applicable[0].is_dd());
    }

    #[test]
    fn dependent_bound_covers_applicable_rules() {
        let (_, pivots, mut dict) = setup();
        let rules = test_rules(&mut dict);
        let idx = CddIndex::build(2, &rules, &pivots);
        let s = schema();
        let rec = Record::from_texts(
            &s,
            30,
            &[Some("male"), Some("weight loss"), None],
            &mut dict,
        );
        let bound = idx.dependent_bound(&rec, &pivots).unwrap();
        for r in idx.applicable_rules(&rec, &pivots) {
            assert!(bound.contains_interval(&r.dependent_interval));
        }
    }

    #[test]
    fn no_applicable_rules_gives_none_bound() {
        let (_, pivots, mut dict) = setup();
        let rules = test_rules(&mut dict);
        let idx = CddIndex::build(2, &rules, &pivots);
        let s = schema();
        let all_missing = Record::from_texts(&s, 40, &[None, None, None], &mut dict);
        assert!(idx.dependent_bound(&all_missing, &pivots).is_none());
    }

    #[test]
    fn empty_rule_list() {
        let (_, pivots, mut dict) = setup();
        let idx = CddIndex::build(2, &[], &pivots);
        assert!(idx.is_empty());
        let s = schema();
        let rec = Record::from_texts(&s, 50, &[Some("male"), Some("x"), None], &mut dict);
        assert!(idx.applicable_rules(&rec, &pivots).is_empty());
    }
}
