//! Dependency rules for imputation: DDs, CDDs, editing rules (§2.2, §3).
//!
//! A conditional differential dependency (CDD, Definition 3) has the form
//! `(X → A_j, φ[X A_j])`: if two tuples satisfy every determinant
//! constraint `φ[A_x]` (a distance interval `[ε.min, ε.max]` or a shared
//! constant value `v`), their dependent-attribute distance must fall in
//! `A_j.I`. CDDs generalize both differential dependencies (all-interval
//! constraints, reference \[35\]) and editing rules (constant constraints
//! with an exact-copy dependent, reference \[12\]).
//!
//! This crate provides:
//!
//! * [`Cdd`] / [`Constraint`] — the rule model, with the paper's relaxed
//!   `0 ≤ ε.min < ε.max` intervals;
//! * [`discovery`] — rule detection from a complete repository `R`
//!   (bucketed pair statistics for interval rules, frequent-constant
//!   refinement for conditional/editing rules), used both offline
//!   (Algorithm 1 line 2, Figure 12) and for the §5.5 dynamic updates;
//! * [`CddIndex`] — the CDD-index `I_j` of §5.1: rules grouped into a
//!   lattice by determinant attribute set, each group indexed by an
//!   aR-tree over pivot-converted constant constraints with
//!   dependent-interval aggregates.

pub mod cddindex;
pub mod discovery;
pub mod rule;

pub use cddindex::{CddAggregate, CddIndex};
pub use discovery::{detect_cdds, detect_dds, detect_editing_rules, DiscoveryConfig};
pub use rule::{Cdd, Constraint};
