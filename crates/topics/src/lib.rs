//! Topic modeling: hand-rolled latent Dirichlet allocation (LDA) via
//! collapsed Gibbs sampling.
//!
//! The paper assumes users specify the query topic-keyword set `K`
//! ("each medical professional needs to specify one's expertise or disease
//! topics"). In practice those keyword sets come from a topic model fitted
//! over the corpus; this crate closes that loop: fit LDA over the textual
//! tuples, take each topic's top words as a candidate `K`, and feed it to
//! the TER-iDS engine (see `examples/topic_discovery.rs`).
//!
//! Implementation: the standard collapsed Gibbs sampler (Griffiths &
//! Steyvers 2004) with symmetric Dirichlet priors — no external ML
//! dependencies, seeded and fully deterministic.

pub mod lda;

pub use lda::{LdaConfig, LdaModel};
