//! Collapsed Gibbs sampling for LDA.
//!
//! Documents are bags of interned tokens. The sampler maintains the usual
//! count matrices (`n_{t,w}`, `n_t`, `n_{d,t}`) and resamples every token's
//! topic assignment from the collapsed conditional
//!
//! ```text
//! p(z = t | ·) ∝ (n_{d,t} + α) · (n_{t,w} + β) / (n_t + Vβ)
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ter_text::{Dictionary, Token};

/// LDA hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct LdaConfig {
    /// Number of topics `T`.
    pub topics: usize,
    /// Symmetric document–topic prior `α`.
    pub alpha: f64,
    /// Symmetric topic–word prior `β`.
    pub beta: f64,
    /// Gibbs sweeps over the whole corpus.
    pub iterations: usize,
    /// RNG seed (the sampler is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        Self {
            topics: 4,
            alpha: 0.1,
            beta: 0.01,
            iterations: 200,
            seed: 42,
        }
    }
}

/// A fitted LDA model.
#[derive(Debug, Clone)]
pub struct LdaModel {
    cfg: LdaConfig,
    vocab: usize,
    /// `topic_word[t * vocab + w]` = count of word `w` assigned to `t`.
    topic_word: Vec<u32>,
    /// `topic_total[t]` = total tokens assigned to `t`.
    topic_total: Vec<u32>,
    /// `doc_topic[d][t]` = tokens of document `d` assigned to `t`.
    doc_topic: Vec<Vec<u32>>,
    /// Document lengths.
    doc_len: Vec<u32>,
}

impl LdaModel {
    /// Fits LDA over `docs` (bags of tokens; duplicates meaningful).
    ///
    /// # Panics
    /// Panics if `cfg.topics == 0` or `vocab_size == 0` with non-empty docs.
    pub fn fit(docs: &[Vec<Token>], vocab_size: usize, cfg: LdaConfig) -> Self {
        assert!(cfg.topics > 0, "need at least one topic");
        let t = cfg.topics;
        let v = vocab_size;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut topic_word = vec![0u32; t * v];
        let mut topic_total = vec![0u32; t];
        let mut doc_topic: Vec<Vec<u32>> = docs.iter().map(|_| vec![0u32; t]).collect();
        let doc_len: Vec<u32> = docs.iter().map(|d| d.len() as u32).collect();

        // Random initial assignments.
        let mut assignments: Vec<Vec<usize>> = docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.iter()
                    .map(|&w| {
                        assert!(w.index() < v, "token outside vocabulary");
                        let z = rng.gen_range(0..t);
                        topic_word[z * v + w.index()] += 1;
                        topic_total[z] += 1;
                        doc_topic[d][z] += 1;
                        z
                    })
                    .collect()
            })
            .collect();

        let mut weights = vec![0.0f64; t];
        for _sweep in 0..cfg.iterations {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let old = assignments[d][i];
                    // Remove the token from the counts.
                    topic_word[old * v + w.index()] -= 1;
                    topic_total[old] -= 1;
                    doc_topic[d][old] -= 1;

                    // Collapsed conditional.
                    let mut total = 0.0;
                    for (z, wz) in weights.iter_mut().enumerate() {
                        let p = (doc_topic[d][z] as f64 + cfg.alpha)
                            * (topic_word[z * v + w.index()] as f64 + cfg.beta)
                            / (topic_total[z] as f64 + v as f64 * cfg.beta);
                        *wz = p;
                        total += p;
                    }
                    let mut u = rng.gen_range(0.0..total);
                    let mut new = t - 1;
                    for (z, &wz) in weights.iter().enumerate() {
                        if u < wz {
                            new = z;
                            break;
                        }
                        u -= wz;
                    }

                    assignments[d][i] = new;
                    topic_word[new * v + w.index()] += 1;
                    topic_total[new] += 1;
                    doc_topic[d][new] += 1;
                }
            }
        }

        Self {
            cfg,
            vocab: v,
            topic_word,
            topic_total,
            doc_topic,
            doc_len,
        }
    }

    /// Number of topics.
    pub fn topics(&self) -> usize {
        self.cfg.topics
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Posterior word distribution `φ_t(w)` of topic `t`.
    pub fn word_prob(&self, topic: usize, word: Token) -> f64 {
        (self.topic_word[topic * self.vocab + word.index()] as f64 + self.cfg.beta)
            / (self.topic_total[topic] as f64 + self.vocab as f64 * self.cfg.beta)
    }

    /// The `k` most probable words of `topic`, most probable first.
    pub fn top_words(&self, topic: usize, k: usize) -> Vec<(Token, f64)> {
        let mut scored: Vec<(Token, f64)> = (0..self.vocab)
            .map(|w| (Token(w as u32), self.word_prob(topic, Token(w as u32))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        scored.truncate(k);
        scored
    }

    /// The `k` most probable words rendered as text.
    pub fn top_words_text(&self, topic: usize, k: usize, dict: &Dictionary) -> Vec<String> {
        self.top_words(topic, k)
            .into_iter()
            .map(|(tok, _)| dict.resolve(tok).to_owned())
            .collect()
    }

    /// Posterior topic mixture `θ_d` of document `d`.
    pub fn doc_topics(&self, d: usize) -> Vec<f64> {
        let t = self.cfg.topics;
        let len = self.doc_len[d] as f64;
        (0..t)
            .map(|z| {
                (self.doc_topic[d][z] as f64 + self.cfg.alpha) / (len + t as f64 * self.cfg.alpha)
            })
            .collect()
    }

    /// Dominant topic of document `d`.
    pub fn dominant_topic(&self, d: usize) -> usize {
        let probs = self.doc_topics(d);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(z, _)| z)
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_text::Dictionary;

    /// Corpus with two cleanly separated vocabularies.
    fn two_topic_corpus() -> (Vec<Vec<Token>>, Dictionary) {
        let mut dict = Dictionary::new();
        let medical = ["fever", "cough", "diagnosis", "treatment", "symptom"];
        let cycling = ["bike", "wheel", "gear", "saddle", "pedal"];
        let mut docs = Vec::new();
        for d in 0..20 {
            let vocabulary: &[&str] = if d % 2 == 0 { &medical } else { &cycling };
            let doc: Vec<Token> = (0..30)
                .map(|i| dict.intern(vocabulary[(i * 7 + d) % vocabulary.len()]))
                .collect();
            docs.push(doc);
        }
        (docs, dict)
    }

    #[test]
    fn recovers_two_separated_topics() {
        let (docs, dict) = two_topic_corpus();
        let cfg = LdaConfig {
            topics: 2,
            iterations: 100,
            seed: 7,
            ..LdaConfig::default()
        };
        let model = LdaModel::fit(&docs, dict.len(), cfg);
        // Every even doc shares a dominant topic; every odd doc the other.
        let t_even = model.dominant_topic(0);
        let t_odd = model.dominant_topic(1);
        assert_ne!(t_even, t_odd);
        for d in 0..docs.len() {
            let expect = if d % 2 == 0 { t_even } else { t_odd };
            assert_eq!(model.dominant_topic(d), expect, "doc {d}");
        }
        // Top words of the medical topic come from the medical vocabulary.
        let top = model.top_words_text(t_even, 3, &dict);
        for w in &top {
            assert!(
                ["fever", "cough", "diagnosis", "treatment", "symptom"].contains(&w.as_str()),
                "unexpected top word {w}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (docs, dict) = two_topic_corpus();
        let cfg = LdaConfig {
            topics: 2,
            iterations: 30,
            seed: 11,
            ..LdaConfig::default()
        };
        let m1 = LdaModel::fit(&docs, dict.len(), cfg);
        let m2 = LdaModel::fit(&docs, dict.len(), cfg);
        for d in 0..docs.len() {
            assert_eq!(m1.doc_topics(d), m2.doc_topics(d));
        }
    }

    #[test]
    fn word_probs_sum_to_one_per_topic() {
        let (docs, dict) = two_topic_corpus();
        let model = LdaModel::fit(
            &docs,
            dict.len(),
            LdaConfig {
                topics: 3,
                iterations: 20,
                ..LdaConfig::default()
            },
        );
        for t in 0..3 {
            let total: f64 = (0..dict.len())
                .map(|w| model.word_prob(t, Token(w as u32)))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "topic {t} sums to {total}");
        }
    }

    #[test]
    fn doc_topics_sum_to_one() {
        let (docs, dict) = two_topic_corpus();
        let model = LdaModel::fit(&docs, dict.len(), LdaConfig::default());
        for d in 0..docs.len() {
            let total: f64 = model.doc_topics(d).iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_documents_are_tolerated() {
        let mut dict = Dictionary::new();
        let w = dict.intern("solo");
        let docs = vec![vec![], vec![w], vec![]];
        let model = LdaModel::fit(&docs, dict.len(), LdaConfig::default());
        // Empty docs get the uniform prior mixture.
        let probs = model.doc_topics(0);
        let uniform = 1.0 / probs.len() as f64;
        for p in probs {
            assert!((p - uniform).abs() < 1e-9);
        }
    }

    #[test]
    fn top_words_are_sorted_desc() {
        let (docs, dict) = two_topic_corpus();
        let model = LdaModel::fit(&docs, dict.len(), LdaConfig::default());
        let top = model.top_words(0, 5);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn out_of_vocab_token_panics() {
        let docs = vec![vec![Token(5)]];
        let _ = LdaModel::fit(&docs, 2, LdaConfig::default());
    }
}
