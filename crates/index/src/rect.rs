//! Axis-aligned bounding rectangles (MBRs) in `d` dimensions.

use ter_text::Interval;

/// A `d`-dimensional axis-aligned rectangle: one closed [`Interval`] per
/// dimension. The MBR type of [`crate::ArTree`] nodes and the query-range
/// type of both the tree and the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    dims: Box<[Interval]>,
}

impl Rect {
    /// Builds a rectangle from per-dimension intervals.
    pub fn new(dims: Vec<Interval>) -> Self {
        Self {
            dims: dims.into_boxed_slice(),
        }
    }

    /// An empty accumulator rectangle of dimensionality `d` — expanding it
    /// with any point/rect yields that point/rect.
    pub fn empty(d: usize) -> Self {
        Self::new(vec![Interval::empty(); d])
    }

    /// The degenerate rectangle covering exactly `point`.
    pub fn point(point: &[f64]) -> Self {
        Self::new(point.iter().map(|&v| Interval::point(v)).collect())
    }

    /// The unit hyper-cube `[0,1]^d` (the pivot-converted data space).
    pub fn unit(d: usize) -> Self {
        Self::new(vec![Interval::unit(); d])
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension intervals.
    #[inline]
    pub fn dims(&self) -> &[Interval] {
        &self.dims
    }

    /// Interval of dimension `k`.
    #[inline]
    pub fn dim_interval(&self, k: usize) -> &Interval {
        &self.dims[k]
    }

    /// Whether the accumulator has absorbed nothing yet.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(|i| i.is_empty())
    }

    /// Whether `point` lies inside the rectangle (inclusive).
    pub fn contains_point(&self, point: &[f64]) -> bool {
        debug_assert_eq!(point.len(), self.dim());
        self.dims.iter().zip(point).all(|(i, &v)| i.contains(v))
    }

    /// Whether the two rectangles intersect (share at least one point).
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.dims
            .iter()
            .zip(other.dims.iter())
            .all(|(a, b)| a.intersects(b))
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.dims
            .iter()
            .zip(other.dims.iter())
            .all(|(a, b)| a.contains_interval(b))
    }

    /// Grows to include `point`.
    pub fn expand_point(&mut self, point: &[f64]) {
        debug_assert_eq!(point.len(), self.dim());
        for (i, &v) in self.dims.iter_mut().zip(point) {
            i.expand(v);
        }
    }

    /// Grows to include all of `other`.
    pub fn expand_rect(&mut self, other: &Rect) {
        for (i, o) in self.dims.iter_mut().zip(other.dims.iter()) {
            i.expand_interval(o);
        }
    }

    /// Sum of side lengths — the cheap "margin" measure used to pick the
    /// subtree whose enlargement is smallest on insertion. (Volume degrades
    /// to 0 for degenerate rects, which pivot-converted points often are,
    /// so margin is the more robust choice here.)
    pub fn margin(&self) -> f64 {
        self.dims.iter().map(|i| i.width()).sum()
    }

    /// Margin increase if `point` were added.
    pub fn enlargement_for_point(&self, point: &[f64]) -> f64 {
        let mut grown = self.clone();
        grown.expand_point(point);
        grown.margin() - self.margin()
    }

    /// Center coordinate of dimension `k` (used by STR bulk loading and the
    /// split heuristic).
    pub fn center(&self, k: usize) -> f64 {
        let i = &self.dims[k];
        (i.lo + i.hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_rect_contains_its_point() {
        let r = Rect::point(&[0.2, 0.8]);
        assert!(r.contains_point(&[0.2, 0.8]));
        assert!(!r.contains_point(&[0.2, 0.81]));
    }

    #[test]
    fn intersection_all_dims_required() {
        let a = Rect::new(vec![Interval::new(0.0, 0.5), Interval::new(0.0, 0.5)]);
        let b = Rect::new(vec![Interval::new(0.4, 1.0), Interval::new(0.6, 1.0)]);
        assert!(!a.intersects(&b)); // dim 1 disjoint
        let c = Rect::new(vec![Interval::new(0.4, 1.0), Interval::new(0.5, 1.0)]);
        assert!(a.intersects(&c));
    }

    #[test]
    fn expand_point_grows_minimally() {
        let mut r = Rect::empty(2);
        r.expand_point(&[0.3, 0.7]);
        assert_eq!(r, Rect::point(&[0.3, 0.7]));
        r.expand_point(&[0.5, 0.1]);
        assert!(r.contains_point(&[0.3, 0.7]));
        assert!(r.contains_point(&[0.5, 0.1]));
        assert!((r.margin() - (0.2 + 0.6)).abs() < 1e-12);
    }

    #[test]
    fn contains_rect_nested() {
        let outer = Rect::unit(3);
        let inner = Rect::new(vec![
            Interval::new(0.1, 0.2),
            Interval::new(0.3, 0.4),
            Interval::new(0.5, 0.6),
        ]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
    }

    #[test]
    fn enlargement_zero_when_inside() {
        let mut r = Rect::empty(2);
        r.expand_point(&[0.0, 0.0]);
        r.expand_point(&[1.0, 1.0]);
        assert_eq!(r.enlargement_for_point(&[0.5, 0.5]), 0.0);
        assert!(r.enlargement_for_point(&[1.5, 0.5]) > 0.0);
    }

    #[test]
    fn empty_rect_never_intersects() {
        let e = Rect::empty(2);
        assert!(e.is_empty());
        assert!(!e.intersects(&Rect::unit(2)));
    }
}
