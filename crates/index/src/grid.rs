//! Equi-width grid synopsis over `[0,1]^d`.
//!
//! The ER-grid `G_ER` of §5.2 divides the pivot-converted data space into
//! same-size cells; each cell stores the tuples whose converted points fall
//! into it plus merged aggregates used for pruning. The grid supports the
//! sliding-window maintenance of §5.2: O(1) insert of arriving tuples and
//! O(cell) eviction of expired tuples with aggregate recomputation.
//!
//! This module is generic over the aggregate and payload; the TER-iDS
//! engine instantiates it with the paper's 4-part tuple aggregates.

use std::collections::hash_map;

use ter_text::fxhash::FxHashMap;
use ter_text::Interval;

use crate::rect::Rect;
use crate::Aggregate;

/// Integer coordinates of a grid cell.
pub type CellKey = Box<[u16]>;

/// One stored item: an opaque id, its converted point, and its aggregate.
#[derive(Debug, Clone)]
pub struct GridEntry<P, A> {
    /// Caller-owned identifier (tuple id).
    pub payload: P,
    /// Point in the converted space.
    pub point: Box<[f64]>,
    /// Per-item aggregate.
    pub agg: A,
}

#[derive(Debug, Clone)]
struct Cell<P, A> {
    entries: Vec<GridEntry<P, A>>,
    /// Merge of `entries`' aggregates; `None` only transiently.
    agg: Option<A>,
}

/// The grid synopsis. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Grid<P, A: Aggregate> {
    dim: usize,
    cells_per_dim: u16,
    cells: FxHashMap<CellKey, Cell<P, A>>,
    len: usize,
}

impl<P, A: Aggregate> Grid<P, A> {
    /// Creates a grid with `cells_per_dim` cells along each of `dim` axes
    /// (cell width `1 / cells_per_dim`).
    pub fn new(dim: usize, cells_per_dim: u16) -> Self {
        assert!(dim > 0 && cells_per_dim > 0);
        Self {
            dim,
            cells_per_dim,
            cells: FxHashMap::default(),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Maps a coordinate to its cell index, clamping to the last cell so
    /// that the boundary value `1.0` is representable.
    #[inline]
    fn coord_to_cell(&self, v: f64) -> u16 {
        let clamped = v.clamp(0.0, 1.0);
        let idx = (clamped * self.cells_per_dim as f64) as u16;
        idx.min(self.cells_per_dim - 1)
    }

    /// The cell key of `point`.
    pub fn key_of(&self, point: &[f64]) -> CellKey {
        debug_assert_eq!(point.len(), self.dim);
        point
            .iter()
            .map(|&v| self.coord_to_cell(v))
            .collect::<Vec<_>>()
            .into_boxed_slice()
    }

    /// The spatial extent of cell `key`.
    pub fn cell_rect(&self, key: &[u16]) -> Rect {
        let w = 1.0 / self.cells_per_dim as f64;
        Rect::new(
            key.iter()
                .map(|&k| Interval::new(k as f64 * w, (k as f64 + 1.0) * w))
                .collect(),
        )
    }

    /// Inserts an item (O(1): one merge into the cell aggregate).
    pub fn insert(&mut self, point: Vec<f64>, payload: P, agg: A) {
        assert_eq!(point.len(), self.dim, "point dimensionality mismatch");
        let key = self.key_of(&point);
        let cell = self.cells.entry(key).or_insert_with(|| Cell {
            entries: Vec::new(),
            agg: None,
        });
        match &mut cell.agg {
            None => cell.agg = Some(agg.clone()),
            Some(a) => a.merge(&agg),
        }
        cell.entries.push(GridEntry {
            payload,
            point: point.into_boxed_slice(),
            agg,
        });
        self.len += 1;
    }

    /// Visits cells and their entries with aggregate-based pruning.
    ///
    /// `visit_cell` receives each non-empty cell's rectangle and merged
    /// aggregate; returning `false` skips the cell. Surviving entries are
    /// handed to `on_entry`.
    pub fn traverse<'a>(
        &'a self,
        mut visit_cell: impl FnMut(&Rect, &A) -> bool,
        mut on_entry: impl FnMut(&'a GridEntry<P, A>),
    ) {
        for (key, cell) in &self.cells {
            let agg = match &cell.agg {
                Some(a) => a,
                None => continue,
            };
            if !visit_cell(&self.cell_rect(key), agg) {
                continue;
            }
            for e in &cell.entries {
                on_entry(e);
            }
        }
    }

    /// All entries whose point lies inside `range`.
    pub fn range_query(&self, range: &Rect) -> Vec<&GridEntry<P, A>> {
        let mut out = Vec::new();
        self.traverse(
            |rect, _| range.intersects(rect),
            |e| {
                if range.contains_point(&e.point) {
                    out.push(e);
                }
            },
        );
        out
    }

    /// Iterates over every stored entry.
    pub fn iter(&self) -> impl Iterator<Item = &GridEntry<P, A>> {
        self.cells.values().flat_map(|c| c.entries.iter())
    }

    /// Checks invariants: cell membership of points and the length counter.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut total = 0;
        for (key, cell) in &self.cells {
            if cell.entries.is_empty() {
                return Err("empty cell retained".into());
            }
            for e in &cell.entries {
                if self.key_of(&e.point) != *key {
                    return Err(format!("entry in wrong cell {key:?}"));
                }
            }
            total += cell.entries.len();
        }
        if total != self.len {
            return Err(format!("len {} but counted {}", self.len, total));
        }
        Ok(())
    }
}

impl<P: PartialEq, A: Aggregate> Grid<P, A> {
    /// Evicts the item with the given payload located at `point`
    /// (the sliding-window expiry of §5.2). Recomputes the cell aggregate
    /// from the survivors and drops the cell if it became empty.
    ///
    /// Returns `true` if an item was removed.
    pub fn evict(&mut self, point: &[f64], payload: &P) -> bool {
        let key = self.key_of(point);
        let hash_map::Entry::Occupied(mut occ) = self.cells.entry(key) else {
            return false;
        };
        let cell = occ.get_mut();
        let Some(pos) = cell.entries.iter().position(|e| &e.payload == payload) else {
            return false;
        };
        cell.entries.swap_remove(pos);
        self.len -= 1;
        if cell.entries.is_empty() {
            occ.remove();
        } else {
            // Exact aggregate recomputation ("update the aggregate
            // information of cells", Algorithm 2 lines 6–7).
            let mut agg = cell.entries[0].agg.clone();
            for e in &cell.entries[1..] {
                agg.merge(&e.agg);
            }
            cell.agg = Some(agg);
        }
        true
    }
}

/// A grid storing *regions* (rectangles) instead of points.
///
/// §5.2: "we insert the converted data point of r into cells c such that the
/// imputed tuples r^p of r fall into cells c" — an imputed tuple's possible
/// main-pivot distances form an interval per attribute, so the tuple
/// occupies a rectangle and is registered in every intersecting cell. The
/// ER-grid `G_ER` is an instance of this structure.
///
/// Entries duplicated across cells share a payload id; range queries return
/// duplicates, which callers deduplicate (the engine keys candidates by
/// tuple id).
#[derive(Debug, Clone)]
pub struct RegionGrid<P, A: Aggregate> {
    inner: Grid<P, A>,
}

impl<P: Clone + PartialEq, A: Aggregate> RegionGrid<P, A> {
    /// Creates a region grid with `cells_per_dim` cells per axis.
    pub fn new(dim: usize, cells_per_dim: u16) -> Self {
        Self {
            inner: Grid::new(dim, cells_per_dim),
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// Number of stored *regions* is not tracked (entries are duplicated);
    /// this returns the number of cell entries.
    pub fn cell_entry_count(&self) -> usize {
        self.inner.len()
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.inner.occupied_cells()
    }

    /// Cell keys a region intersects.
    fn keys_of_rect(&self, rect: &Rect) -> Vec<CellKey> {
        let d = self.inner.dim;
        let mut lo = Vec::with_capacity(d);
        let mut hi = Vec::with_capacity(d);
        for k in 0..d {
            let iv = rect.dim_interval(k);
            lo.push(self.inner.coord_to_cell(iv.lo));
            hi.push(self.inner.coord_to_cell(iv.hi));
        }
        // Odometer over the cell ranges.
        let mut keys = Vec::new();
        let mut cur = lo.clone();
        loop {
            keys.push(cur.clone().into_boxed_slice());
            let mut dim = 0;
            loop {
                if dim == d {
                    return keys;
                }
                if cur[dim] < hi[dim] {
                    cur[dim] += 1;
                    // Reset lower dims back to their low cell.
                    for (i, c) in cur.iter_mut().enumerate().take(dim) {
                        *c = lo[i];
                    }
                    break;
                }
                dim += 1;
            }
        }
    }

    /// The keys of every cell `rect` intersects — the grid's partitioning
    /// unit, exposed so shard routers can assign cells to shards.
    pub fn cell_keys_of(&self, rect: &Rect) -> Vec<CellKey> {
        self.keys_of_rect(rect)
    }

    /// Registers a region in every cell it intersects.
    pub fn insert(&mut self, rect: Rect, payload: P, agg: A) {
        self.insert_where(rect, payload, agg, |_| true);
    }

    /// Registers a region in every intersecting cell accepted by `owns`.
    ///
    /// This is the sharding primitive: a hash-partitioned ER-grid keeps one
    /// `RegionGrid` per shard and passes each shard's cell-ownership
    /// predicate here, so every cell of the logical grid is materialized by
    /// exactly one shard and the per-cell entry/aggregate history is
    /// identical to the monolithic grid's.
    pub fn insert_where(
        &mut self,
        rect: Rect,
        payload: P,
        agg: A,
        mut owns: impl FnMut(&[u16]) -> bool,
    ) {
        assert_eq!(rect.dim(), self.inner.dim);
        let keys = self.keys_of_rect(&rect).into_iter().filter(|k| owns(k));
        self.insert_at(keys, &rect, payload, agg);
    }

    /// Registers a region in exactly the given cells. `keys` must be a
    /// subset of [`RegionGrid::cell_keys_of`]`(rect)` — callers that fan
    /// one insert out to several shard grids enumerate and route the keys
    /// once instead of once per shard, then hand each shard its owned
    /// subset. Eviction with the same `rect` removes the entries.
    pub fn insert_at(
        &mut self,
        keys: impl IntoIterator<Item = CellKey>,
        rect: &Rect,
        payload: P,
        agg: A,
    ) {
        assert_eq!(rect.dim(), self.inner.dim);
        for key in keys {
            debug_assert_eq!(key.len(), self.inner.dim);
            let cell = self.inner.cells.entry(key).or_insert_with(|| Cell {
                entries: Vec::new(),
                agg: None,
            });
            match &mut cell.agg {
                None => cell.agg = Some(agg.clone()),
                Some(a) => a.merge(&agg),
            }
            // Reuse GridEntry's point slot for the rect's low corner; the
            // rect itself is recoverable from the payload owner. To keep
            // eviction exact we store the rect per entry via the aggregate
            // pairing below.
            cell.entries.push(GridEntry {
                payload: payload.clone(),
                point: rect
                    .dims()
                    .iter()
                    .map(|iv| iv.lo)
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
                agg: agg.clone(),
            });
            self.inner.len += 1;
        }
    }

    /// Removes a region (must pass the same rect used at insert).
    /// Returns `true` if at least one cell entry was removed.
    pub fn evict(&mut self, rect: &Rect, payload: &P) -> bool {
        let mut removed_any = false;
        for key in self.keys_of_rect(rect) {
            let hash_map::Entry::Occupied(mut occ) = self.inner.cells.entry(key) else {
                continue;
            };
            let cell = occ.get_mut();
            if let Some(pos) = cell.entries.iter().position(|e| &e.payload == payload) {
                cell.entries.swap_remove(pos);
                self.inner.len -= 1;
                removed_any = true;
                if cell.entries.is_empty() {
                    occ.remove();
                } else {
                    let mut agg = cell.entries[0].agg.clone();
                    for e in &cell.entries[1..] {
                        agg.merge(&e.agg);
                    }
                    cell.agg = Some(agg);
                }
            }
        }
        removed_any
    }

    /// Visits cells (with aggregate pruning) and their entries. Entries of
    /// regions spanning several visited cells are reported once per cell —
    /// deduplicate by payload.
    pub fn traverse<'a>(
        &'a self,
        visit_cell: impl FnMut(&Rect, &A) -> bool,
        on_entry: impl FnMut(&'a GridEntry<P, A>),
    ) {
        self.inner.traverse(visit_cell, on_entry);
    }

    /// Payloads of regions stored in cells intersecting `range`
    /// (deduplicated via the provided closure-visible ordering — callers
    /// typically collect into a set).
    pub fn candidates_in(&self, range: &Rect) -> Vec<&P> {
        let mut out = Vec::new();
        self.traverse(|rect, _| range.intersects(rect), |e| out.push(&e.payload));
        out
    }

    /// Iterates over non-empty cells as `(cell key, entries)` pairs, in
    /// unspecified order — lets differential tests compare a set of shard
    /// grids cell-by-cell against a monolithic grid.
    pub fn iter_cells(&self) -> impl Iterator<Item = (&CellKey, &[GridEntry<P, A>])> {
        self.inner
            .cells
            .iter()
            .map(|(k, c)| (k, c.entries.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Count(usize);
    impl Aggregate for Count {
        fn merge(&mut self, o: &Self) {
            self.0 += o.0;
        }
    }

    #[test]
    fn insert_and_len() {
        let mut g: Grid<u32, Count> = Grid::new(2, 10);
        g.insert(vec![0.15, 0.95], 1, Count(1));
        g.insert(vec![0.18, 0.99], 2, Count(1));
        g.insert(vec![0.85, 0.05], 3, Count(1));
        assert_eq!(g.len(), 3);
        assert_eq!(g.occupied_cells(), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn boundary_one_maps_to_last_cell() {
        let g: Grid<u32, Count> = Grid::new(1, 4);
        assert_eq!(g.key_of(&[1.0]).as_ref(), &[3]);
        assert_eq!(g.key_of(&[0.0]).as_ref(), &[0]);
        assert_eq!(g.key_of(&[0.999]).as_ref(), &[3]);
        // Out-of-range values clamp instead of panicking.
        assert_eq!(g.key_of(&[1.5]).as_ref(), &[3]);
        assert_eq!(g.key_of(&[-0.5]).as_ref(), &[0]);
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let mut g: Grid<u32, Count> = Grid::new(2, 8);
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| ((i as f64 * 0.31) % 1.0, (i as f64 * 0.57) % 1.0))
            .collect();
        for (i, &(x, y)) in pts.iter().enumerate() {
            g.insert(vec![x, y], i as u32, Count(1));
        }
        let range = Rect::new(vec![Interval::new(0.2, 0.6), Interval::new(0.1, 0.4)]);
        let mut got: Vec<u32> = g.range_query(&range).iter().map(|e| e.payload).collect();
        let mut expect: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| (0.2..=0.6).contains(&x) && (0.1..=0.4).contains(&y))
            .map(|(i, _)| i as u32)
            .collect();
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn evict_updates_aggregate() {
        let mut g: Grid<u32, Count> = Grid::new(1, 4);
        g.insert(vec![0.1], 1, Count(1));
        g.insert(vec![0.12], 2, Count(1));
        assert!(g.evict(&[0.1], &1));
        assert_eq!(g.len(), 1);
        let mut agg = None;
        g.traverse(
            |_, a| {
                agg = Some(a.clone());
                true
            },
            |_| {},
        );
        assert_eq!(agg, Some(Count(1)));
    }

    #[test]
    fn evict_last_entry_removes_cell() {
        let mut g: Grid<u32, Count> = Grid::new(2, 4);
        g.insert(vec![0.3, 0.3], 7, Count(1));
        assert!(g.evict(&[0.3, 0.3], &7));
        assert_eq!(g.occupied_cells(), 0);
        assert!(g.is_empty());
        g.check_invariants().unwrap();
    }

    #[test]
    fn evict_missing_returns_false() {
        let mut g: Grid<u32, Count> = Grid::new(1, 4);
        g.insert(vec![0.5], 1, Count(1));
        assert!(!g.evict(&[0.5], &2));
        assert!(!g.evict(&[0.9], &1)); // wrong cell
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn cell_pruning_skips_entries() {
        let mut g: Grid<u32, Count> = Grid::new(1, 10);
        for i in 0..100u32 {
            g.insert(vec![i as f64 / 100.0], i, Count(1));
        }
        let mut seen = 0;
        let range = Rect::new(vec![Interval::new(0.0, 0.15)]);
        g.traverse(|rect, _| rect.intersects(&range), |_| seen += 1);
        assert!(seen <= 20, "visited {seen} of 100");
    }

    #[test]
    fn region_grid_insert_query_evict() {
        let mut g: RegionGrid<u64, Count> = RegionGrid::new(2, 4);
        let r1 = Rect::new(vec![
            ter_text::Interval::new(0.1, 0.6), // spans cells 0-2
            ter_text::Interval::new(0.1, 0.2), // cell 0
        ]);
        let r2 = Rect::new(vec![
            ter_text::Interval::point(0.9),
            ter_text::Interval::point(0.9),
        ]);
        g.insert(r1.clone(), 1, Count(1));
        g.insert(r2.clone(), 2, Count(1));
        assert_eq!(g.cell_entry_count(), 4); // region 1 in 3 cells + region 2 in 1
        let q = Rect::new(vec![
            ter_text::Interval::new(0.0, 0.3),
            ter_text::Interval::new(0.0, 0.3),
        ]);
        let mut cands: Vec<u64> = g.candidates_in(&q).into_iter().copied().collect();
        cands.sort_unstable();
        cands.dedup();
        assert_eq!(cands, vec![1]);
        assert!(g.evict(&r1, &1));
        assert_eq!(g.cell_entry_count(), 1);
        assert!(!g.evict(&r1, &1));
        assert!(g.evict(&r2, &2));
        assert_eq!(g.occupied_cells(), 0);
    }

    #[test]
    fn region_grid_degenerate_point_region() {
        let mut g: RegionGrid<u64, Count> = RegionGrid::new(3, 5);
        let r = Rect::point(&[0.5, 0.5, 0.5]);
        g.insert(r.clone(), 7, Count(1));
        assert_eq!(g.cell_entry_count(), 1);
        let cands = g.candidates_in(&Rect::unit(3));
        assert_eq!(cands.len(), 1);
    }

    #[test]
    fn region_grid_full_space_region() {
        let mut g: RegionGrid<u64, Count> = RegionGrid::new(2, 3);
        g.insert(Rect::unit(2), 1, Count(1));
        assert_eq!(g.cell_entry_count(), 9);
        // Every cell sees the entry; candidates are duplicated.
        let cands = g.candidates_in(&Rect::unit(2));
        assert_eq!(cands.len(), 9);
        assert!(g.evict(&Rect::unit(2), &1));
        assert_eq!(g.cell_entry_count(), 0);
    }

    #[test]
    fn insert_where_partitions_cells_across_grids() {
        // Two "shards" splitting cells by parity of the first coordinate
        // must together hold exactly the cells of a monolithic grid.
        let r = Rect::new(vec![
            ter_text::Interval::new(0.1, 0.9), // spans cells 0–3 of 4
            ter_text::Interval::new(0.1, 0.2),
        ]);
        let mut mono: RegionGrid<u64, Count> = RegionGrid::new(2, 4);
        mono.insert(r.clone(), 1, Count(1));
        let mut even: RegionGrid<u64, Count> = RegionGrid::new(2, 4);
        let mut odd: RegionGrid<u64, Count> = RegionGrid::new(2, 4);
        even.insert_where(r.clone(), 1, Count(1), |k| k[0] % 2 == 0);
        odd.insert_where(r.clone(), 1, Count(1), |k| k[0] % 2 == 1);
        assert_eq!(
            even.cell_entry_count() + odd.cell_entry_count(),
            mono.cell_entry_count()
        );
        let mut mono_keys: Vec<_> = mono.iter_cells().map(|(k, _)| k.clone()).collect();
        let mut shard_keys: Vec<_> = even
            .iter_cells()
            .chain(odd.iter_cells())
            .map(|(k, _)| k.clone())
            .collect();
        mono_keys.sort();
        shard_keys.sort();
        assert_eq!(mono_keys, shard_keys);
        // Eviction through the plain API no-ops on cells a shard does not
        // own, so both shards can be driven with the full region.
        assert!(even.evict(&r, &1));
        assert!(odd.evict(&r, &1));
        assert_eq!(even.cell_entry_count() + odd.cell_entry_count(), 0);
    }

    #[test]
    fn sliding_window_churn() {
        // Simulates window maintenance: insert w, then evict-oldest/insert.
        let mut g: Grid<u64, Count> = Grid::new(2, 6);
        let point_of = |i: u64| vec![(i as f64 * 0.17) % 1.0, (i as f64 * 0.29) % 1.0];
        let w = 50u64;
        for i in 0..w {
            g.insert(point_of(i), i, Count(1));
        }
        for i in w..200 {
            let old = i - w;
            assert!(g.evict(&point_of(old), &old), "evict {old}");
            g.insert(point_of(i), i, Count(1));
            assert_eq!(g.len(), w as usize);
        }
        g.check_invariants().unwrap();
    }
}
