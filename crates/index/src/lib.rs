//! Index substrate for the TER-iDS reproduction.
//!
//! §5 of the paper builds three structures on top of the same machinery:
//! the CDD-index `I_j` (aR-trees under a lattice of combined rules), the
//! DR-index `I_R` (an aR-tree over pivot-converted repository points), and
//! the ER-grid `G_ER` (a grid synopsis over pivot-converted stream tuples).
//!
//! This crate provides the generic building blocks:
//!
//! * [`Aggregate`] — merge-able node summaries (topic bit vectors, distance
//!   intervals, token-size intervals, …);
//! * [`ArTree`] — an aggregate R-tree ([Lazaridis & Mehrotra, SIGMOD'01],
//!   reference \[20\] of the paper) with STR bulk loading, incremental
//!   insert/delete, and pruning traversal driven by node aggregates;
//! * [`Grid`] — an equi-width grid over `[0,1]^d` with per-cell aggregates
//!   and O(1) insert/evict, the backbone of the ER-grid.
//!
//! The TER-iDS-specific aggregate contents live in the crates that own the
//! semantics (`ter-rules` for the CDD-index, `ter-repo` for the DR-index,
//! `ter-ids` for the ER-grid).

pub mod artree;
pub mod grid;
pub mod rect;

pub use artree::{ArTree, Entry};
pub use grid::{CellKey, Grid, RegionGrid};
pub use rect::Rect;

/// A merge-able aggregate summary.
///
/// Inner aR-tree nodes and grid cells carry the merge of the aggregates of
/// everything beneath them; pruning rules inspect the merged summary to
/// discard whole subtrees/cells (Theorems 4.1–4.3 all operate on such
/// summaries before touching tuples).
pub trait Aggregate: Clone {
    /// Folds `other` into `self`. Must be commutative and associative so
    /// that node summaries are independent of insertion order.
    fn merge(&mut self, other: &Self);
}

/// Unit aggregate for plain R-tree usage (tests, simple indexes).
impl Aggregate for () {
    fn merge(&mut self, _other: &Self) {}
}

#[cfg(test)]
mod proptests;
