//! Property tests: index structures must agree with linear scans and keep
//! their invariants under arbitrary insert/delete interleavings.

use proptest::prelude::*;
use ter_text::Interval;

use crate::artree::{ArTree, Entry};
use crate::grid::Grid;
use crate::rect::Rect;
use crate::Aggregate;

#[derive(Debug, Clone, PartialEq)]
struct Count(usize);
impl Aggregate for Count {
    fn merge(&mut self, o: &Self) {
        self.0 += o.0;
    }
}

fn arb_point(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u32..=100).prop_map(|v| v as f64 / 100.0), dim)
}

fn arb_rect(dim: usize) -> impl Strategy<Value = Rect> {
    proptest::collection::vec(
        ((0u32..=100), (0u32..=100)).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            Interval::new(lo as f64 / 100.0, hi as f64 / 100.0)
        }),
        dim,
    )
    .prop_map(Rect::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// aR-tree range query ≡ linear scan, after inserts only.
    #[test]
    fn artree_range_matches_scan(
        points in proptest::collection::vec(arb_point(2), 0..120),
        range in arb_rect(2),
    ) {
        let mut tree: ArTree<usize, Count> = ArTree::new(2, 5);
        for (i, p) in points.iter().enumerate() {
            tree.insert(p.clone(), i, Count(1));
        }
        tree.check_invariants().unwrap();
        let mut got: Vec<usize> =
            tree.range_query(&range).iter().map(|e| e.payload).collect();
        let mut expect: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| range.contains_point(p))
            .map(|(i, _)| i)
            .collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Bulk load ≡ incremental insert, query-wise.
    #[test]
    fn artree_bulk_equals_incremental(
        points in proptest::collection::vec(arb_point(3), 1..100),
        range in arb_rect(3),
    ) {
        let items: Vec<Entry<usize, ()>> = points
            .iter()
            .enumerate()
            .map(|(i, p)| Entry { point: p.clone().into_boxed_slice(), payload: i, agg: () })
            .collect();
        let bulk = ArTree::bulk_load(3, 5, items);
        bulk.check_invariants().unwrap();
        let mut incr: ArTree<usize, ()> = ArTree::new(3, 5);
        for (i, p) in points.iter().enumerate() {
            incr.insert(p.clone(), i, ());
        }
        let mut a: Vec<usize> = bulk.range_query(&range).iter().map(|e| e.payload).collect();
        let mut b: Vec<usize> = incr.range_query(&range).iter().map(|e| e.payload).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Insert/delete interleavings keep invariants, the length counter, the
    /// root aggregate, and query results consistent with a shadow model.
    #[test]
    fn artree_insert_delete_model(
        ops in proptest::collection::vec((arb_point(2), any::<bool>()), 1..80),
        range in arb_rect(2),
    ) {
        let mut tree: ArTree<usize, Count> = ArTree::new(2, 4);
        let mut model: Vec<(Vec<f64>, usize)> = Vec::new();
        let mut next_id = 0usize;
        for (point, is_insert) in ops {
            if is_insert || model.is_empty() {
                tree.insert(point.clone(), next_id, Count(1));
                model.push((point, next_id));
                next_id += 1;
            } else {
                let (p, id) = model.swap_remove(model.len() / 2);
                prop_assert!(tree.delete(&p, &id));
            }
            tree.check_invariants().unwrap();
        }
        prop_assert_eq!(tree.len(), model.len());
        if !model.is_empty() {
            prop_assert_eq!(tree.root_agg(), Some(&Count(model.len())));
        }
        let mut got: Vec<usize> = tree.range_query(&range).iter().map(|e| e.payload).collect();
        let mut expect: Vec<usize> = model
            .iter()
            .filter(|(p, _)| range.contains_point(p))
            .map(|(_, id)| *id)
            .collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Grid range query ≡ linear scan under insert/evict churn.
    #[test]
    fn grid_matches_scan_under_churn(
        ops in proptest::collection::vec((arb_point(2), any::<bool>()), 1..100),
        range in arb_rect(2),
    ) {
        let mut grid: Grid<usize, Count> = Grid::new(2, 7);
        let mut model: Vec<(Vec<f64>, usize)> = Vec::new();
        let mut next_id = 0usize;
        for (point, is_insert) in ops {
            if is_insert || model.is_empty() {
                grid.insert(point.clone(), next_id, Count(1));
                model.push((point, next_id));
                next_id += 1;
            } else {
                let (p, id) = model.remove(0); // FIFO, like window expiry
                prop_assert!(grid.evict(&p, &id));
            }
            grid.check_invariants().unwrap();
        }
        let mut got: Vec<usize> = grid.range_query(&range).iter().map(|e| e.payload).collect();
        let mut expect: Vec<usize> = model
            .iter()
            .filter(|(p, _)| range.contains_point(p))
            .map(|(_, id)| *id)
            .collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Cell aggregates always equal the merge of their entries' aggregates
    /// (checked via total count conservation).
    #[test]
    fn grid_aggregate_conservation(points in proptest::collection::vec(arb_point(1), 1..60)) {
        let mut grid: Grid<usize, Count> = Grid::new(1, 5);
        for (i, p) in points.iter().enumerate() {
            grid.insert(p.clone(), i, Count(1));
        }
        let mut total = 0;
        grid.traverse(|_, agg| { total += agg.0; false }, |_| {});
        prop_assert_eq!(total, points.len());
    }
}
