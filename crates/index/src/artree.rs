//! An aggregate R-tree (aR-tree) over `d`-dimensional points.
//!
//! Reference \[20\] of the paper (Lazaridis & Mehrotra, "Progressive
//! Approximate Aggregate Queries With A Multi-Resolution Tree Structure").
//! Every node carries, besides its MBR, the merge of the [`Aggregate`]s of
//! all data entries beneath it; traversals can prune a whole subtree from
//! its aggregate alone. The DR-index `I_R` and the per-group trees of the
//! CDD-index `I_j` are instances of this structure.
//!
//! Implementation notes: arena-allocated nodes, margin-based
//! choose-subtree, widest-dimension midpoint split, STR bulk loading, and
//! exact aggregate recomputation on the deletion path. Favors simplicity
//! and verifiable correctness (`range_query` is property-tested against a
//! linear scan) over the last constant factor.

use crate::rect::Rect;
use crate::Aggregate;

/// A data entry: a point in `[0,1]^d` (pivot-converted space), an opaque
/// payload (tuple/sample/rule id), and its leaf-level aggregate.
#[derive(Debug, Clone)]
pub struct Entry<P, A> {
    /// Location in the converted metric space.
    pub point: Box<[f64]>,
    /// Caller-owned identifier.
    pub payload: P,
    /// Leaf aggregate (merged into every ancestor's summary).
    pub agg: A,
}

#[derive(Debug, Clone)]
enum NodeKind {
    /// Child node indices.
    Internal(Vec<usize>),
    /// Entry slot indices.
    Leaf(Vec<usize>),
}

#[derive(Debug, Clone)]
struct Node<A> {
    mbr: Rect,
    agg: Option<A>,
    kind: NodeKind,
}

/// The aggregate R-tree. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ArTree<P, A: Aggregate> {
    dim: usize,
    max_fanout: usize,
    nodes: Vec<Node<A>>,
    entries: Vec<Option<Entry<P, A>>>,
    free_entries: Vec<usize>,
    root: usize,
    len: usize,
}

impl<P, A: Aggregate> ArTree<P, A> {
    /// Creates an empty tree over `dim`-dimensional points.
    ///
    /// `max_fanout` bounds both internal fanout and leaf capacity
    /// (minimum 4; the paper does not prescribe one, 16 is the default used
    /// throughout this reproduction).
    pub fn new(dim: usize, max_fanout: usize) -> Self {
        assert!(dim > 0, "zero-dimensional tree");
        let max_fanout = max_fanout.max(4);
        let root = Node {
            mbr: Rect::empty(dim),
            agg: None,
            kind: NodeKind::Leaf(Vec::new()),
        };
        Self {
            dim,
            max_fanout,
            nodes: vec![root],
            entries: Vec::new(),
            free_entries: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    /// Bulk loads with Sort-Tile-Recursive packing; much better node overlap
    /// than repeated inserts for the (static) DR-index.
    pub fn bulk_load(dim: usize, max_fanout: usize, items: Vec<Entry<P, A>>) -> Self {
        let mut tree = Self::new(dim, max_fanout);
        if items.is_empty() {
            return tree;
        }
        tree.len = items.len();
        let mut slots: Vec<usize> = Vec::with_capacity(items.len());
        for e in items {
            assert_eq!(e.point.len(), dim, "entry dimensionality mismatch");
            slots.push(tree.entries.len());
            tree.entries.push(Some(e));
        }
        // Recursively tile the slots into leaves.
        let leaves = tree.str_pack_entries(slots, 0);
        let mut level: Vec<usize> = leaves;
        while level.len() > 1 {
            level = tree.str_pack_nodes(level, 0);
        }
        tree.root = level[0];
        tree
    }

    fn str_pack_entries(&mut self, mut slots: Vec<usize>, axis: usize) -> Vec<usize> {
        if slots.len() <= self.max_fanout {
            let node = self.make_leaf(slots);
            return vec![node];
        }
        let key = |tree: &Self, s: usize| tree.entries[s].as_ref().unwrap().point[axis];
        slots.sort_by(|&a, &b| key(self, a).partial_cmp(&key(self, b)).unwrap());
        let n_groups = slots.len().div_ceil(self.max_fanout);
        // Number of slabs along this axis ≈ n_groups^(1/remaining_dims).
        let remaining = self.dim - axis;
        let slabs = if remaining <= 1 {
            n_groups
        } else {
            (n_groups as f64).powf(1.0 / remaining as f64).ceil() as usize
        }
        .max(1);
        let per_slab = slots.len().div_ceil(slabs);
        let mut out = Vec::new();
        for chunk in slots.chunks(per_slab) {
            let next_axis = (axis + 1) % self.dim;
            if remaining <= 1 {
                out.push(self.make_leaf(chunk.to_vec()));
            } else {
                out.extend(self.str_pack_entries(chunk.to_vec(), next_axis));
            }
        }
        out
    }

    fn str_pack_nodes(&mut self, mut children: Vec<usize>, axis: usize) -> Vec<usize> {
        children.sort_by(|&a, &b| {
            self.nodes[a]
                .mbr
                .center(axis)
                .partial_cmp(&self.nodes[b].mbr.center(axis))
                .unwrap()
        });
        let mut out = Vec::new();
        for chunk in children.chunks(self.max_fanout) {
            out.push(self.make_internal(chunk.to_vec()));
        }
        out
    }

    fn make_leaf(&mut self, slots: Vec<usize>) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            mbr: Rect::empty(self.dim),
            agg: None,
            kind: NodeKind::Leaf(slots),
        });
        self.recompute(id);
        id
    }

    fn make_internal(&mut self, children: Vec<usize>) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            mbr: Rect::empty(self.dim),
            agg: None,
            kind: NodeKind::Internal(children),
        });
        self.recompute(id);
        id
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Root MBR (empty accumulator if the tree is empty).
    pub fn root_mbr(&self) -> &Rect {
        &self.nodes[self.root].mbr
    }

    /// Root aggregate, if any entry exists.
    pub fn root_agg(&self) -> Option<&A> {
        self.nodes[self.root].agg.as_ref()
    }

    /// Recomputes `node`'s MBR and aggregate from its children/entries.
    fn recompute(&mut self, node: usize) {
        let mut mbr = Rect::empty(self.dim);
        let mut agg: Option<A> = None;
        match &self.nodes[node].kind {
            NodeKind::Leaf(slots) => {
                for &s in slots {
                    let e = self.entries[s].as_ref().unwrap();
                    mbr.expand_point(&e.point);
                    match &mut agg {
                        None => agg = Some(e.agg.clone()),
                        Some(a) => a.merge(&e.agg),
                    }
                }
            }
            NodeKind::Internal(children) => {
                // Clone the child list to appease the borrow checker; fanout
                // is small so this is cheap.
                for c in children.clone() {
                    let (cm, ca) = (self.nodes[c].mbr.clone(), self.nodes[c].agg.clone());
                    mbr.expand_rect(&cm);
                    if let Some(ca) = ca {
                        match &mut agg {
                            None => agg = Some(ca),
                            Some(a) => a.merge(&ca),
                        }
                    }
                }
            }
        }
        self.nodes[node].mbr = mbr;
        self.nodes[node].agg = agg;
    }

    /// Inserts an entry.
    pub fn insert(&mut self, point: Vec<f64>, payload: P, agg: A) {
        assert_eq!(point.len(), self.dim, "point dimensionality mismatch");
        let slot = match self.free_entries.pop() {
            Some(s) => {
                self.entries[s] = Some(Entry {
                    point: point.into_boxed_slice(),
                    payload,
                    agg,
                });
                s
            }
            None => {
                self.entries.push(Some(Entry {
                    point: point.into_boxed_slice(),
                    payload,
                    agg,
                }));
                self.entries.len() - 1
            }
        };
        self.len += 1;
        if let Some(sibling) = self.insert_rec(self.root, slot) {
            // Root split: grow the tree by one level.
            let old_root = self.root;
            self.root = self.make_internal(vec![old_root, sibling]);
        }
    }

    /// Recursive insert; returns a new sibling node index if `node` split.
    fn insert_rec(&mut self, node: usize, slot: usize) -> Option<usize> {
        let split = match &self.nodes[node].kind {
            NodeKind::Leaf(_) => {
                if let NodeKind::Leaf(slots) = &mut self.nodes[node].kind {
                    slots.push(slot);
                }
                self.recompute(node);
                self.maybe_split(node)
            }
            NodeKind::Internal(children) => {
                let point = self.entries[slot].as_ref().unwrap().point.clone();
                // Least margin enlargement; ties → smaller margin.
                let mut best = children[0];
                let mut best_key = (f64::INFINITY, f64::INFINITY);
                for &c in children {
                    let enl = self.nodes[c].mbr.enlargement_for_point(&point);
                    let key = (enl, self.nodes[c].mbr.margin());
                    if key < best_key {
                        best_key = key;
                        best = c;
                    }
                }
                let child_split = self.insert_rec(best, slot);
                if let Some(new_child) = child_split {
                    if let NodeKind::Internal(children) = &mut self.nodes[node].kind {
                        children.push(new_child);
                    }
                }
                self.recompute(node);
                self.maybe_split(node)
            }
        };
        split
    }

    /// Splits `node` if it exceeds `max_fanout`; returns the new sibling.
    fn maybe_split(&mut self, node: usize) -> Option<usize> {
        let count = match &self.nodes[node].kind {
            NodeKind::Leaf(s) => s.len(),
            NodeKind::Internal(c) => c.len(),
        };
        if count <= self.max_fanout {
            return None;
        }
        // Pick the dimension with widest spread of centers, sort, cut in half.
        let sibling = match self.nodes[node].kind.clone() {
            NodeKind::Leaf(mut slots) => {
                let axis = self.widest_axis_entries(&slots);
                slots.sort_by(|&a, &b| {
                    let pa = self.entries[a].as_ref().unwrap().point[axis];
                    let pb = self.entries[b].as_ref().unwrap().point[axis];
                    pa.partial_cmp(&pb).unwrap()
                });
                let right = slots.split_off(slots.len() / 2);
                self.nodes[node].kind = NodeKind::Leaf(slots);
                self.recompute(node);
                self.make_leaf(right)
            }
            NodeKind::Internal(mut children) => {
                let axis = self.widest_axis_nodes(&children);
                children.sort_by(|&a, &b| {
                    self.nodes[a]
                        .mbr
                        .center(axis)
                        .partial_cmp(&self.nodes[b].mbr.center(axis))
                        .unwrap()
                });
                let right = children.split_off(children.len() / 2);
                self.nodes[node].kind = NodeKind::Internal(children);
                self.recompute(node);
                self.make_internal(right)
            }
        };
        Some(sibling)
    }

    fn widest_axis_entries(&self, slots: &[usize]) -> usize {
        let mut mbr = Rect::empty(self.dim);
        for &s in slots {
            mbr.expand_point(&self.entries[s].as_ref().unwrap().point);
        }
        Self::widest_axis(&mbr)
    }

    fn widest_axis_nodes(&self, children: &[usize]) -> usize {
        let mut mbr = Rect::empty(self.dim);
        for &c in children {
            mbr.expand_rect(&self.nodes[c].mbr);
        }
        Self::widest_axis(&mbr)
    }

    fn widest_axis(mbr: &Rect) -> usize {
        let mut best = 0;
        let mut best_w = -1.0;
        for k in 0..mbr.dim() {
            let w = mbr.dim_interval(k).width();
            if w > best_w {
                best_w = w;
                best = k;
            }
        }
        best
    }

    /// Pruning traversal.
    ///
    /// `visit` is called with each node's MBR and aggregate; returning
    /// `false` prunes the subtree. Entries of non-pruned leaves are handed
    /// to `on_entry`. This is the primitive the 3-way index join of §5.3 is
    /// built from.
    pub fn traverse<'a>(
        &'a self,
        mut visit: impl FnMut(&Rect, &A) -> bool,
        mut on_entry: impl FnMut(&'a Entry<P, A>),
    ) {
        if self.is_empty() {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            let agg = match &node.agg {
                Some(a) => a,
                None => continue, // empty node
            };
            if !visit(&node.mbr, agg) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(slots) => {
                    for &s in slots {
                        on_entry(self.entries[s].as_ref().unwrap());
                    }
                }
                NodeKind::Internal(children) => stack.extend_from_slice(children),
            }
        }
    }

    /// All entries whose point lies inside `range` (order unspecified).
    pub fn range_query(&self, range: &Rect) -> Vec<&Entry<P, A>> {
        let mut out = Vec::new();
        self.traverse(
            |mbr, _| range.intersects(mbr),
            |e| {
                if range.contains_point(&e.point) {
                    out.push(e);
                }
            },
        );
        out
    }

    /// Iterates over all live entries.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<P, A>> {
        self.entries.iter().filter_map(|e| e.as_ref())
    }

    /// Tree depth (1 = a single leaf root). Exposed for tests/inspection.
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut n = self.root;
        loop {
            match &self.nodes[n].kind {
                NodeKind::Leaf(_) => return d,
                NodeKind::Internal(c) => {
                    n = c[0];
                    d += 1;
                }
            }
        }
    }

    /// Checks the structural invariants (MBR containment, counts, fanout).
    /// Used by tests; cheap enough to call after every mutation in proptests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let counted = self.check_node(self.root, None)?;
        if counted != self.len {
            return Err(format!("len {} but counted {}", self.len, counted));
        }
        Ok(())
    }

    fn check_node(&self, node: usize, parent_mbr: Option<&Rect>) -> Result<usize, String> {
        let n = &self.nodes[node];
        if let Some(pm) = parent_mbr {
            if !n.mbr.is_empty() && !pm.contains_rect(&n.mbr) {
                return Err(format!("node {node} MBR escapes parent"));
            }
        }
        match &n.kind {
            NodeKind::Leaf(slots) => {
                if slots.len() > self.max_fanout {
                    return Err(format!("leaf {node} over fanout: {}", slots.len()));
                }
                for &s in slots {
                    let e = self
                        .entries
                        .get(s)
                        .and_then(|e| e.as_ref())
                        .ok_or_else(|| format!("leaf {node} references dead slot {s}"))?;
                    if !n.mbr.contains_point(&e.point) {
                        return Err(format!("entry {s} outside leaf {node} MBR"));
                    }
                }
                Ok(slots.len())
            }
            NodeKind::Internal(children) => {
                if children.is_empty() {
                    return Err(format!("internal node {node} has no children"));
                }
                if children.len() > self.max_fanout {
                    return Err(format!("internal {node} over fanout: {}", children.len()));
                }
                let mut total = 0;
                for &c in children {
                    total += self.check_node(c, Some(&n.mbr))?;
                }
                Ok(total)
            }
        }
    }
}

impl<P: PartialEq, A: Aggregate> ArTree<P, A> {
    /// Deletes the entry with the given payload located at `point`.
    ///
    /// Returns `true` if an entry was removed. Underflowing leaves are kept
    /// (they stay correct; this reproduction favours simplicity — the only
    /// deleting index, the dynamic-repository extension of §5.5, removes a
    /// small fraction of entries).
    pub fn delete(&mut self, point: &[f64], payload: &P) -> bool {
        assert_eq!(point.len(), self.dim);
        let removed = self.delete_rec(self.root, point, payload);
        if removed {
            self.len -= 1;
            // Collapse a root with a single internal child to keep depth tight.
            while let NodeKind::Internal(children) = &self.nodes[self.root].kind {
                if children.len() == 1 {
                    self.root = children[0];
                } else {
                    break;
                }
            }
        }
        removed
    }

    fn delete_rec(&mut self, node: usize, point: &[f64], payload: &P) -> bool {
        if !self.nodes[node].mbr.contains_point(point) {
            return false;
        }
        match self.nodes[node].kind.clone() {
            NodeKind::Leaf(slots) => {
                for (i, &s) in slots.iter().enumerate() {
                    let e = self.entries[s].as_ref().unwrap();
                    if e.point.as_ref() == point && &e.payload == payload {
                        if let NodeKind::Leaf(slots) = &mut self.nodes[node].kind {
                            slots.swap_remove(i);
                        }
                        self.entries[s] = None;
                        self.free_entries.push(s);
                        self.recompute(node);
                        return true;
                    }
                }
                false
            }
            NodeKind::Internal(children) => {
                for (i, &c) in children.iter().enumerate() {
                    if self.delete_rec(c, point, payload) {
                        // Drop children that became empty.
                        let child_empty = match &self.nodes[c].kind {
                            NodeKind::Leaf(s) => s.is_empty(),
                            NodeKind::Internal(cs) => cs.is_empty(),
                        };
                        if child_empty {
                            if let NodeKind::Internal(children) = &mut self.nodes[node].kind {
                                children.swap_remove(i);
                            }
                        }
                        self.recompute(node);
                        return true;
                    }
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_text::Interval;

    /// Sum aggregate for testing aggregate maintenance.
    #[derive(Debug, Clone, PartialEq)]
    struct Sum(f64);
    impl Aggregate for Sum {
        fn merge(&mut self, other: &Self) {
            self.0 += other.0;
        }
    }

    fn rect2(a: (f64, f64), b: (f64, f64)) -> Rect {
        Rect::new(vec![Interval::new(a.0, a.1), Interval::new(b.0, b.1)])
    }

    #[test]
    fn empty_tree_queries() {
        let t: ArTree<u32, ()> = ArTree::new(2, 8);
        assert!(t.is_empty());
        assert!(t.range_query(&Rect::unit(2)).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_range_query() {
        let mut t: ArTree<u32, ()> = ArTree::new(2, 4);
        for i in 0..100u32 {
            let x = (i % 10) as f64 / 10.0;
            let y = (i / 10) as f64 / 10.0;
            t.insert(vec![x, y], i, ());
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 100);
        assert!(t.depth() > 1);
        let hits = t.range_query(&rect2((0.0, 0.25), (0.0, 0.25)));
        // x,y ∈ {0.0, 0.1, 0.2} → 9 points
        assert_eq!(hits.len(), 9);
    }

    #[test]
    fn aggregates_accumulate_on_insert() {
        let mut t: ArTree<u32, Sum> = ArTree::new(1, 4);
        for i in 0..20u32 {
            t.insert(vec![i as f64 / 20.0], i, Sum(1.0));
        }
        assert_eq!(t.root_agg(), Some(&Sum(20.0)));
    }

    #[test]
    fn traversal_prunes_subtrees() {
        let mut t: ArTree<u32, Sum> = ArTree::new(1, 4);
        for i in 0..64u32 {
            t.insert(vec![i as f64 / 64.0], i, Sum(1.0));
        }
        let mut visited_entries = 0;
        let range = Interval::new(0.0, 0.1);
        t.traverse(
            |mbr, _agg| mbr.dim_interval(0).intersects(&range),
            |_| visited_entries += 1,
        );
        // Should visit far fewer than all 64 entries.
        assert!(visited_entries < 32, "visited {visited_entries}");
        assert!(visited_entries >= 7); // 0/64 ..= 6/64 are within range
    }

    #[test]
    fn delete_removes_and_updates_aggregate() {
        let mut t: ArTree<u32, Sum> = ArTree::new(1, 4);
        for i in 0..10u32 {
            t.insert(vec![i as f64 / 10.0], i, Sum(1.0));
        }
        assert!(t.delete(&[0.3], &3));
        assert!(!t.delete(&[0.3], &3)); // already gone
        assert_eq!(t.len(), 9);
        assert_eq!(t.root_agg(), Some(&Sum(9.0)));
        t.check_invariants().unwrap();
        let hits = t.range_query(&Rect::new(vec![Interval::new(0.29, 0.31)]));
        assert!(hits.is_empty());
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let mut t: ArTree<u32, Sum> = ArTree::new(2, 4);
        let pts: Vec<(f64, f64)> = (0..30)
            .map(|i| (i as f64 / 30.0, 1.0 - i as f64 / 30.0))
            .collect();
        for (i, &(x, y)) in pts.iter().enumerate() {
            t.insert(vec![x, y], i as u32, Sum(1.0));
        }
        for (i, &(x, y)) in pts.iter().enumerate() {
            assert!(t.delete(&[x, y], &(i as u32)), "delete {i}");
            t.check_invariants().unwrap();
        }
        assert!(t.is_empty());
        t.insert(vec![0.5, 0.5], 99, Sum(1.0));
        assert_eq!(t.range_query(&Rect::unit(2)).len(), 1);
    }

    #[test]
    fn bulk_load_matches_linear_scan() {
        let items: Vec<Entry<u32, ()>> = (0..200u32)
            .map(|i| Entry {
                point: vec![(i as f64 * 0.37) % 1.0, (i as f64 * 0.73) % 1.0].into_boxed_slice(),
                payload: i,
                agg: (),
            })
            .collect();
        let expect: Vec<u32> = items
            .iter()
            .filter(|e| e.point[0] <= 0.5 && e.point[1] <= 0.5)
            .map(|e| e.payload)
            .collect();
        let t = ArTree::bulk_load(2, 8, items);
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 200);
        let mut got: Vec<u32> = t
            .range_query(&rect2((0.0, 0.5), (0.0, 0.5)))
            .iter()
            .map(|e| e.payload)
            .collect();
        let mut expect = expect;
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn bulk_load_aggregate_sum() {
        let items: Vec<Entry<u32, Sum>> = (0..57u32)
            .map(|i| Entry {
                point: vec![i as f64 / 57.0].into_boxed_slice(),
                payload: i,
                agg: Sum(2.0),
            })
            .collect();
        let t = ArTree::bulk_load(1, 6, items);
        assert_eq!(t.root_agg(), Some(&Sum(114.0)));
    }

    #[test]
    fn duplicate_points_coexist() {
        let mut t: ArTree<u32, ()> = ArTree::new(1, 4);
        for i in 0..8u32 {
            t.insert(vec![0.5], i, ());
        }
        assert_eq!(
            t.range_query(&Rect::new(vec![Interval::point(0.5)])).len(),
            8
        );
        assert!(t.delete(&[0.5], &5));
        assert_eq!(t.len(), 7);
    }
}
