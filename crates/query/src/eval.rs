//! Pattern evaluation: selections, joins, and projections as composable
//! streaming iterators over a [`QueryView`].
//!
//! Evaluation threads partial bindings (`Vec<Option<u64>>`, one slot per
//! pattern variable) through the planned atom order. Each atom is a
//! `flat_map` stage: a fully-bound atom degenerates to a membership
//! probe, a half-bound `match` walks the result set's adjacency row, and
//! an unbound atom scans its relation. Predicates are applied the moment
//! their variable binds, so a selective predicate prunes the stream at
//! the earliest possible stage. An empty intermediate terminates the
//! whole pipeline for free — `flat_map` over nothing is nothing.

use crate::pattern::{Atom, Pattern, Pred, VarId};
use crate::plan::{plan, PlanStats};
use ter_ids::{ErProcessor, ResultSet, TupleMeta};

/// Read access to the live engine state a query runs against. Both the
/// sequential and the sharded engine implement this, which is what lets
/// every differential suite run the same pattern against both sides.
pub trait QueryView {
    /// Ids of the unexpired tuples, ascending.
    fn live_ids(&self) -> Vec<u64>;
    /// Metadata of a live tuple (`None` once expired).
    fn meta_of(&self, id: u64) -> Option<&TupleMeta>;
    /// The live result-pair set.
    fn result_set(&self) -> &ResultSet;
    /// Planner counters snapshot.
    fn plan_stats(&self) -> PlanStats;
}

impl QueryView for ter_ids::TerIdsEngine<'_> {
    fn live_ids(&self) -> Vec<u64> {
        self.live_ids()
    }

    fn meta_of(&self, id: u64) -> Option<&TupleMeta> {
        self.meta(id)
    }

    fn result_set(&self) -> &ResultSet {
        self.results()
    }

    fn plan_stats(&self) -> PlanStats {
        let cells = self.cell_entry_counts();
        PlanStats {
            live: self.window_len(),
            pairs: self.results().len(),
            stream_counts: self.stream_tuple_counts().to_vec(),
            topical: self.topical_count(),
            occupied_cells: cells.len(),
            max_cell_entries: cells.iter().copied().max().unwrap_or(0),
            prune: self.prune_stats(),
        }
    }
}

impl QueryView for ter_exec::ShardedTerIdsEngine<'_> {
    fn live_ids(&self) -> Vec<u64> {
        self.live_ids()
    }

    fn meta_of(&self, id: u64) -> Option<&TupleMeta> {
        self.meta(id)
    }

    fn result_set(&self) -> &ResultSet {
        self.results()
    }

    fn plan_stats(&self) -> PlanStats {
        let cells = self.cell_entry_counts();
        PlanStats {
            live: self.window_len(),
            pairs: self.results().len(),
            stream_counts: self.stream_tuple_counts().to_vec(),
            topical: self.topical_count(),
            occupied_cells: cells.len(),
            max_cell_entries: cells.iter().copied().max().unwrap_or(0),
            prune: self.prune_stats(),
        }
    }
}

/// Whether binding `v := id` satisfies every predicate on `v` (and `id`
/// is live at all).
pub(crate) fn var_ok<V: QueryView + ?Sized>(
    pattern: &Pattern,
    view: &V,
    v: VarId,
    id: u64,
) -> bool {
    let Some(meta) = view.meta_of(id) else {
        return false;
    };
    pattern.preds.iter().all(|p| {
        p.var() != v
            || match *p {
                Pred::Stream(_, s) => meta.stream_id == s,
                Pred::Topical(_) => meta.possibly_topical,
                Pred::TsGe(_, t) => meta.timestamp >= t,
                Pred::TsLe(_, t) => meta.timestamp <= t,
                Pred::IdEq(_, i) => id == i,
            }
    })
}

fn bind(b: &[Option<u64>], v: VarId, id: u64) -> Vec<Option<u64>> {
    let mut nb = b.to_vec();
    nb[v] = Some(id);
    nb
}

/// One pipeline stage: all extensions of `b` satisfying `atom`.
/// Invariant: already-bound variables passed every predicate when they
/// were bound, so only structural membership is re-checked for them.
fn extend<V: QueryView + ?Sized>(
    pattern: &Pattern,
    view: &V,
    b: &[Option<u64>],
    atom: Atom,
) -> Vec<Vec<Option<u64>>> {
    match atom {
        Atom::Live(v) => match b[v] {
            Some(id) => {
                if view.meta_of(id).is_some() {
                    vec![b.to_vec()]
                } else {
                    Vec::new()
                }
            }
            None => view
                .live_ids()
                .into_iter()
                .filter(|&id| var_ok(pattern, view, v, id))
                .map(|id| bind(b, v, id))
                .collect(),
        },
        Atom::Match(x, y) => match (b[x], b[y]) {
            (Some(a), Some(c)) => {
                if view.result_set().contains(a, c) {
                    vec![b.to_vec()]
                } else {
                    Vec::new()
                }
            }
            (Some(a), None) => view
                .result_set()
                .partners(a)
                .filter(|&c| var_ok(pattern, view, y, c))
                .map(|c| bind(b, y, c))
                .collect(),
            (None, Some(c)) => view
                .result_set()
                .partners(c)
                .filter(|&a| var_ok(pattern, view, x, a))
                .map(|a| bind(b, x, a))
                .collect(),
            (None, None) => view
                .result_set()
                .iter()
                .flat_map(|(lo, hi)| [(lo, hi), (hi, lo)])
                .filter(|&(a, c)| var_ok(pattern, view, x, a) && var_ok(pattern, view, y, c))
                .map(|(a, c)| {
                    let mut nb = b.to_vec();
                    nb[x] = Some(a);
                    nb[y] = Some(c);
                    nb
                })
                .collect(),
        },
    }
}

/// Runs the atoms in `order` as a streaming iterator pipeline from the
/// given seed binding, returning every fully-ground variable assignment.
/// Seed bindings must already satisfy their variables' predicates.
pub(crate) fn eval_from<V: QueryView + ?Sized>(
    pattern: &Pattern,
    order: &[usize],
    view: &V,
    seed: Vec<Option<u64>>,
) -> Vec<Vec<u64>> {
    let mut it: Box<dyn Iterator<Item = Vec<Option<u64>>> + '_> = Box::new(std::iter::once(seed));
    for &ai in order {
        let atom = pattern.atoms[ai];
        it = Box::new(it.flat_map(move |b| extend(pattern, view, &b, atom)));
    }
    it.map(|b| {
        b.into_iter()
            .map(|v| v.expect("every variable appears in an atom"))
            .collect()
    })
    .collect()
}

/// Every fully-ground assignment of the pattern's variables against the
/// view (planned order, no projection applied).
pub(crate) fn full_bindings<V: QueryView + ?Sized>(pattern: &Pattern, view: &V) -> Vec<Vec<u64>> {
    let plan = plan(pattern, &view.plan_stats());
    if plan.empty {
        return Vec::new();
    }
    eval_from(pattern, &plan.order, view, vec![None; pattern.vars.len()])
}

/// Projects one full binding onto the pattern's output columns.
pub(crate) fn project_one(pattern: &Pattern, b: &[u64]) -> Vec<u64> {
    pattern.projection.iter().map(|&v| b[v]).collect()
}

/// One-shot evaluation: the projected result rows, sorted and deduped —
/// the canonical form every oracle compares bit-for-bit.
pub fn evaluate<V: QueryView + ?Sized>(pattern: &Pattern, view: &V) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = full_bindings(pattern, view)
        .iter()
        .map(|b| project_one(pattern, b))
        .collect();
    rows.sort_unstable();
    rows.dedup();
    rows
}

/// What [`evaluate_traced`] observed: the greedy plan plus the number of
/// partial bindings alive after each planned atom — a poor-man's EXPLAIN
/// for the join order. `atom_rows[k]` is the intermediate cardinality
/// after executing `order[k]`; a spike there is the atom the planner
/// should have ordered later.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalTrace {
    /// Atom indices in execution order (the plan).
    pub order: Vec<usize>,
    /// The planner's cost estimate for each atom at selection time,
    /// parallel to `order`.
    pub costs: Vec<f64>,
    /// Partial bindings alive after each atom, parallel to `order`.
    pub atom_rows: Vec<u64>,
    /// Final projected/sorted/deduped row count.
    pub rows: u64,
}

/// [`evaluate`] with per-atom cardinality tracing. Returns exactly the
/// same rows (per-stage materialization instead of one fused iterator —
/// the atom order, the work done, and the output are identical), plus
/// the trace the observability layer turns into `query_atom` flight
/// events.
pub fn evaluate_traced<V: QueryView + ?Sized>(
    pattern: &Pattern,
    view: &V,
) -> (Vec<Vec<u64>>, EvalTrace) {
    let plan = plan(pattern, &view.plan_stats());
    let mut trace = EvalTrace {
        order: plan.order.clone(),
        costs: plan.costs.clone(),
        atom_rows: Vec::with_capacity(plan.order.len()),
        rows: 0,
    };
    if plan.empty {
        trace.atom_rows = vec![0; plan.order.len()];
        return (Vec::new(), trace);
    }
    let mut frontier: Vec<Vec<Option<u64>>> = vec![vec![None; pattern.vars.len()]];
    for &ai in &plan.order {
        let atom = pattern.atoms[ai];
        frontier = frontier
            .iter()
            .flat_map(|b| extend(pattern, view, b, atom))
            .collect();
        trace.atom_rows.push(frontier.len() as u64);
    }
    let mut rows: Vec<Vec<u64>> = frontier
        .iter()
        .map(|b| {
            let full: Vec<u64> = b
                .iter()
                .map(|v| v.expect("every variable appears in an atom"))
                .collect();
            project_one(pattern, &full)
        })
        .collect();
    rows.sort_unstable();
    rows.dedup();
    trace.rows = rows.len() as u64;
    (rows, trace)
}
