//! Statistics-free greedy join ordering.
//!
//! There are no histograms to maintain: every input the cost model needs
//! is a counter the engine already keeps for its own pruning — live
//! tuple count, live pair count, per-stream counts, the topical-id set
//! size, grid cell occupancy, and the cumulative [`PruneStats`]. The
//! planner repeatedly picks the cheapest not-yet-placed atom given the
//! variables bound so far (classic greedy selectivity ordering), and
//! recognises guaranteed-empty queries up front so evaluation can
//! terminate before touching any state.

use crate::pattern::{Atom, Pattern, Pred, VarId};
use ter_ids::PruneStats;

/// The engine-maintained counters the planner reads. Snapshot these from
/// a [`crate::QueryView`] right before planning — they describe the live
/// state the query will run against.
#[derive(Debug, Clone, Default)]
pub struct PlanStats {
    /// Live (unexpired) tuples.
    pub live: usize,
    /// Live result pairs.
    pub pairs: usize,
    /// Live tuples per stream id.
    pub stream_counts: Vec<usize>,
    /// Live tuples flagged possibly-topical.
    pub topical: usize,
    /// Occupied ER-grid cells.
    pub occupied_cells: usize,
    /// Entries in the fullest occupied grid cell.
    pub max_cell_entries: usize,
    /// Cumulative pruning counters (the refine cascade's history).
    pub prune: PruneStats,
}

impl PlanStats {
    /// Historical fraction of candidate pairs that survived the refine
    /// cascade as matches — a density prior for unbound pair scans.
    pub fn match_survival(&self) -> f64 {
        self.prune.matches as f64 / self.prune.total_pairs.max(1) as f64
    }

    /// Mean entries per occupied grid cell (diagnostics / `explain`).
    pub fn cell_density(&self) -> f64 {
        self.live as f64 / self.occupied_cells.max(1) as f64
    }
}

/// A join order plus the up-front emptiness verdict.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Atom indexes into [`Pattern::atoms`], evaluation order.
    pub order: Vec<usize>,
    /// True when the stats alone prove the result empty (no live pairs
    /// but the pattern has a `match` atom; or no live tuples at all):
    /// evaluation short-circuits without scanning anything.
    pub empty: bool,
    /// The cost estimate under which each atom in `order` was picked
    /// (same indexing as `order`; for tests and `explain`).
    pub costs: Vec<f64>,
}

/// Combined selectivity factor of the predicates on `v`: the estimated
/// fraction of live tuples a candidate binding of `v` survives.
fn pred_factor(pattern: &Pattern, stats: &PlanStats, v: VarId) -> f64 {
    let live = stats.live.max(1) as f64;
    let mut f = 1.0;
    for p in &pattern.preds {
        if p.var() != v {
            continue;
        }
        f *= match *p {
            Pred::IdEq(..) => 1.0 / live,
            Pred::Stream(_, s) => stats.stream_counts.get(s).copied().unwrap_or(0) as f64 / live,
            Pred::Topical(_) => stats.topical as f64 / live,
            // No order statistics on timestamps are kept; a half is the
            // classic guess for a one-sided range.
            Pred::TsGe(..) | Pred::TsLe(..) => 0.5,
        };
    }
    f
}

/// Estimated cost of evaluating `atom` next, given which variables are
/// already bound.
fn atom_cost(pattern: &Pattern, stats: &PlanStats, atom: Atom, bound: &[bool]) -> f64 {
    let live = stats.live.max(1) as f64;
    let pairs = stats.pairs as f64;
    match atom {
        Atom::Match(a, b) => match (bound[a], bound[b]) {
            // Membership probe.
            (true, true) => 0.5,
            // Adjacency-row walk: average degree, narrowed by the
            // unbound side's predicates.
            (true, false) => (2.0 * pairs / live) * pred_factor(pattern, stats, b),
            (false, true) => (2.0 * pairs / live) * pred_factor(pattern, stats, a),
            // Full pair scan, both orientations. The prune-stats
            // survival ratio is the output-density prior: a stream whose
            // cascade admits many matches makes this scan produce
            // proportionally more rows for downstream atoms to join.
            (false, false) => {
                2.0 * pairs
                    * (1.0 + stats.match_survival())
                    * pred_factor(pattern, stats, a)
                    * pred_factor(pattern, stats, b)
            }
        },
        Atom::Live(v) => {
            if bound[v] {
                0.5
            } else {
                live * pred_factor(pattern, stats, v)
            }
        }
    }
}

/// Greedy join ordering: repeatedly place the cheapest remaining atom
/// (ties broken by source position, so plans are deterministic).
pub fn plan(pattern: &Pattern, stats: &PlanStats) -> Plan {
    let has_match = pattern.atoms.iter().any(|a| matches!(a, Atom::Match(..)));
    let empty = (!pattern.atoms.is_empty() && stats.live == 0) || (has_match && stats.pairs == 0);

    let mut bound = vec![false; pattern.vars.len()];
    let mut remaining: Vec<usize> = (0..pattern.atoms.len()).collect();
    let mut order = Vec::with_capacity(remaining.len());
    let mut costs = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (slot, cost) = remaining
            .iter()
            .enumerate()
            .map(|(slot, &ai)| (slot, atom_cost(pattern, stats, pattern.atoms[ai], &bound)))
            .fold((0, f64::INFINITY), |best, (slot, cost)| {
                if cost < best.1 {
                    (slot, cost)
                } else {
                    best
                }
            });
        let ai = remaining.remove(slot);
        for v in pattern.atoms[ai].vars() {
            bound[v] = true;
        }
        order.push(ai);
        costs.push(cost);
    }
    Plan {
        order,
        empty,
        costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    fn stats() -> PlanStats {
        PlanStats {
            live: 100,
            pairs: 40,
            stream_counts: vec![60, 30, 10],
            topical: 20,
            occupied_cells: 25,
            max_cell_entries: 9,
            prune: PruneStats {
                total_pairs: 1000,
                matches: 50,
                ..PruneStats::default()
            },
        }
    }

    #[test]
    fn id_equality_atom_goes_first() {
        // live(c) with id(c)=7 is a point lookup (cost ~1); the pair scan
        // should wait until c is bound... it shares no variable, but the
        // cheapest atom still leads.
        let p = Pattern::parse("match(a, b), live(c) where id(c) = 7").unwrap();
        let plan = plan(&p, &stats());
        assert_eq!(plan.order[0], 1, "the id-selected live atom leads");
    }

    #[test]
    fn bound_match_becomes_probe() {
        // id(a)=5 makes match(a, b) nearly free (the 1/live factor
        // applies to the scan), after which live(a) is a bound probe;
        // the unconstrained pair scan of match(c, d) goes last.
        let p = Pattern::parse("match(c, d), match(a, b), live(a) where id(a) = 5").unwrap();
        let plan = plan(&p, &stats());
        assert_eq!(plan.order[0], 1, "id-selected match scan first");
        assert_eq!(plan.order[1], 2, "then the bound live probe");
        assert_eq!(plan.order[2], 0, "unconstrained full scan last");
        assert!(plan.costs[1] < plan.costs[2]);
    }

    #[test]
    fn empty_pair_set_short_circuits_match_patterns_only() {
        let s = PlanStats {
            pairs: 0,
            ..stats()
        };
        let with_match = Pattern::parse("match(a, b)").unwrap();
        assert!(plan(&with_match, &s).empty);
        let live_only = Pattern::parse("live(a)").unwrap();
        assert!(!plan(&live_only, &s).empty);
        let nothing_live = PlanStats { live: 0, ..stats() };
        assert!(plan(&live_only, &nothing_live).empty);
    }

    #[test]
    fn narrower_stream_scan_preferred() {
        // stream 2 holds 10 of 100 live tuples; stream 0 holds 60.
        let p = Pattern::parse("live(a), live(b) where stream(a) = 0, stream(b) = 2").unwrap();
        let plan = plan(&p, &stats());
        assert_eq!(plan.order, vec![1, 0]);
        assert!(plan.costs[0] < plan.costs[1]);
    }

    #[test]
    fn plan_orders_are_deterministic_permutations() {
        let p = Pattern::parse("match(a, b), live(b), match(b, c)").unwrap();
        let s = stats();
        let one = plan(&p, &s);
        let two = plan(&p, &s);
        assert_eq!(one.order, two.order);
        let mut sorted = one.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
