//! Standing queries: incremental maintenance of a pattern's result under
//! the engine's window-delta stream.
//!
//! A [`StandingQuery`] stores the full variable bindings of its pattern
//! (not just the projected rows) plus a support count per projected row.
//! Per arrival batch it consumes a [`BatchDelta`] — the union of the
//! batch's [`StepOutput`] match/retraction/expiry lists — and emits the
//! *net* row additions and retractions. The contract, enforced by the
//! differential oracle suites: folding those notifications over the
//! subscription snapshot reproduces a from-scratch [`evaluate`] of the
//! pattern against the post-batch engine state, bit-identically, after
//! every batch.
//!
//! Why delta application against the *post-batch* view is sound: tuple
//! ids are unique and one tuple arrives per timestamp, so within a batch
//! a fact (live tuple or result pair) is added at most once and, once
//! removed, never re-added. A binding invalidated by the batch therefore
//! contains an expired id or a retracted pair (a syntactic scan of the
//! stored bindings finds it), and a binding newly valid after the batch
//! uses at least one added fact — seeding each added pair / arrived id
//! at each atom position and evaluating the remaining atoms against the
//! new view reaches all of them. Facts that died again within the same
//! batch are filtered by re-checking membership in the new view at seed
//! time.

use std::collections::BTreeSet;

use ter_ids::results::norm_pair;
use ter_ids::StepOutput;
use ter_stream::Arrival;
use ter_text::fxhash::{FxHashMap, FxHashSet};

use crate::eval::{eval_from, full_bindings, project_one, var_ok, QueryView};
use crate::pattern::{Atom, Pattern};
use crate::plan::plan;

/// The window delta of one arrival batch, folded over its step outputs.
#[derive(Debug, Clone, Default)]
pub struct BatchDelta {
    /// Ids that arrived this batch, in arrival order.
    pub arrived: Vec<u64>,
    /// Ids the window evicted this batch.
    pub expired: Vec<u64>,
    /// Pairs reported this batch (normalized).
    pub added_pairs: Vec<(u64, u64)>,
    /// Pairs retracted by expiry this batch (normalized).
    pub removed_pairs: Vec<(u64, u64)>,
}

impl BatchDelta {
    /// Collects the delta of one batch from its arrivals and outputs.
    pub fn from_steps(batch: &[Arrival], outputs: &[StepOutput]) -> Self {
        assert_eq!(batch.len(), outputs.len(), "one StepOutput per arrival");
        let mut delta = BatchDelta {
            arrived: batch.iter().map(|a| a.record.id).collect(),
            ..BatchDelta::default()
        };
        for o in outputs {
            delta.expired.extend_from_slice(&o.expired);
            delta.added_pairs.extend_from_slice(&o.new_matches);
            delta.removed_pairs.extend_from_slice(&o.retractions);
        }
        delta
    }
}

/// An incrementally-maintained pattern query.
#[derive(Debug, Clone)]
pub struct StandingQuery {
    pattern: Pattern,
    /// Full variable assignments currently satisfying the pattern.
    bindings: BTreeSet<Vec<u64>>,
    /// Projected row → number of supporting full bindings. A row is in
    /// the result while its support is positive.
    support: FxHashMap<Vec<u64>, usize>,
}

impl StandingQuery {
    /// Wraps a parsed pattern; the result starts empty until [`seed`].
    ///
    /// [`seed`]: StandingQuery::seed
    pub fn new(pattern: Pattern) -> Self {
        StandingQuery {
            pattern,
            bindings: BTreeSet::new(),
            support: FxHashMap::default(),
        }
    }

    /// The registered pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// (Re-)evaluates from scratch against `view` and returns the
    /// snapshot rows (sorted, deduped) — the subscription's starting
    /// point.
    pub fn seed<V: QueryView + ?Sized>(&mut self, view: &V) -> Vec<Vec<u64>> {
        self.bindings.clear();
        self.support.clear();
        for b in full_bindings(&self.pattern, view) {
            let row = project_one(&self.pattern, &b);
            if self.bindings.insert(b) {
                *self.support.entry(row).or_insert(0) += 1;
            }
        }
        self.rows()
    }

    /// Current projected result rows, sorted — always equal to a
    /// from-scratch [`crate::evaluate`] against the view the last
    /// seed/apply saw.
    pub fn rows(&self) -> Vec<Vec<u64>> {
        let mut rows: Vec<Vec<u64>> = self.support.keys().cloned().collect();
        rows.sort_unstable();
        rows
    }

    /// Applies one batch's delta against the post-batch `view`; returns
    /// the net `(added, retracted)` projected rows, each sorted. Rows
    /// whose support merely changed without crossing zero emit nothing.
    pub fn apply_batch<V: QueryView + ?Sized>(
        &mut self,
        view: &V,
        delta: &BatchDelta,
    ) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
        // The incremental evaluation is the notify fan-out's compute
        // cost: charge it to the driving batch's causal trace
        // (accumulating across subscribers).
        let t0 = ter_obs::timer();
        let out = self.apply_batch_inner(view, delta);
        if let Some(t0) = t0 {
            ter_obs::trace::add_current_elapsed(
                ter_obs::trace::kind::NOTIFY,
                t0.elapsed().as_micros() as u64,
            );
        }
        out
    }

    fn apply_batch_inner<V: QueryView + ?Sized>(
        &mut self,
        view: &V,
        delta: &BatchDelta,
    ) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
        // Support per touched row *before* this batch, captured lazily.
        let mut before: FxHashMap<Vec<u64>, usize> = FxHashMap::default();

        // ---- retraction phase: drop invalidated bindings ----
        let expired: FxHashSet<u64> = delta.expired.iter().copied().collect();
        let removed: FxHashSet<(u64, u64)> = delta
            .removed_pairs
            .iter()
            .map(|&(a, b)| norm_pair(a, b))
            .collect();
        if !expired.is_empty() || !removed.is_empty() {
            let dead: Vec<Vec<u64>> = self
                .bindings
                .iter()
                .filter(|b| {
                    b.iter().any(|id| expired.contains(id))
                        || self.pattern.atoms.iter().any(|a| match *a {
                            Atom::Match(x, y) => removed.contains(&norm_pair(b[x], b[y])),
                            Atom::Live(_) => false,
                        })
                })
                .cloned()
                .collect();
            for b in dead {
                self.bindings.remove(&b);
                let row = project_one(&self.pattern, &b);
                let sup = self
                    .support
                    .get_mut(&row)
                    .expect("stored binding has a supported row");
                before.entry(row.clone()).or_insert(*sup);
                *sup -= 1;
                if *sup == 0 {
                    self.support.remove(&row);
                }
            }
        }

        // ---- addition phase: seed each new fact at each atom ----
        let order = plan(&self.pattern, &view.plan_stats()).order;
        let nvars = self.pattern.vars.len();
        let mut found: Vec<Vec<u64>> = Vec::new();
        for (ai, atom) in self.pattern.atoms.iter().enumerate() {
            let rest: Vec<usize> = order.iter().copied().filter(|&i| i != ai).collect();
            match *atom {
                Atom::Match(x, y) => {
                    for &(a, c) in &delta.added_pairs {
                        // Retracted again later in the batch?
                        if !view.result_set().contains(a, c) {
                            continue;
                        }
                        for (ida, idc) in [(a, c), (c, a)] {
                            if var_ok(&self.pattern, view, x, ida)
                                && var_ok(&self.pattern, view, y, idc)
                            {
                                let mut seed = vec![None; nvars];
                                seed[x] = Some(ida);
                                seed[y] = Some(idc);
                                found.extend(eval_from(&self.pattern, &rest, view, seed));
                            }
                        }
                    }
                }
                Atom::Live(v) => {
                    for &id in &delta.arrived {
                        // `var_ok` also rejects arrived-then-expired ids.
                        if var_ok(&self.pattern, view, v, id) {
                            let mut seed = vec![None; nvars];
                            seed[v] = Some(id);
                            found.extend(eval_from(&self.pattern, &rest, view, seed));
                        }
                    }
                }
            }
        }
        for b in found {
            let row = project_one(&self.pattern, &b);
            if self.bindings.insert(b) {
                let sup = self.support.entry(row.clone()).or_insert(0);
                before.entry(row).or_insert(*sup);
                *sup += 1;
            }
        }

        // ---- net notification: rows whose support crossed zero ----
        let mut added = Vec::new();
        let mut retracted = Vec::new();
        for (row, old) in before {
            let new = self.support.get(&row).copied().unwrap_or(0);
            match (old > 0, new > 0) {
                (false, true) => added.push(row),
                (true, false) => retracted.push(row),
                _ => {}
            }
        }
        added.sort_unstable();
        retracted.sort_unstable();
        (added, retracted)
    }
}

/// Folds a notification stream over a snapshot: the client-side half of
/// the standing-query contract. Applies retractions then additions of
/// one batch; the result after every batch must equal the one-shot query
/// against the engine at that point.
pub fn fold_notification(
    rows: &mut BTreeSet<Vec<u64>>,
    added: &[Vec<u64>],
    retracted: &[Vec<u64>],
) {
    for r in retracted {
        assert!(rows.remove(r), "retraction of a row the fold never had");
    }
    for r in added {
        assert!(
            rows.insert(r.clone()),
            "addition of a row the fold already had"
        );
    }
}
