//! `ter_query`: a declarative pattern-query layer over the live TER-iDS
//! state — one-shot evaluation and incrementally-maintained *standing*
//! queries.
//!
//! * [`pattern`] — the AST and parser for the conjunctive pattern
//!   grammar (`match`/`live` atoms, `stream`/`topical`/`ts`/`id`
//!   selections, optional projection);
//! * [`plan`] — statistics-free greedy join ordering driven entirely by
//!   counters the engine already maintains (live/pair/stream/topical
//!   counts, grid cell occupancy, prune stats), with up-front
//!   empty-result detection;
//! * [`eval`] — evaluation as composable streaming iterators: one
//!   `flat_map` stage per atom, predicates applied at first binding,
//!   results in canonical sorted-deduped row form;
//! * [`standing`] — incremental maintenance against the engine's
//!   window-delta stream ([`ter_ids::StepOutput`]'s
//!   `new_matches`/`retractions`/`expired`), emitting net row
//!   additions/retractions per batch whose fold is bit-identical to
//!   from-scratch re-evaluation after every batch.
//!
//! Both [`ter_ids::TerIdsEngine`] and [`ter_exec::ShardedTerIdsEngine`]
//! implement [`QueryView`], so every suite can differential-test the
//! layer across engines.

pub mod eval;
pub mod pattern;
pub mod plan;
pub mod standing;

pub use eval::{evaluate, evaluate_traced, EvalTrace, QueryView};
pub use pattern::{Atom, Pattern, Pred, VarId};
pub use plan::{plan, Plan, PlanStats};
pub use standing::{fold_notification, BatchDelta, StandingQuery};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    use ter_datasets::{preset, GenOptions, Preset};
    use ter_exec::{ExecConfig, ShardedTerIdsEngine};
    use ter_ids::{ErProcessor, Params, PruningMode, TerContext, TerIdsEngine};
    use ter_repo::PivotConfig;
    use ter_rules::DiscoveryConfig;
    use ter_stream::StreamSet;

    fn fixture() -> (TerContext, StreamSet, Params) {
        let ds = preset(
            Preset::Citations,
            &GenOptions {
                scale: 0.08,
                ..GenOptions::default()
            },
        );
        let params = Params {
            window: 24,
            ..Params::default()
        };
        let keywords = ds.keywords();
        let ctx = TerContext::build(
            ds.repo.clone(),
            keywords,
            &PivotConfig::default(),
            &DiscoveryConfig::default(),
            params.fanout,
        );
        (ctx, ds.streams, params)
    }

    /// Exhaustive reference evaluation: enumerate every assignment of
    /// the pattern's variables over the live ids, keep those satisfying
    /// all atoms and predicates, project, sort, dedup. Correct by
    /// construction (every atom implies liveness of its variables), and
    /// deliberately ignorant of plans, adjacency indexes, and deltas.
    fn brute<V: QueryView>(p: &Pattern, view: &V) -> Vec<Vec<u64>> {
        let ids = view.live_ids();
        let n = p.vars.len();
        let mut rows = Vec::new();
        let mut asg = vec![0u64; n];
        fn rec<V: QueryView>(
            p: &Pattern,
            view: &V,
            ids: &[u64],
            asg: &mut Vec<u64>,
            depth: usize,
            rows: &mut Vec<Vec<u64>>,
        ) {
            if depth == asg.len() {
                let ok = p.atoms.iter().all(|a| match *a {
                    Atom::Match(x, y) => view.result_set().contains(asg[x], asg[y]),
                    Atom::Live(v) => view.meta_of(asg[v]).is_some(),
                }) && p
                    .preds
                    .iter()
                    .all(|pr| crate::eval::var_ok(p, view, pr.var(), asg[pr.var()]));
                if ok {
                    rows.push(p.projection.iter().map(|&v| asg[v]).collect());
                }
                return;
            }
            for &id in ids {
                asg[depth] = id;
                rec(p, view, ids, asg, depth + 1, rows);
            }
        }
        rec(p, view, &ids, &mut asg, 0, &mut rows);
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    fn fixed_patterns() -> Vec<Pattern> {
        [
            "match(a, b)",
            "match(a, b) -> a",
            "match(a, b) where stream(a) = 0",
            "match(a, b), match(b, c)",
            "match(a, b), match(b, c) -> a, c",
            "live(a) where topical(a)",
            "live(a), live(b) where stream(a) = 0, stream(b) = 1, ts(a) >= 10",
            "match(a, b), live(c) where ts(c) <= 40 -> a, c",
            "match(a, b) where topical(a), topical(b)",
        ]
        .iter()
        .map(|s| Pattern::parse(s).unwrap())
        .collect()
    }

    #[test]
    fn one_shot_matches_brute_force_on_both_engines() {
        let (ctx, streams, params) = fixture();
        let mut seq = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        let mut par =
            ShardedTerIdsEngine::new(&ctx, params, PruningMode::Full, ExecConfig::new(3, 2));
        let patterns = fixed_patterns();
        for (i, chunk) in streams.arrival_batches(7).into_iter().enumerate() {
            seq.step_batch(&chunk);
            par.step_batch(&chunk);
            // Checking every batch is quadratic in the run; every 3rd
            // batch crosses plenty of window slides already.
            if i % 3 != 0 {
                continue;
            }
            for p in &patterns {
                let want = brute(p, &seq);
                assert_eq!(evaluate(p, &seq), want, "seq vs brute, batch {i}");
                assert_eq!(evaluate(p, &par), want, "sharded vs brute, batch {i}");
            }
        }
    }

    #[test]
    fn standing_fold_is_bit_identical_to_one_shot_every_batch() {
        let (ctx, streams, params) = fixture();
        let mut eng = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        let patterns = fixed_patterns();
        let mut standing: Vec<StandingQuery> = patterns
            .iter()
            .map(|p| StandingQuery::new(p.clone()))
            .collect();
        let mut folds: Vec<BTreeSet<Vec<u64>>> = standing
            .iter_mut()
            .map(|s| s.seed(&eng).into_iter().collect())
            .collect();
        for (bi, chunk) in streams.arrival_batches(5).into_iter().enumerate() {
            let outputs = eng.step_batch(&chunk);
            let delta = BatchDelta::from_steps(&chunk, &outputs);
            for ((p, s), fold) in patterns.iter().zip(&mut standing).zip(&mut folds) {
                let (added, retracted) = s.apply_batch(&eng, &delta);
                fold_notification(fold, &added, &retracted);
                let folded: Vec<Vec<u64>> = fold.iter().cloned().collect();
                let fresh = evaluate(p, &eng);
                assert_eq!(folded, fresh, "fold ≡ one-shot, batch {bi}");
                assert_eq!(s.rows(), fresh, "internal rows ≡ one-shot, batch {bi}");
            }
        }
    }

    #[test]
    fn empty_window_yields_empty_results_without_scanning() {
        let (ctx, _, params) = fixture();
        let eng = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        for p in fixed_patterns() {
            assert!(plan(&p, &eng.plan_stats()).empty);
            assert!(evaluate(&p, &eng).is_empty());
        }
    }

    #[test]
    fn traced_evaluation_is_bit_identical_and_counts_every_atom() {
        let (ctx, streams, params) = fixture();
        let mut eng = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        let patterns = fixed_patterns();
        for (i, chunk) in streams.arrival_batches(7).into_iter().enumerate() {
            eng.step_batch(&chunk);
            if i % 3 != 0 {
                continue;
            }
            for p in &patterns {
                let plain = evaluate(p, &eng);
                let (traced, trace) = evaluate_traced(p, &eng);
                assert_eq!(traced, plain, "traced ≡ plain, batch {i}");
                assert_eq!(trace.rows as usize, plain.len());
                assert_eq!(trace.atom_rows.len(), trace.order.len());
                assert_eq!(trace.costs.len(), trace.order.len());
                let q = plan(p, &eng.plan_stats());
                assert_eq!(trace.order, q.order, "trace reports the real plan");
                if !q.empty {
                    // The last intermediate is the unprojected binding
                    // count, an upper bound on the deduped rows.
                    assert!(trace.atom_rows.last().copied().unwrap_or(0) >= trace.rows);
                }
            }
        }
    }

    #[test]
    fn projection_and_dedup_are_applied() {
        let (ctx, streams, params) = fixture();
        let mut eng = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        for chunk in streams.arrival_batches(8) {
            eng.step_batch(&chunk);
        }
        let wide = Pattern::parse("match(a, b)").unwrap();
        let narrow = Pattern::parse("match(a, b) -> a").unwrap();
        let wide_rows = evaluate(&wide, &eng);
        let narrow_rows = evaluate(&narrow, &eng);
        let expect: BTreeSet<Vec<u64>> = wide_rows.iter().map(|r| vec![r[0]]).collect();
        assert_eq!(narrow_rows, expect.into_iter().collect::<Vec<_>>());
        assert!(narrow_rows.iter().all(|r| r.len() == 1));
    }
}
