//! The pattern AST and its parser.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query := atoms [ "where" preds ] [ "->" vars ]
//! atoms := atom ("," atom)*
//! atom  := "match" "(" var "," var ")"   -- a live result pair
//!        | "live" "(" var ")"            -- an unexpired window tuple
//! preds := pred ("," pred)*
//! pred  := "stream" "(" var ")" "=" num
//!        | "topical" "(" var ")"
//!        | "ts" "(" var ")" (">=" | "<=") num
//!        | "id" "(" var ")" "=" num
//! vars  := var ("," var)*
//! ```
//!
//! Variables are introduced by atoms; predicates and the projection may
//! only reference variables that appear in at least one atom, which is
//! exactly the range-restriction every binding needs to come out fully
//! ground. Omitting `->` projects every variable in first-occurrence
//! order.

/// Index into [`Pattern::vars`].
pub type VarId = usize;

/// A relational atom over the engine's live state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Atom {
    /// `match(x, y)`: `(x, y)` is a currently-live result pair. The two
    /// variables must be distinct — a tuple never matches itself.
    Match(VarId, VarId),
    /// `live(x)`: `x` is an unexpired window tuple.
    Live(VarId),
}

impl Atom {
    /// Variables the atom mentions.
    pub fn vars(&self) -> Vec<VarId> {
        match *self {
            Atom::Match(a, b) => vec![a, b],
            Atom::Live(v) => vec![v],
        }
    }
}

/// A selection predicate on a single variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pred {
    /// `stream(x) = s`
    Stream(VarId, usize),
    /// `topical(x)`
    Topical(VarId),
    /// `ts(x) >= t`
    TsGe(VarId, u64),
    /// `ts(x) <= t`
    TsLe(VarId, u64),
    /// `id(x) = i`
    IdEq(VarId, u64),
}

impl Pred {
    /// The variable the predicate constrains.
    pub fn var(&self) -> VarId {
        match *self {
            Pred::Stream(v, _)
            | Pred::Topical(v)
            | Pred::TsGe(v, _)
            | Pred::TsLe(v, _)
            | Pred::IdEq(v, _) => v,
        }
    }
}

/// A parsed, validated pattern query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Variable names, indexed by [`VarId`] (first-occurrence order).
    pub vars: Vec<String>,
    /// Conjunctive atoms, in source order.
    pub atoms: Vec<Atom>,
    /// Selection predicates, in source order.
    pub preds: Vec<Pred>,
    /// Output columns, as variable ids.
    pub projection: Vec<VarId>,
}

impl Pattern {
    /// Number of output columns.
    pub fn arity(&self) -> usize {
        self.projection.len()
    }

    /// Parses and validates a pattern query.
    pub fn parse(input: &str) -> Result<Pattern, String> {
        Parser::new(lex(input)?).parse()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u64),
    LParen,
    RParen,
    Comma,
    Eq,
    Ge,
    Le,
    Arrow,
}

fn lex(input: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '=' => {
                chars.next();
                toks.push(Tok::Eq);
            }
            '>' | '<' | '-' => {
                chars.next();
                match (c, chars.next()) {
                    ('>', Some('=')) => toks.push(Tok::Ge),
                    ('<', Some('=')) => toks.push(Tok::Le),
                    ('-', Some('>')) => toks.push(Tok::Arrow),
                    (_, got) => {
                        return Err(format!(
                            "expected '{c}=' style operator, found '{c}{}'",
                            got.map(String::from).unwrap_or_default()
                        ))
                    }
                }
            }
            '0'..='9' => {
                let mut n: u64 = 0;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(d as u64))
                        .ok_or_else(|| "numeric literal overflows u64".to_string())?;
                    chars.next();
                }
                toks.push(Tok::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            other => return Err(format!("unexpected character '{other}'")),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    vars: Vec<String>,
}

impl Parser {
    fn new(toks: Vec<Tok>) -> Self {
        Parser {
            toks,
            pos: 0,
            vars: Vec::new(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, ctx: &str) -> Result<(), String> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            got => Err(format!("expected {want:?} {ctx}, found {got:?}")),
        }
    }

    fn ident(&mut self, ctx: &str) -> Result<String, String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            got => Err(format!("expected identifier {ctx}, found {got:?}")),
        }
    }

    fn num(&mut self, ctx: &str) -> Result<u64, String> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(n),
            got => Err(format!("expected number {ctx}, found {got:?}")),
        }
    }

    /// Resolves a variable name, introducing it if `introduce`.
    fn var(&mut self, name: String, introduce: bool) -> Result<VarId, String> {
        if let Some(i) = self.vars.iter().position(|v| *v == name) {
            return Ok(i);
        }
        if !introduce {
            return Err(format!(
                "variable '{name}' does not appear in any atom (every predicate \
                 and projection variable must)"
            ));
        }
        self.vars.push(name);
        Ok(self.vars.len() - 1)
    }

    fn atom(&mut self, head: String) -> Result<Atom, String> {
        self.expect(Tok::LParen, "after atom name")?;
        match head.as_str() {
            "match" => {
                let a = self.ident("as match() argument")?;
                self.expect(Tok::Comma, "between match() arguments")?;
                let b = self.ident("as match() argument")?;
                self.expect(Tok::RParen, "after match() arguments")?;
                let (a, b) = (self.var(a, true)?, self.var(b, true)?);
                if a == b {
                    return Err(
                        "match(x, x) is always empty: a tuple never matches itself".to_string()
                    );
                }
                Ok(Atom::Match(a, b))
            }
            "live" => {
                let v = self.ident("as live() argument")?;
                self.expect(Tok::RParen, "after live() argument")?;
                Ok(Atom::Live(self.var(v, true)?))
            }
            other => Err(format!("unknown atom '{other}' (expected match or live)")),
        }
    }

    fn pred(&mut self, head: String) -> Result<Pred, String> {
        self.expect(Tok::LParen, "after predicate name")?;
        let name = self.ident("as predicate argument")?;
        self.expect(Tok::RParen, "after predicate argument")?;
        let v = self.var(name, false)?;
        match head.as_str() {
            "stream" => {
                self.expect(Tok::Eq, "after stream(..)")?;
                let n = self.num("as stream id")?;
                Ok(Pred::Stream(v, n as usize))
            }
            "topical" => Ok(Pred::Topical(v)),
            "ts" => match self.next() {
                Some(Tok::Ge) => Ok(Pred::TsGe(v, self.num("after ts(..) >=")?)),
                Some(Tok::Le) => Ok(Pred::TsLe(v, self.num("after ts(..) <=")?)),
                got => Err(format!("expected >= or <= after ts(..), found {got:?}")),
            },
            "id" => {
                self.expect(Tok::Eq, "after id(..)")?;
                Ok(Pred::IdEq(v, self.num("as tuple id")?))
            }
            other => Err(format!(
                "unknown predicate '{other}' (expected stream, topical, ts, or id)"
            )),
        }
    }

    fn parse(mut self) -> Result<Pattern, String> {
        let mut atoms = Vec::new();
        loop {
            let head = self.ident("as atom name")?;
            atoms.push(self.atom(head)?);
            match self.peek() {
                Some(Tok::Comma) => {
                    self.pos += 1;
                }
                _ => break,
            }
        }

        let mut preds = Vec::new();
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "where") {
            self.pos += 1;
            loop {
                let head = self.ident("as predicate name")?;
                preds.push(self.pred(head)?);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
        }

        let projection = if matches!(self.peek(), Some(Tok::Arrow)) {
            self.pos += 1;
            let mut proj = Vec::new();
            loop {
                let name = self.ident("as projection variable")?;
                proj.push(self.var(name, false)?);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            proj
        } else {
            (0..self.vars.len()).collect()
        };

        if let Some(t) = self.peek() {
            return Err(format!("trailing input at {t:?}"));
        }
        if projection.is_empty() {
            return Err("projection cannot be empty".to_string());
        }
        Ok(Pattern {
            vars: self.vars,
            atoms,
            preds,
            projection,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let p = Pattern::parse(
            "match(a, b), live(c) where stream(a) = 0, topical(b), ts(c) >= 10, id(a) = 5 -> a, b",
        )
        .unwrap();
        assert_eq!(p.vars, vec!["a", "b", "c"]);
        assert_eq!(p.atoms, vec![Atom::Match(0, 1), Atom::Live(2)]);
        assert_eq!(
            p.preds,
            vec![
                Pred::Stream(0, 0),
                Pred::Topical(1),
                Pred::TsGe(2, 10),
                Pred::IdEq(0, 5)
            ]
        );
        assert_eq!(p.projection, vec![0, 1]);
    }

    #[test]
    fn default_projection_is_all_vars_in_order() {
        let p = Pattern::parse("match(x, y), match(y, z)").unwrap();
        assert_eq!(p.vars, vec!["x", "y", "z"]);
        assert_eq!(p.projection, vec![0, 1, 2]);
    }

    #[test]
    fn shared_variables_join() {
        let p = Pattern::parse("match(a, b), live(a)").unwrap();
        assert_eq!(p.vars.len(), 2);
        assert_eq!(p.atoms, vec![Atom::Match(0, 1), Atom::Live(0)]);
    }

    #[test]
    fn rejects_self_match() {
        assert!(Pattern::parse("match(a, a)").is_err());
    }

    #[test]
    fn rejects_unbound_predicate_and_projection_vars() {
        assert!(Pattern::parse("live(a) where topical(b)").is_err());
        assert!(Pattern::parse("live(a) -> b").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Pattern::parse("").is_err());
        assert!(Pattern::parse("match(a, b) extra").is_err());
        assert!(Pattern::parse("frobnicate(a)").is_err());
        assert!(Pattern::parse("live(a) where ts(a) > 3").is_err());
        assert!(Pattern::parse("live(a) where ts(a) >= 99999999999999999999").is_err());
    }
}
