//! `ter_serve`: the durable streaming TER-iDS service.
//!
//! PRs 2 and 3 made the engine sharded and its state durable, but both
//! still required every consumer to link the crates and drive
//! `step_batch` in-process. This crate is the missing subsystem that
//! turns the library into a long-lived daemon:
//!
//! * [`wire`] — the versioned, length-prefixed binary protocol
//!   (CRC-32-framed, reusing the `ter_store` codec, so an `Arrival`
//!   travels over TCP bit-identically to how it lands in the WAL); v2
//!   adds windowed, sequence-tagged pipelined ingest, v1 peers keep
//!   working;
//! * [`server`] — the daemon: accept loop, reader + writer threads per
//!   connection, one bounded ordered queue into a two-stage engine
//!   pipeline (WAL/checkpoint stage overlapping batch `n+1`'s fsync with
//!   batch `n`'s step on a persistent worker-pool session;
//!   WAL-before-ack per sequence, checkpoint cadence, two-generation WAL
//!   compaction, `Busy`/`IngestBusy` backpressure, per-connection
//!   go-back-N ingest gate);
//! * [`client`] — the client library: strict request/reply calls, the
//!   windowed [`Client::ingest_pipelined`] driver, and the
//!   reconnect-and-resume [`ResilientClient`] wrapper.
//!
//! Protocol v3 adds the declarative query layer (`ter_query`) over the
//! wire: one-shot pattern queries ([`Client::pattern_query`]) and
//! *standing* queries — [`Client::subscribe`] registers a pattern, the
//! daemon pushes incremental [`SubEvent::Notify`] match/retraction
//! events through the same per-connection writer path as every other
//! reply as the window slides, and a subscriber that stops draining is
//! shed with [`SubEvent::Lagged`] (bounded buffering, never a stalled
//! feeder). Folding the snapshot plus every notification
//! ([`SubscriptionFold`]) is bit-identical to re-running the query
//! from scratch at every step — the standing-query differential oracle
//! (`tests/query_oracle.rs`, `tests/serve_crash.rs`).
//!
//! The service contract extends the repo's gold standard across the
//! process boundary: ingest through the daemon — request/reply or
//! pipelined at any window — `kill -9` it mid-stream, restart it on the
//! same directory, resume the feed at `Recovery::resume_seq` (or let
//! [`ResilientClient::feed`] do all of that itself) — and the
//! concatenated per-arrival results are **bit-identical** to a
//! never-crashed in-process engine run (`tests/serve_crash.rs` enforces
//! this with a real SIGKILL).

pub mod client;
pub mod server;
pub mod wire;

#[cfg(test)]
mod proptests;

pub use client::{
    BatchMatches, Client, ClientError, FeedReport, PipelinedIngest, ResilientClient, SubAckInfo,
    SubEvent, SubscriptionFold,
};
pub use server::{CkptMode, ServeError, ServeOptions, ServeReport, Server};
pub use wire::{Query, Reply, Request, StatsExInfo, StatsInfo, WindowInfo, WireError};

#[cfg(test)]
mod tests {
    use std::fs;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::path::{Path, PathBuf};
    use std::time::Duration;

    use ter_exec::ExecConfig;
    use ter_ids::{ErProcessor, Params, PruningMode, TerContext, TerIdsEngine};
    use ter_repo::{PivotConfig, Record, Repository, Schema};
    use ter_rules::DiscoveryConfig;
    use ter_stream::StreamSet;
    use ter_text::{Dictionary, KeywordSet};

    use crate::client::Client;
    use crate::server::{ServeOptions, Server};

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!("ter_serve_{}_{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&p);
            fs::create_dir_all(&p).unwrap();
            Self(p)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    /// A small 2-stream scenario with one obvious cross-stream match
    /// (mirrors the core engine's unit scenario).
    fn scenario() -> (TerContext, StreamSet) {
        let schema = Schema::new(vec!["title", "tags"]);
        let mut dict = Dictionary::new();
        let repo_rows = [
            ("space cowboy adventure", "scifi western"),
            ("space cowboy adventure saga", "scifi western"),
            ("high school romance", "drama comedy"),
            ("high school romance club", "drama comedy"),
            ("cooking master", "comedy food"),
            ("idol music live", "music idol"),
        ];
        let repo_recs: Vec<Record> = repo_rows
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                Record::from_texts(&schema, 1000 + i as u64, &[Some(a), Some(b)], &mut dict)
            })
            .collect();
        let repo = Repository::from_records(schema.clone(), repo_recs);
        let keywords = KeywordSet::parse("scifi", &dict);
        let ctx = TerContext::build(
            repo,
            keywords,
            &PivotConfig::default(),
            &DiscoveryConfig {
                min_support: 2,
                min_constant_support: 2,
                ..DiscoveryConfig::default()
            },
            16,
        );
        let s0 = vec![
            Record::from_texts(
                &schema,
                1,
                &[Some("space cowboy adventure"), Some("scifi western")],
                &mut dict,
            ),
            Record::from_texts(
                &schema,
                3,
                &[Some("cooking master"), Some("comedy food")],
                &mut dict,
            ),
        ];
        let s1 = vec![
            Record::from_texts(
                &schema,
                2,
                &[Some("space cowboy adventure"), Some("scifi western")],
                &mut dict,
            ),
            Record::from_texts(
                &schema,
                4,
                &[Some("idol music live"), Some("music idol")],
                &mut dict,
            ),
        ];
        (ctx, StreamSet::new(vec![s0, s1]))
    }

    fn opts() -> ServeOptions {
        ServeOptions {
            queue_depth: 4,
            checkpoint_every: 2,
            exec: ExecConfig::new(2, 2),
            ..ServeOptions::default()
        }
    }

    /// Full daemon round trip: serve, ingest, introspect, shut down —
    /// per-arrival matches bit-identical to the library engine.
    #[test]
    fn daemon_matches_library_engine() {
        let (ctx, streams) = scenario();
        let params = Params::default();
        let dir = TempDir::new("roundtrip");
        let batches = streams.arrival_batches(2);

        let mut oracle = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        let oracle_matches: Vec<Vec<(u64, u64)>> = batches
            .iter()
            .flat_map(|b| {
                oracle
                    .step_batch(b)
                    .into_iter()
                    .map(|o| o.new_matches)
                    .collect::<Vec<_>>()
            })
            .collect();

        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &opts()).unwrap());
            let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            let mut served: Vec<Vec<(u64, u64)>> = Vec::new();
            for batch in &batches {
                served.extend(client.ingest_wait(batch).unwrap());
            }
            assert_eq!(served, oracle_matches, "daemon diverged from library");

            let window = client.window().unwrap();
            assert_eq!(window.len, oracle.window_len());
            assert_eq!(window.capacity, params.window);
            assert_eq!(window.live_ids, oracle.live_ids());

            let e = client.entity(1).unwrap();
            assert!(e.found);
            assert_eq!(e.partners, vec![2]);
            let missing = client.entity(999).unwrap();
            assert!(!missing.found);

            let mut oracle_pairs: Vec<(u64, u64)> = oracle.results().iter().collect();
            oracle_pairs.sort_unstable();
            assert_eq!(client.results().unwrap(), oracle_pairs);

            let stats = client.stats().unwrap();
            assert_eq!(stats.stats, oracle.prune_stats());
            assert_eq!(stats.next_batch_seq, batches.len() as u64);
            assert!(stats.wal_bytes > 0);

            assert!(client.checkpoint().unwrap() > 0);
            assert_eq!(client.shutdown().unwrap(), batches.len() as u64);
            let report = handle.join().unwrap();
            assert_eq!(report.batches, batches.len() as u64);
            assert_eq!(report.resumed_at, 0);
            assert_eq!(report.replayed, 0);
        });
    }

    /// Pipelined ingest (W > 1) commits every batch exactly once, in
    /// order, with per-batch matches whose concatenation is bit-identical
    /// to the strict request/reply feed — and the same connection can go
    /// back to plain verbs afterwards.
    #[test]
    fn pipelined_ingest_matches_request_reply() {
        let (ctx, streams) = scenario();
        let params = Params::default();
        let dir = TempDir::new("pipelined");
        let batches = streams.arrival_batches(1);

        let mut oracle = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        let oracle_matches: Vec<Vec<(u64, u64)>> = batches
            .iter()
            .flat_map(|b| {
                oracle
                    .step_batch(b)
                    .into_iter()
                    .map(|o| o.new_matches)
                    .collect::<Vec<_>>()
            })
            .collect();

        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &opts()).unwrap());
            let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            let run = client.ingest_pipelined(&batches, 4).unwrap();
            assert_eq!(run.per_batch.len(), batches.len());
            let served: Vec<Vec<(u64, u64)>> = run.per_batch.into_iter().flatten().collect();
            assert_eq!(served, oracle_matches, "pipelined feed diverged");

            // Plain verbs on the same connection still work after a run.
            let stats = client.stats().unwrap();
            assert_eq!(stats.next_batch_seq, batches.len() as u64);
            assert_eq!(stats.stats, oracle.prune_stats());
            let window = client.window().unwrap();
            assert_eq!(window.live_ids, oracle.live_ids());
            client.shutdown().unwrap();
            let report = handle.join().unwrap();
            assert_eq!(report.batches, batches.len() as u64);
        });
    }

    /// Backpressure under pipelined ingest: a depth-1 queue plus an
    /// artificial step hold forces the window to overrun — the client
    /// must surface `IngestBusy`, retry via go-back-N, and the final
    /// state must still be bit-identical to the oracle (nothing lost,
    /// nothing duplicated, nothing reordered).
    #[test]
    fn pipelined_busy_backpressure_retries_to_parity() {
        let (ctx, streams) = scenario();
        let params = Params::default();
        let dir = TempDir::new("pipelined_busy");
        let batches = streams.arrival_batches(1);

        let mut oracle = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        for b in &batches {
            oracle.step_batch(b);
        }

        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        let busy_opts = ServeOptions {
            queue_depth: 1,
            // Long enough that the reader outruns the engine and the
            // window is guaranteed to overrun the depth-1 queue.
            ingest_hold: Duration::from_millis(40),
            ..opts()
        };
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &busy_opts).unwrap());
            let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            let run = client.ingest_pipelined(&batches, 4).unwrap();
            assert!(
                run.busy_retries > 0,
                "a depth-1 queue under a 4-deep window must reject at least once"
            );
            assert_eq!(run.per_batch.len(), batches.len(), "every batch acked once");

            let stats = client.stats().unwrap();
            assert_eq!(
                stats.next_batch_seq,
                batches.len() as u64,
                "no loss, no dupes"
            );
            assert_eq!(
                stats.stats,
                oracle.prune_stats(),
                "bit-identical statistics"
            );
            let window = client.window().unwrap();
            assert_eq!(window.live_ids, oracle.live_ids());
            client.shutdown().unwrap();
            handle.join().unwrap();
        });
    }

    /// An in-process "hard crash" (drop the serve scope without shutdown)
    /// followed by a restart on the same directory: the daemon resumes at
    /// the committed position and the tail of the stream completes with
    /// results identical to an uninterrupted library run.
    #[test]
    fn restart_resumes_at_committed_position() {
        let (ctx, streams) = scenario();
        let params = Params {
            window: 3,
            ..Params::default()
        };
        let dir = TempDir::new("restart");
        let batches = streams.arrival_batches(1);
        let cut = 2;

        let mut oracle = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        let oracle_matches: Vec<Vec<(u64, u64)>> = batches
            .iter()
            .flat_map(|b| {
                oracle
                    .step_batch(b)
                    .into_iter()
                    .map(|o| o.new_matches)
                    .collect::<Vec<_>>()
            })
            .collect();

        let mut served: Vec<Vec<(u64, u64)>> = Vec::new();
        // Phase 1: ingest the prefix, then vanish without Shutdown — the
        // reader/acceptor threads are torn down by dropping the client and
        // killing the engine loop via a forced listener error is not
        // needed; we simply leave run() alive in its scope and abandon the
        // process's view by... using Shutdown here would checkpoint, which
        // is exactly what a crash must NOT rely on. Instead phase 1 runs
        // in a child scope whose engine loop we stop by dropping the
        // *client* after a Shutdown-free disconnect, then binding a fresh
        // server: the WAL (fsync-per-batch) alone must carry the state.
        {
            let server = Server::bind("127.0.0.1:0").unwrap();
            let addr = server.addr().unwrap();
            // checkpoint_every: 0 — recovery must come purely from the
            // WAL, the harshest in-process approximation of kill -9.
            let crash_opts = ServeOptions {
                checkpoint_every: 0,
                ..opts()
            };
            std::thread::scope(|scope| {
                let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &crash_opts));
                let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                for batch in &batches[..cut] {
                    served.extend(client.ingest_wait(batch).unwrap());
                }
                // The only graceful element: stop the engine loop so the
                // scope can join. The final checkpoint it writes is
                // deleted below to simulate the crash having lost it.
                client.shutdown().unwrap();
                handle.join().unwrap().unwrap();
            });
            for entry in fs::read_dir(dir.path()).unwrap() {
                let name = entry.unwrap().file_name().into_string().unwrap();
                if name.starts_with("ckpt-") || name == "MANIFEST" {
                    fs::remove_file(dir.path().join(name)).unwrap();
                }
            }
        }

        // Phase 2: restart on the same directory; the WAL replays the
        // prefix, the feed resumes at resume_seq.
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &opts()).unwrap());
            let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            let stats = client.stats().unwrap();
            assert_eq!(stats.next_batch_seq, cut as u64, "resume position");
            for batch in &batches[cut..] {
                served.extend(client.ingest_wait(batch).unwrap());
            }
            client.shutdown().unwrap();
            let report = handle.join().unwrap();
            assert_eq!(report.resumed_at, cut as u64);
            assert_eq!(report.replayed, cut, "batch size 1 ⇒ one arrival per batch");
        });
        assert_eq!(served, oracle_matches, "resumed run diverged");
    }

    /// Raw garbage on the socket: the daemon answers with a clean error
    /// frame (or closes), never panics, and keeps serving other clients.
    #[test]
    fn garbage_bytes_do_not_take_down_the_daemon() {
        let (ctx, streams) = scenario();
        let params = Params::default();
        let dir = TempDir::new("garbage");
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &opts()).unwrap());

            // A well-formed frame whose payload is not a valid request:
            // error reply, connection stays up.
            let mut evil = TcpStream::connect(addr).unwrap();
            let payload = b"definitely not a request";
            let mut frame = Vec::new();
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&ter_store::crc32(payload).to_le_bytes());
            frame.extend_from_slice(payload);
            evil.write_all(&frame).unwrap();
            let reply = crate::wire::read_message(&mut evil).unwrap();
            assert!(matches!(
                crate::wire::decode_reply(&reply).unwrap(),
                crate::wire::Reply::Error(_)
            ));

            // Frame-level corruption (bad CRC): error frame, then close.
            let mut bitflip = TcpStream::connect(addr).unwrap();
            let mut bad = frame.clone();
            *bad.last_mut().unwrap() ^= 0x40;
            bitflip.write_all(&bad).unwrap();
            let reply = crate::wire::read_message(&mut bitflip).unwrap();
            assert!(matches!(
                crate::wire::decode_reply(&reply).unwrap(),
                crate::wire::Reply::Error(_)
            ));
            let mut probe = [0u8; 1];
            assert_eq!(bitflip.read(&mut probe).unwrap(), 0, "connection closed");

            // A healthy client still gets full service afterwards.
            let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            for batch in streams.arrival_batches(2) {
                client.ingest_wait(&batch).unwrap();
            }
            assert!(client.window().unwrap().len > 0);
            client.shutdown().unwrap();
            handle.join().unwrap();
        });
    }

    /// A connection that goes silent mid-frame (header sent, payload
    /// never arrives) must not block graceful shutdown: its reader is
    /// abandoned once the shutdown flag is set and `run()` still joins.
    #[test]
    fn stalled_mid_frame_connection_does_not_block_shutdown() {
        let (ctx, _) = scenario();
        let params = Params::default();
        let dir = TempDir::new("stalled");
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &opts()).unwrap());
            // Promise a 100-byte payload, deliver nothing, stay connected.
            let mut stalled = TcpStream::connect(addr).unwrap();
            stalled.write_all(&100u32.to_le_bytes()).unwrap();
            stalled.write_all(&0u32.to_le_bytes()).unwrap();
            std::thread::sleep(Duration::from_millis(120));
            let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            client.shutdown().unwrap();
            // The join itself is the assertion: with a reader stuck on the
            // stalled socket, run() would never return.
            handle.join().unwrap();
            drop(stalled);
        });
    }

    /// Concurrent clients against a depth-1 queue: introspection verbs may
    /// be answered `Busy` (explicit backpressure, never unbounded
    /// buffering or a hang), and the one feeder's acked batches match the
    /// committed WAL position exactly — no commit is lost or duplicated
    /// by the contention.
    #[test]
    fn concurrent_clients_with_bounded_queue() {
        let (ctx, streams) = scenario();
        let params = Params::default();
        let dir = TempDir::new("busy");
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        let batches = streams.arrival_batches(1);
        std::thread::scope(|scope| {
            let opts = ServeOptions {
                queue_depth: 1,
                ..opts()
            };
            let handle = scope.spawn(move || server.run(&ctx, params, dir.path(), &opts).unwrap());
            std::thread::scope(|inner| {
                // Three clients hammer Stats; Busy replies are legal and
                // retried, anything else must decode as Stats.
                for _ in 0..3 {
                    inner.spawn(move || {
                        let mut client =
                            Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                        let mut seen = 0;
                        while seen < 20 {
                            match client.call(&crate::wire::Request::Stats).unwrap() {
                                crate::wire::Reply::Stats(_) => seen += 1,
                                crate::wire::Reply::Busy => {}
                                other => panic!("unexpected reply {other:?}"),
                            }
                        }
                    });
                }
                // One feeder owns ingest (unique tuple ids) and retries
                // Busy via ingest_wait.
                let batches = &batches;
                inner.spawn(move || {
                    let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                    for batch in batches {
                        client.ingest_wait(batch).unwrap();
                    }
                });
            });
            let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            let stats = client.stats().unwrap();
            assert_eq!(
                stats.next_batch_seq,
                batches.len() as u64,
                "every acked batch is committed exactly once"
            );
            client.shutdown().unwrap();
            handle.join().unwrap();
        });
    }

    /// The standing-query round trip against a live daemon: a mid-stream
    /// subscribe gets the full snapshot, subsequent batches push net
    /// match/retraction notifications (a window slide retracts), and the
    /// client-side fold lands bit-identical to a one-shot pattern query
    /// at the same position. Unsubscribe stops the stream; a bad pattern
    /// is an in-protocol error.
    #[test]
    fn standing_query_notifications_fold_to_one_shot() {
        let (ctx, streams) = scenario();
        // window 3 < the 4-arrival stream: the last arrival evicts the
        // first, retracting the (1, 2) match — the notification stream
        // must carry that retraction.
        let params = Params {
            window: 3,
            ..Params::default()
        };
        let dir = TempDir::new("standing");
        let batches = streams.arrival_batches(1);
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &opts()).unwrap());
            let mut feeder = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            let mut subscriber = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();

            assert!(matches!(
                subscriber.subscribe(1, 0, "match(a, b where"),
                Err(crate::client::ClientError::Server(_))
            ));

            // Two batches in: ids 1 and 2 are live and matched.
            for batch in &batches[..2] {
                feeder.ingest_wait(batch).unwrap();
            }
            let ack = subscriber.subscribe(7, 0, "match(a, b)").unwrap();
            assert_eq!(ack.sub_id, 7);
            assert_eq!(ack.seq, 2, "snapshot position = batches stepped");
            assert_eq!(ack.rows, vec![vec![1, 2], vec![2, 1]]);
            let mut fold = crate::client::SubscriptionFold::start(&ack);

            // The rest of the stream slides the window past id 1.
            for batch in &batches[2..] {
                feeder.ingest_wait(batch).unwrap();
            }
            let (seq, rows) = feeder.pattern_query("match(a, b)").unwrap();
            assert_eq!(seq, batches.len() as u64);
            assert!(rows.is_empty(), "the only match expired");

            // Drain pushed events until the socket goes quiet.
            subscriber
                .set_io_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            loop {
                match subscriber.next_event() {
                    Ok(ev) => fold.apply(&ev),
                    Err(crate::client::ClientError::Wire(_)) => break,
                    Err(e) => panic!("unexpected subscription failure: {e}"),
                }
            }
            assert_eq!(fold.seq, seq, "the retraction batch was notified");
            assert_eq!(fold.rows(), rows, "fold ≡ one-shot");
            assert!(fold.lagged.is_none());

            assert!(subscriber.unsubscribe(7).unwrap());
            assert!(!subscriber.unsubscribe(7).unwrap(), "already removed");

            let mut control = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            control.shutdown().unwrap();
            handle.join().unwrap();
        });
    }

    /// `flush_window = 1` is the degenerate group commit: every batch
    /// buys its own fsync (the report counter says exactly so) and the
    /// served matches stay bit-identical to the library engine — the
    /// pre-group-commit daemon's behavior, reproduced.
    #[test]
    fn flush_window_one_degenerates_to_fsync_per_batch() {
        let (ctx, streams) = scenario();
        let params = Params::default();
        let dir = TempDir::new("fsync_per_batch");
        let batches = streams.arrival_batches(1);

        let mut oracle = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        let oracle_matches: Vec<Vec<(u64, u64)>> = batches
            .iter()
            .flat_map(|b| {
                oracle
                    .step_batch(b)
                    .into_iter()
                    .map(|o| o.new_matches)
                    .collect::<Vec<_>>()
            })
            .collect();

        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        let w1_opts = ServeOptions {
            // No cadence checkpoints: the counter isolates commit fsyncs.
            checkpoint_every: 0,
            flush_window: 1,
            ..opts()
        };
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &w1_opts).unwrap());
            let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            let mut served: Vec<Vec<(u64, u64)>> = Vec::new();
            for batch in &batches {
                served.extend(client.ingest_wait(batch).unwrap());
            }
            assert_eq!(served, oracle_matches, "W=1 daemon diverged from library");
            client.shutdown().unwrap();
            let report = handle.join().unwrap();
            assert_eq!(report.batches, batches.len() as u64);
            assert_eq!(
                report.fsyncs, report.batches,
                "flush_window=1 must fsync once per batch, no more, no less"
            );
        });
    }

    /// Delta checkpoint cadence end to end: a `ckpt_mode = delta` daemon
    /// writes one full base then chains delta stamps, a `kill`-style
    /// restart (checkpoint files intact, engine gone) recovers through
    /// base + delta chain + WAL suffix, and the resumed run's matches
    /// are bit-identical to an uninterrupted library engine.
    #[test]
    fn delta_mode_daemon_recovers_bit_identical() {
        let (ctx, streams) = scenario();
        let params = Params {
            window: 3,
            ..Params::default()
        };
        let dir = TempDir::new("delta_mode");
        let batches = streams.arrival_batches(1);
        let cut = 3;

        let mut oracle = TerIdsEngine::new(&ctx, params, PruningMode::Full);
        let oracle_matches: Vec<Vec<(u64, u64)>> = batches
            .iter()
            .flat_map(|b| {
                oracle
                    .step_batch(b)
                    .into_iter()
                    .map(|o| o.new_matches)
                    .collect::<Vec<_>>()
            })
            .collect();

        let delta_opts = ServeOptions {
            checkpoint_every: 1,
            ckpt_mode: crate::server::CkptMode::Delta,
            ..opts()
        };
        let mut served: Vec<Vec<(u64, u64)>> = Vec::new();
        {
            let server = Server::bind("127.0.0.1:0").unwrap();
            let addr = server.addr().unwrap();
            std::thread::scope(|scope| {
                let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &delta_opts));
                let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                for batch in &batches[..cut] {
                    served.extend(client.ingest_wait(batch).unwrap());
                }
                client.shutdown().unwrap();
                let report = handle.join().unwrap().unwrap();
                // Cadence 1: batch 1 writes the full base, batches 2..=cut
                // chain deltas onto it. The shutdown stamp lands at the
                // same position as the last cadence stamp — it does not
                // advance past the base, so it rebases to a full snapshot
                // (a graceful shutdown always leaves a chain-free base).
                assert_eq!(report.checkpoints, cut as u64 + 1);
                assert_eq!(
                    report.delta_checkpoints,
                    cut as u64 - 1,
                    "all but base + rebase"
                );
            });
            let deltas = fs::read_dir(dir.path())
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .starts_with("delt-")
                })
                .count();
            assert!(deltas > 0, "delta mode must leave delta frames on disk");
        }

        // Restart on the same directory: recovery walks base + chain (+
        // empty WAL suffix — every stamp was at the log end).
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &delta_opts).unwrap());
            let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            let stats = client.stats().unwrap();
            assert_eq!(stats.next_batch_seq, cut as u64, "resume position");
            for batch in &batches[cut..] {
                served.extend(client.ingest_wait(batch).unwrap());
            }
            client.shutdown().unwrap();
            let report = handle.join().unwrap();
            assert_eq!(report.resumed_at, cut as u64);
            assert_eq!(report.replayed, 0, "chain tip covered the whole log");
        });
        assert_eq!(served, oracle_matches, "delta-mode run diverged");
    }

    /// Byte-based cadence: with count cadence off and a tiny
    /// `checkpoint_bytes`, every batch's WAL growth crosses the threshold
    /// and the next ingest checkpoints — the report proves the byte
    /// trigger fired.
    #[test]
    fn checkpoint_bytes_cadence_fires() {
        let (ctx, streams) = scenario();
        let params = Params::default();
        let dir = TempDir::new("ckpt_bytes");
        let batches = streams.arrival_batches(1);
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        let byte_opts = ServeOptions {
            checkpoint_every: 0,
            checkpoint_bytes: 1,
            ..opts()
        };
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &byte_opts).unwrap());
            let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            for batch in &batches {
                client.ingest_wait(batch).unwrap();
            }
            client.shutdown().unwrap();
            let report = handle.join().unwrap();
            // Each batch crosses the 1-byte threshold; the *next* ingest
            // consumes the flag, so every batch after the first
            // checkpoints — plus the shutdown stamp.
            assert!(
                report.checkpoints >= batches.len() as u64 - 1,
                "byte cadence must fire: {} checkpoints for {} batches",
                report.checkpoints,
                report.batches
            );
        });
    }

    /// Cross-connection group commit: 8 concurrent feeders against
    /// `flush_window = 8` share fsyncs — the run completes with at least
    /// 4× fewer WAL fsyncs than committed batches, every acked batch is
    /// durable exactly once, and acks are only released after the
    /// covering sync (the feeders block on their acks, so a lost one
    /// would hang the test).
    #[test]
    fn concurrent_feeders_share_group_commit_fsyncs() {
        let (ctx, streams) = scenario();
        let params = Params::default();
        let dir = TempDir::new("group_commit");
        // 8 feeders × 12 disjoint copies of the 4-arrival scenario
        // stream, ids offset so every tuple is unique. All copies share
        // one timestamp: concurrent feeders interleave in an order the
        // engine picks, and the count-based window only requires
        // non-decreasing timestamps — simultaneous arrivals model
        // exactly this.
        const FEEDERS: u64 = 8;
        const COPIES: u64 = 12;
        let base = streams.arrival_batches(1);
        let now = base.iter().flatten().map(|a| a.timestamp).max().unwrap();
        let per_feeder: Vec<Vec<Vec<ter_stream::Arrival>>> = (0..FEEDERS)
            .map(|f| {
                (0..COPIES)
                    .flat_map(|c| {
                        let offset = 100_000 * (f * COPIES + c + 1);
                        base.iter().map(move |batch| {
                            batch
                                .iter()
                                .map(|a| {
                                    let mut a = a.clone();
                                    a.record.id += offset;
                                    a.timestamp = now;
                                    a
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect()
            })
            .collect();
        let total_batches: u64 = per_feeder.iter().map(|b| b.len() as u64).sum();

        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().unwrap();
        let gc_opts = ServeOptions {
            queue_depth: 32,
            // No cadence checkpoints (each forces a flush, polluting the
            // fsync count this test is about).
            checkpoint_every: 0,
            flush_window: FEEDERS as usize,
            // Short enough to bound straggler rounds, long enough that a
            // healthy round fills the window by count, not by clock.
            flush_interval: Duration::from_millis(20),
            ..opts()
        };
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&ctx, params, dir.path(), &gc_opts).unwrap());
            std::thread::scope(|inner| {
                for feed in &per_feeder {
                    inner.spawn(move || {
                        let mut client =
                            Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                        for batch in feed {
                            // Blocks until the ack — which the daemon may
                            // only release after the covering group fsync.
                            client.ingest_wait(batch).unwrap();
                        }
                    });
                }
            });
            let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            let stats = client.stats().unwrap();
            assert_eq!(
                stats.next_batch_seq, total_batches,
                "every acked batch committed exactly once"
            );
            client.shutdown().unwrap();
            let report = handle.join().unwrap();
            assert_eq!(report.batches, total_batches);
            assert!(
                report.fsyncs * 4 <= report.batches,
                "group commit must amortize: {} fsyncs for {} batches",
                report.fsyncs,
                report.batches
            );
        });
    }
}
