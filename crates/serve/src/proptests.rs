//! Property tests for the wire protocol, mirroring the `ter_store` codec
//! proptests: any byte-soup, truncated, or bit-flipped request frame gets
//! a clean error — never a panic and never a hang (the reader consumes a
//! bounded buffer and returns).

use std::io::Cursor;

use proptest::prelude::*;
use ter_repo::{Record, Schema};
use ter_stream::Arrival;
use ter_text::Dictionary;

use crate::wire::{
    decode_reply, decode_request, encode_reply, encode_request, read_message, write_message, Query,
    Reply, Request, StatsInfo, WindowInfo,
};

fn arb_arrivals() -> impl Strategy<Value = Vec<Arrival>> {
    proptest::collection::vec((0usize..4, any::<u64>(), 0u8..4, any::<bool>()), 0..5).prop_map(
        |specs| {
            let schema = Schema::new(vec!["a", "b"]);
            let mut dict = Dictionary::new();
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (stream_id, timestamp, words, missing))| Arrival {
                    stream_id,
                    timestamp,
                    record: Record::from_texts(
                        &schema,
                        i as u64,
                        &[
                            Some(
                                (0..words)
                                    .map(|w| format!("w{w}"))
                                    .collect::<Vec<_>>()
                                    .join(" ")
                                    .as_str(),
                            ),
                            if missing { None } else { Some("x y") },
                        ],
                        &mut dict,
                    ),
                })
                .collect()
        },
    )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (0u8..10, arb_arrivals(), any::<u64>()).prop_map(|(kind, batch, id)| match kind {
        0 => Request::Ingest(batch),
        1 => Request::Query(Query::Window),
        2 => Request::Query(Query::Entity(id)),
        3 => Request::Query(Query::Results),
        4 => Request::Stats,
        5 => Request::Checkpoint,
        6 => Request::IngestSeq { seq: id, batch },
        7 => Request::MetricsDump,
        8 => Request::TraceDump,
        _ => Request::Shutdown,
    })
}

fn arb_pairs() -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..4),
        0..4,
    )
}

/// Retained traces as the daemon would ship them: every span's
/// `batch_seq` equals its trace's (the wire carries it once, on the
/// trace — the decoder stamps the spans from it).
fn arb_traces() -> impl Strategy<Value = Vec<ter_obs::trace::Trace>> {
    proptest::collection::vec(
        (
            (any::<u64>(), any::<u64>(), any::<u64>()),
            0u64..10,
            any::<bool>(),
            proptest::collection::vec(
                (
                    0u8..ter_obs::trace::kind::NKINDS as u8,
                    any::<u64>(),
                    any::<u64>(),
                ),
                0..6,
            ),
        ),
        0..3,
    )
    .prop_map(|ts| {
        ts.into_iter()
            .map(
                |((seq, start, dur), covered, anomaly, spans)| ter_obs::trace::Trace {
                    batch_seq: seq,
                    start,
                    dur,
                    covered,
                    anomaly,
                    spans: spans
                        .into_iter()
                        .map(|(kind, s, d)| ter_obs::trace::Span {
                            batch_seq: seq,
                            kind,
                            parent: ter_obs::trace::kind::PARENT[kind as usize],
                            start: s,
                            dur: d,
                        })
                        .collect(),
                },
            )
            .collect()
    })
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        0u8..9,
        arb_pairs(),
        proptest::collection::vec(any::<u64>(), 0..4),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u16>()),
        arb_traces(),
    )
        .prop_map(|(kind, pairs, ids, (a, b, c, d), traces)| match kind {
            0 => Reply::Error(format!("error {a}")),
            1 => Reply::Busy,
            2 => Reply::Matches(pairs),
            3 => Reply::Window(WindowInfo {
                len: d as usize,
                capacity: ids.len() * 2,
                live_ids: ids,
            }),
            4 => Reply::Stats(StatsInfo {
                next_batch_seq: a,
                session_arrivals: b,
                wal_bytes: c,
                window_len: d as usize,
                stats: Default::default(),
            }),
            5 => Reply::IngestAck {
                seq: a,
                per_arrival: pairs,
            },
            6 => Reply::IngestBusy { seq: c },
            7 => Reply::Traces {
                critical_path: ter_obs::trace::CriticalPath {
                    traces: a,
                    total_micros: b,
                    queue_wait_micros: c,
                    compute_micros: d as u64,
                    ..ter_obs::trace::CriticalPath::ZERO
                },
                traces,
            },
            _ => Reply::Ack(b),
        })
}

/// Frames a payload the way `write_message` does.
fn framed(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_message(&mut buf, payload).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Requests survive the full encode → frame → unframe → decode path.
    #[test]
    fn requests_round_trip(req in arb_request()) {
        let payload = encode_request(&req);
        let wire = framed(&payload);
        let mut cursor = Cursor::new(&wire);
        let received = read_message(&mut cursor).unwrap();
        prop_assert_eq!(decode_request(&received).unwrap(), req);
    }

    /// Replies survive the same path.
    #[test]
    fn replies_round_trip(reply in arb_reply()) {
        let payload = encode_reply(&reply);
        let wire = framed(&payload);
        let mut cursor = Cursor::new(&wire);
        let received = read_message(&mut cursor).unwrap();
        prop_assert_eq!(decode_reply(&received).unwrap(), reply);
    }

    /// A truncated request frame — any cut point — yields a clean error,
    /// not a panic or a hang.
    #[test]
    fn truncated_frames_error_cleanly(req in arb_request(), cut_raw in any::<usize>()) {
        let wire = framed(&encode_request(&req));
        let cut = cut_raw % wire.len();
        let mut cursor = Cursor::new(&wire[..cut]);
        prop_assert!(read_message(&mut cursor).is_err());
    }

    /// Any single-byte bit flip anywhere in a request frame is rejected:
    /// header flips tear or oversize the frame or break the CRC; payload
    /// flips break the CRC; and even a CRC-colliding payload (impossible
    /// for 1-byte flips) would still have to decode.
    #[test]
    fn bit_flipped_frames_rejected(
        req in arb_request(),
        idx_raw in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let wire = framed(&encode_request(&req));
        let mut bad = wire.clone();
        let idx = idx_raw % bad.len();
        bad[idx] ^= flip;
        let mut cursor = Cursor::new(&bad);
        let outcome = read_message(&mut cursor).and_then(|p| decode_request(&p));
        prop_assert!(outcome.is_err(), "flip {flip:#x} at byte {idx} accepted");
    }

    /// Arbitrary byte soup fed to the frame reader and both payload
    /// decoders returns (any result) without panicking.
    #[test]
    fn byte_soup_never_panics(soup in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut cursor = Cursor::new(&soup);
        let _ = read_message(&mut cursor);
        let _ = decode_request(&soup);
        let _ = decode_reply(&soup);
    }

    /// Byte soup *inside a valid frame* (the CRC is made to match, as a
    /// hostile client could) still decodes to a clean error or a valid
    /// request — never a panic. This is the payload decoder's own line of
    /// defense, below the CRC.
    #[test]
    fn framed_byte_soup_never_panics(soup in proptest::collection::vec(any::<u8>(), 0..200)) {
        let wire = framed(&soup);
        let mut cursor = Cursor::new(&wire);
        let payload = read_message(&mut cursor).unwrap();
        let _ = decode_request(&payload);
        let _ = decode_reply(&payload);
    }
}
