//! The daemon: an event-driven connection front end (a bounded pool of
//! I/O threads driving a `poll(2)` readiness loop) feeding a two-stage
//! engine pipeline — a step stage and a group-commit WAL/checkpoint
//! stage — through one bounded ordered queue.
//!
//! ```text
//!            ┌────────── I/O thread pool (opts.io_threads) ─────────┐
//!  conn 1 ──▶│ poll(2) loop: owns every conn's read+write buffer,   │
//!  conn 2 ──▶│ frames requests, runs the go-back-N gate, writes     │
//!   ...      │ replies; conns per thread: many, threads: bounded    │
//!  conn N ──▶│        │ try_send            ▲ replies (chan + waker)│
//!            └────────┼─────────────────────┼──────────────────────-┘
//!                     ▼                     │
//!            bounded ordered queue          │
//!                     │                     │
//!            ┌────────▼──────────┐  ┌───────┴───────────────────────┐
//!            │ engine thread     │  │ group-commit stage            │
//!            │ step_batch(n)     │─▶│ append(n) [no fsync]          │
//!            │ (single total     │  │ … window fills or interval    │
//!            │  order of ops)    │  │ elapses … one fsync covers    │
//!            │ checkpoint cadence│  │ the window → release its acks │
//!            └───────────────────┘  └───────────────────────────────┘
//! ```
//!
//! Every verb — ingest and introspection alike — goes through the one
//! queue, so the engine observes a single total order of operations no
//! matter how many connections interleave: results are **bit-identical**
//! to a library run feeding the same batches in the same commit order.
//! The queue is bounded; when it is full the I/O thread replies
//! [`Reply::Busy`] (or the sequence-tagged [`Reply::IngestBusy`])
//! immediately instead of buffering unboundedly (explicit backpressure).
//!
//! # The front end
//!
//! Connections do not get threads. The acceptor hands each socket to one
//! of `opts.io_threads` I/O threads round-robin; each thread multiplexes
//! its share of connections with a vendored readiness poller
//! ([`minipoll`]) over non-blocking sockets. The I/O thread owns the
//! connection's read buffer (frame reassembly, CRC check, request
//! decode, the pipelined-ingest go-back-N gate) and write buffer
//! (encoded replies, flushed as the socket accepts them) — so 256 or
//! 10 000 connections cost file descriptors and buffer bytes, not
//! threads. Replies travel from the engine back to the owning I/O thread
//! over a channel paired with a [`minipoll::Waker`]. A connection that
//! stops draining replies is dropped after [`WRITE_TIMEOUT`] without
//! progress, and its buffered outbound bytes never exceed [`WBUF_CAP`].
//!
//! All I/O threads are scoped: [`Server::run`] joins them, and on
//! shutdown each thread first drains every reply still in flight (the
//! graceful-shutdown Ack included) and flushes its write buffers before
//! exiting — a reply a client was promised is written out or provably
//! undeliverable, never raced against teardown.
//!
//! # Group commit
//!
//! The engine thread steps each batch immediately and hands the batch
//! *plus its ready-to-send ack* to the group-commit stage. The stage
//! appends to the WAL without syncing and releases acks only when a
//! **flush** makes the window durable: one `fsync` covers every append
//! since the last flush. A flush fires when `opts.flush_window` appends
//! have accumulated, when the oldest unsynced append turns
//! `opts.flush_interval` old, or when a verb that must reflect durable
//! state (stats/checkpoint/shutdown) reaches the stage.
//! `flush_window = 1` degenerates to fsync-per-batch — bit-identical to
//! the pre-group-commit daemon, acks and all.
//!
//! The WAL-before-ack invariant is unchanged per batch: an acked batch
//! is always fsynced. A kill -9 mid-window may lose
//! appended-but-unacked batches — the client re-feeds them from
//! `Stats.next_batch_seq`, which only ever reports the durable prefix —
//! but never an acked one. Checkpoints are stamped with an explicit WAL
//! position ([`TerStore::checkpoint_at`]) and force a flush first, so a
//! manifest never names state the log could lose.
//!
//! Durability: `Ingest`/`IngestSeq` ack only after the batch is stepped,
//! WAL-appended, and covered by a group fsync. Every `checkpoint_every`
//! batches the engine state is checkpointed, and the store's retention
//! policy (two checkpoint generations, WAL compacted beneath the older
//! one) bounds disk. On startup the daemon recovers via the `ter_store`
//! ladder and resumes at
//! [`Recovery::resume_seq`](ter_store::Recovery::resume_seq). The engine
//! itself runs a persistent worker-pool session
//! ([`ShardedTerIdsEngine::with_pool`]) for the daemon's lifetime —
//! recovery replay included — so no per-batch thread spawn sits on the
//! ingest path.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use minipoll::{Event, Interest, Poller, WakeReceiver, Waker};
use ter_exec::{ExecConfig, PooledEngine, ShardedTerIdsEngine};
use ter_ids::{EngineState, ErProcessor, Params, PruningMode, TerContext};
use ter_query::{BatchDelta, Pattern, StandingQuery};
use ter_store::{context_fingerprint, CompactionPolicy, StoreError, TerStore};
use ter_stream::Arrival;

use crate::wire::{
    decode_request_versioned, encode_reply, write_message, EntityInfo, Query, Reply, Request,
    StatsExInfo, StatsInfo, WindowInfo, MAX_WIRE_LEN, PROTO_V1, PROTO_V3,
};

/// What the checkpoint cadence writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CkptMode {
    /// Every checkpoint is a full [`EngineState`] snapshot (the
    /// historical behavior, and the default).
    #[default]
    Full,
    /// Cadence checkpoints are incremental deltas chained to the last
    /// full snapshot ([`TerStore::checkpoint_delta_at`]); a full rebase
    /// is written whenever the chain outgrows the
    /// [`CompactionPolicy`] bounds (or no base exists yet). At
    /// production window sizes a delta costs bytes proportional to the
    /// *churn* since the last stamp, not to the window.
    Delta,
}

/// How the daemon runs. The defaults suit tests and small deployments;
/// the CLI exposes every knob.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Bounded depth of the ordered ingest queue; a full queue answers
    /// [`Reply::Busy`] / [`Reply::IngestBusy`].
    pub queue_depth: usize,
    /// Checkpoint every N ingested batches (0 = only on graceful
    /// shutdown / explicit `Checkpoint` verbs).
    pub checkpoint_every: u64,
    /// Full-snapshot vs incremental-delta checkpoint cadence.
    pub ckpt_mode: CkptMode,
    /// Byte-based cadence: additionally checkpoint once this many WAL
    /// bytes have been appended since the last checkpoint (0 = count
    /// cadence only). Bounds replay *work* directly — batch counts are a
    /// poor proxy when batch sizes vary, e.g. under bursty arrivals.
    pub checkpoint_bytes: u64,
    /// Engine parallelism.
    pub exec: ExecConfig,
    /// Store retention. Defaults to the bounded-disk two-generation
    /// policy — the daemon is a long-lived process.
    pub compaction: CompactionPolicy,
    /// Test/bench instrumentation: an artificial hold applied before each
    /// batch's step stage. Lets backpressure tests fill the bounded queue
    /// deterministically. Zero (the default) for real deployments.
    pub ingest_hold: Duration,
    /// Size of the I/O thread pool serving every connection (≥ 1). The
    /// thread count never scales with the connection count.
    pub io_threads: usize,
    /// Group-commit count bound: a flush (one fsync covering the whole
    /// window) fires once this many appends are pending. `1` (the
    /// default) is fsync-per-batch — bit-identical to the
    /// pre-group-commit daemon.
    pub flush_window: usize,
    /// Group-commit time bound: a flush fires once the oldest unsynced
    /// append is this old, capping ack latency when the window is slow
    /// to fill.
    pub flush_interval: Duration,
    /// Fault-injection shim: artificial latency added to every WAL
    /// commit fsync (see [`TerStore::set_fsync_delay`]). Zero outside
    /// fault-injection tests and benches.
    pub fsync_delay: Duration,
    /// Standing-query backpressure bound: when a subscriber connection's
    /// un-drained outbound bytes exceed this, the daemon sheds the
    /// subscription with one final [`Reply::Lagged`] (carrying the
    /// resync position) instead of buffering notifications without
    /// bound or stalling ingest. The client resubscribes to resync.
    pub notify_buffer: usize,
    /// Fault-injection shim: panic on the step stage right before this
    /// batch sequence is stepped, exercising the panic-path flight dump.
    /// `None` (the default) outside crash tests.
    pub panic_on_batch: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            queue_depth: 16,
            checkpoint_every: 8,
            ckpt_mode: CkptMode::Full,
            checkpoint_bytes: 0,
            exec: ExecConfig::default(),
            compaction: CompactionPolicy::two_generation(),
            ingest_hold: Duration::ZERO,
            io_threads: 2,
            flush_window: 1,
            flush_interval: Duration::from_millis(5),
            fsync_delay: Duration::ZERO,
            notify_buffer: 256 * 1024,
            panic_on_batch: None,
        }
    }
}

/// What a completed (gracefully shut down) serve run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Batch sequence the daemon resumed at (0 for a fresh directory).
    pub resumed_at: u64,
    /// WAL-suffix arrivals replayed during recovery.
    pub replayed: usize,
    /// Batches ingested during this run.
    pub batches: u64,
    /// Arrivals ingested during this run.
    pub arrivals: u64,
    /// Checkpoints written (cadence + explicit + shutdown).
    pub checkpoints: u64,
    /// Of those, how many were incremental delta stamps
    /// (`ckpt_mode = delta`; the rest were full snapshots / rebases).
    pub delta_checkpoints: u64,
    /// WAL commit fsyncs this run — group commit's instrumented counter.
    /// Equals `batches` at `flush_window = 1`; a filled window of W
    /// batches shares one.
    pub fsyncs: u64,
}

/// Everything that can stop the daemon from serving.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure of the listener itself.
    Io(std::io::Error),
    /// The persistence layer refused (fingerprint mismatch, unbridgeable
    /// recovery gap, disk failure).
    Store(StoreError),
    /// The recovered state could not be imported into the engine.
    Recovery(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
            ServeError::Recovery(e) => write!(f, "recovery error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// Messages into an I/O thread: new connections from the acceptor,
/// replies from the engine / group-commit stage. Each send is paired
/// with a waker kick so a poll-blocked loop picks it up immediately.
enum IoMsg {
    /// A freshly accepted connection to adopt.
    Conn(TcpStream),
    /// A reply for connection `token` (silently dropped if it is gone).
    /// `trace_seq` is the owning batch's trace sequence plus one (zero:
    /// untraced); the I/O thread closes that trace once the reply is in
    /// the connection's write buffer — the write-back instant.
    Reply {
        token: u64,
        proto: u8,
        reply: Reply,
        trace_seq: u64,
    },
}

/// The engine's route back to a connection: which I/O thread (the
/// channel), which connection (the token), and how to interrupt its
/// poll (the waker). Cloned into every queued job; standing
/// subscriptions retain one for the connection's lifetime.
///
/// `gauge` mirrors the connection's un-drained outbound bytes
/// (maintained by the owning I/O thread; [`CONN_GONE`] once the
/// connection is dropped) so the engine thread can shed a lagging
/// subscriber without a round trip.
#[derive(Clone)]
struct ReplyHandle {
    token: u64,
    tx: mpsc::Sender<IoMsg>,
    waker: Arc<Waker>,
    gauge: Arc<AtomicUsize>,
}

impl ReplyHandle {
    fn send(&self, proto: u8, reply: Reply) {
        self.send_with_trace(proto, reply, 0);
    }

    /// Like [`send`], but tags the reply with its batch's causal trace
    /// so the I/O thread can close the trace (and its open write-back
    /// span) when the reply reaches the connection's write buffer.
    ///
    /// [`send`]: ReplyHandle::send
    fn send_traced(&self, proto: u8, reply: Reply, seq: u64) {
        self.send_with_trace(proto, reply, seq + 1);
    }

    fn send_with_trace(&self, proto: u8, reply: Reply, trace_seq: u64) {
        if self
            .tx
            .send(IoMsg::Reply {
                token: self.token,
                proto,
                reply,
                trace_seq,
            })
            .is_ok()
        {
            let _ = self.waker.wake();
        } else if trace_seq > 0 {
            // The I/O thread is gone; nobody is left to close the trace.
            ter_obs::trace::abandon(trace_seq - 1);
        }
    }
}

/// One queued operation: the decoded request, the protocol version it
/// arrived in (replies echo it), and the route back to the connection.
struct Job {
    proto: u8,
    request: Request,
    reply: ReplyHandle,
    /// Trace stamps, zero when tracing is off: when the I/O thread
    /// entered the read/parse pass that surfaced this request, and when
    /// the job cleared the gate into the engine queue. The engine thread
    /// turns them into the frontend and queue-wait spans of an ingest
    /// batch's causal trace; other verbs ignore them.
    t_recv: u64,
    t_enqueue: u64,
}

/// A request to the group-commit WAL/checkpoint stage, issued only by
/// the engine thread. `Commit` is fire-and-forget (its ack is released
/// by the stage after the covering fsync); the rest get exactly one
/// response each, in order.
enum StoreReq {
    /// Append one stepped batch (no fsync yet) and release `reply` to
    /// the connection once a flush covers it. `seq` is the batch's log
    /// sequence — the key of its causal trace.
    Commit {
        seq: u64,
        batch: Arc<Vec<Arrival>>,
        proto: u8,
        reply: Reply,
        handle: ReplyHandle,
    },
    /// Flush, then write a checkpoint; `wal_seq: None` stamps the log's
    /// current end, `Some(seq)` the explicit position of a cadence
    /// checkpoint.
    Checkpoint {
        wal_seq: Option<u64>,
        state: Box<EngineState>,
    },
    /// Flush, then report the store-side counters for a `Stats` reply.
    Stats,
}

enum StoreResp {
    Checkpointed {
        result: Result<u64, String>,
        /// Whether the stamp was an incremental delta (vs a full
        /// snapshot / rebase) — folded into the run report.
        delta: bool,
    },
    Stats {
        next_seq: u64,
        wal_bytes: u64,
        fsyncs: u64,
    },
}

/// An appended-but-unsynced batch's ack, owed to its connection once the
/// covering group fsync lands.
struct PendingAck {
    seq: u64,
    proto: u8,
    reply: Reply,
    handle: ReplyHandle,
}

/// The group-commit WAL/checkpoint stage: owns the [`TerStore`], batches
/// appends into flush windows, and exits when the request sender drops
/// (flushing any open window first so no owed ack is lost).
///
/// One append (or sync) failure disables every *later* append — and
/// every later checkpoint — until the daemon restarts: a failed write
/// may have torn the file tail, and a batch appended (or a manifest
/// written) after it could disagree with what recovery finds. Refusing
/// keeps the durable log a strict prefix of what clients saw acked —
/// the resume contract survives the fault.
struct CommitStage {
    store: TerStore,
    window: usize,
    interval: Duration,
    pending: Vec<PendingAck>,
    window_opened: Instant,
    append_failed: bool,
    mode: CkptMode,
    /// Delta mode's in-memory base: the state and stamp of the last
    /// successful checkpoint, the `prev` side of the next
    /// `delta_between`. `None` until the first full snapshot of the run
    /// (so the first cadence stamp is always a full base).
    last_state: Option<(u64, EngineState)>,
    /// Byte-based cadence threshold (0 = disabled) and the WAL bytes
    /// appended since the last successful checkpoint.
    ckpt_bytes: u64,
    appended_since_ckpt: u64,
    /// Raised towards the step stage when `appended_since_ckpt` crosses
    /// the threshold; the step stage consumes it after the next ingest
    /// and requests a checkpoint at that position.
    ckpt_due: Arc<AtomicBool>,
}

impl CommitStage {
    /// Closes the open flush window: one fsync covers every pending
    /// append, then every owed ack is released in append order. On a
    /// sync failure the owed acks become errors — no client is ever
    /// acked for a batch the disk did not confirm.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        match self.store.sync_wal() {
            Ok(()) => {
                let now = ter_obs::trace::now();
                for ack in self.pending.drain(..) {
                    // Open the write-back span here (zero duration so
                    // far); the I/O thread closes it — and the trace —
                    // when the ack reaches the connection's write
                    // buffer.
                    ter_obs::trace::add(ack.seq, ter_obs::trace::kind::WRITE_BACK, now, 0);
                    ack.handle.send_traced(ack.proto, ack.reply, ack.seq);
                }
            }
            Err(e) => {
                self.append_failed = true;
                let msg = format!("wal sync failed: {e}");
                for ack in self.pending.drain(..) {
                    ter_obs::trace::abandon(ack.seq);
                    ack.handle.send(ack.proto, Reply::Error(msg.clone()));
                }
            }
        }
        ter_obs::OBS.unacked_ingests.set(0);
    }

    fn handle_commit(&mut self, batch: &[Arrival], ack: PendingAck) {
        if self.append_failed {
            ter_obs::trace::abandon(ack.seq);
            ack.handle.send(
                ack.proto,
                Reply::Error(
                    "wal disabled after an earlier append failure (restart the daemon)".into(),
                ),
            );
            return;
        }
        let len_before = self.store.wal_len_bytes();
        match self.store.log_batch_nosync(batch) {
            Ok(wal_seq) => {
                debug_assert_eq!(wal_seq, ack.seq, "engine and WAL sequences in lockstep");
                if self.ckpt_bytes > 0 {
                    self.appended_since_ckpt +=
                        self.store.wal_len_bytes().saturating_sub(len_before);
                    if self.appended_since_ckpt >= self.ckpt_bytes {
                        self.ckpt_due.store(true, Ordering::Release);
                    }
                }
                if self.pending.is_empty() {
                    self.window_opened = Instant::now();
                }
                self.pending.push(ack);
                ter_obs::OBS.unacked_ingests.set(self.pending.len() as u64);
                if self.pending.len() >= self.window {
                    self.flush();
                }
            }
            Err(e) => {
                // The failed write may sit mid-file: flush (and ack) the
                // intact appends before it, then report the failure. A
                // failed append is not a Busy (the client must not
                // silently retry into a diverged log) — it is an error.
                self.flush();
                self.append_failed = true;
                ter_obs::trace::abandon(ack.seq);
                ack.handle
                    .send(ack.proto, Reply::Error(format!("wal append failed: {e}")));
            }
        }
    }

    /// Writes the checkpoint for `state` at WAL position `seq`. In delta
    /// mode, when a base exists at the store's chain tip, the stamp
    /// advances past it, and the chain is within its bounds, the stamp is
    /// an incremental delta (`delta_between(base, state)`); otherwise —
    /// first checkpoint of the run, chain bound exceeded (rebase), or a
    /// non-advancing stamp — it is a full snapshot. A failed delta write
    /// errors loudly and leaves the base and chain tip untouched: the
    /// durable ladder still recovers to the old tip, and the next cadence
    /// retries. Returns `(result, was_delta)`.
    fn write_checkpoint(&mut self, seq: u64, state: &EngineState) -> (Result<u64, String>, bool) {
        if self.mode == CkptMode::Delta && !self.store.needs_rebase() {
            if let Some((base_seq, base_state)) = &self.last_state {
                if self.store.tip_seq() == Some(*base_seq) && seq > *base_seq {
                    if let Ok(d) = ter_ids::delta_between(base_state, state) {
                        let r = self.store.checkpoint_delta_at(*base_seq, seq, &d);
                        if r.is_ok() {
                            self.last_state = Some((seq, state.clone()));
                        }
                        return (r.map_err(|e| e.to_string()), true);
                    }
                }
            }
        }
        let r = self.store.checkpoint_at(seq, state);
        if r.is_ok() && self.mode == CkptMode::Delta {
            // Keep the base only in delta mode — a full-mode daemon never
            // pays the resident snapshot copy.
            self.last_state = Some((seq, state.clone()));
        }
        (r.map_err(|e| e.to_string()), false)
    }

    fn run(mut self, rx: mpsc::Receiver<StoreReq>, tx: mpsc::Sender<StoreResp>) {
        loop {
            let req = if self.pending.is_empty() {
                match rx.recv() {
                    Ok(req) => req,
                    Err(_) => break,
                }
            } else {
                // An open window: wait at most until its time bound.
                let deadline = self.window_opened + self.interval;
                let budget = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(budget) {
                    Ok(req) => req,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        self.flush();
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            };
            match req {
                StoreReq::Commit {
                    seq,
                    batch,
                    proto,
                    reply,
                    handle,
                } => self.handle_commit(
                    &batch,
                    PendingAck {
                        seq,
                        proto,
                        reply,
                        handle,
                    },
                ),
                StoreReq::Checkpoint { wal_seq, state } => {
                    self.flush();
                    let (result, delta) = if self.append_failed {
                        (
                            Err("wal disabled after an earlier append failure".to_string()),
                            false,
                        )
                    } else {
                        let seq = wal_seq.unwrap_or_else(|| self.store.wal_seq());
                        self.write_checkpoint(seq, &state)
                    };
                    if result.is_ok() {
                        self.appended_since_ckpt = 0;
                        self.ckpt_due.store(false, Ordering::Release);
                    }
                    if tx.send(StoreResp::Checkpointed { result, delta }).is_err() {
                        break;
                    }
                }
                StoreReq::Stats => {
                    self.flush();
                    let resp = StoreResp::Stats {
                        next_seq: self.store.wal_seq(),
                        wal_bytes: self.store.wal_len_bytes(),
                        fsyncs: self.store.wal_fsyncs(),
                    };
                    if tx.send(resp).is_err() {
                        break;
                    }
                }
            }
        }
        // Teardown: an owed ack must still be released (or errored) —
        // the I/O threads drain their inboxes before closing sockets.
        self.flush();
    }
}

/// How often a blocked poll loop (or the acceptor) re-checks the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How long a connection's pending reply bytes may sit without a single
/// successful write before the connection is dropped. A client that
/// stops draining replies must not pin buffer memory forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Hard cap on a connection's buffered outbound bytes: one maximal reply
/// plus headroom for a pipeline of small acks. Exceeding it means the
/// client is not draining — the connection is dropped.
const WBUF_CAP: usize = MAX_WIRE_LEN + (MAX_WIRE_LEN >> 1);

/// Per-event read budget: how many inbound bytes one connection may
/// buffer before yielding back to the poll loop (level-triggered, so the
/// remainder is re-reported). Keeps one firehose connection from
/// starving its siblings on the same I/O thread.
const RBUF_SOFT_CAP: usize = 2 * MAX_WIRE_LEN;

/// How long the drain phase of shutdown may spend flushing write
/// buffers to slow-but-alive peers before giving up.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// The poller token reserved for the I/O thread's waker pipe.
const WAKER_TOKEN: u64 = u64::MAX;

/// Gauge sentinel: the connection behind this handle is gone. A standing
/// subscription seeing it is pruned silently (there is no peer left to
/// tell).
const CONN_GONE: usize = usize::MAX;

#[cfg(unix)]
fn stream_fd(s: &TcpStream) -> minipoll::RawFd {
    use std::os::unix::io::AsRawFd;
    s.as_raw_fd()
}

#[cfg(not(unix))]
fn stream_fd(_s: &TcpStream) -> minipoll::RawFd {
    -1
}

/// A bound TER-iDS service. Binding is split from running so callers can
/// learn the ephemeral port (`addr()`) before the blocking serve loop
/// starts — tests and benches bind to `127.0.0.1:0`.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Binds the service listener.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self { listener })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Recovers from `dir`, then serves until a `Shutdown` verb arrives.
    /// Blocking; run it on a dedicated (scoped) thread when the caller
    /// needs to keep working. Returns the run's counters after a graceful
    /// shutdown (a kill -9 by definition returns nothing — that is what
    /// the WAL is for).
    pub fn run(
        self,
        ctx: &TerContext,
        params: Params,
        dir: &Path,
        opts: &ServeOptions,
    ) -> Result<ServeReport, ServeError> {
        let fingerprint = context_fingerprint(ctx, &params);
        let mut store = TerStore::open(dir, fingerprint)?;
        store.set_compaction(opts.compaction);
        store.set_fsync_delay(opts.fsync_delay);
        let recovery = store.recover()?;
        let mut engine = ShardedTerIdsEngine::new(ctx, params, PruningMode::Full, opts.exec);
        if let Some(state) = &recovery.state {
            engine.import_state(state).map_err(ServeError::Recovery)?;
        }
        let resumed_at = recovery.resume_seq();

        let shutdown = AtomicBool::new(false);
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(opts.queue_depth.max(1));
        // Bounded: the engine may run at most a queue's worth of commits
        // ahead of the group-commit stage before blocking, instead of
        // growing an unbounded ack backlog.
        let (store_tx, store_req_rx) = mpsc::sync_channel::<StoreReq>(opts.queue_depth.max(1));
        let (store_resp_tx, store_rx) = mpsc::channel::<StoreResp>();
        self.listener.set_nonblocking(true)?;

        // One inbox + waker pair per I/O thread; the acceptor deals
        // connections round-robin.
        let io_threads = opts.io_threads.max(1);
        let mut io_txs: Vec<mpsc::Sender<IoMsg>> = Vec::with_capacity(io_threads);
        let mut io_wakers: Vec<Arc<Waker>> = Vec::with_capacity(io_threads);
        let mut io_inboxes: Vec<(mpsc::Receiver<IoMsg>, WakeReceiver)> =
            Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let (waker, wake_rx) = WakeReceiver::pair()?;
            let (tx, rx) = mpsc::channel::<IoMsg>();
            io_txs.push(tx);
            io_wakers.push(Arc::new(waker));
            io_inboxes.push((rx, wake_rx));
        }

        let ckpt_due = Arc::new(AtomicBool::new(false));
        let commit = CommitStage {
            store,
            window: opts.flush_window.max(1),
            interval: opts.flush_interval,
            pending: Vec::new(),
            window_opened: Instant::now(),
            append_failed: false,
            mode: opts.ckpt_mode,
            last_state: None,
            ckpt_bytes: opts.checkpoint_bytes,
            appended_since_ckpt: 0,
            ckpt_due: Arc::clone(&ckpt_due),
        };

        let mut report = ServeReport {
            resumed_at,
            replayed: 0,
            batches: 0,
            arrivals: 0,
            checkpoints: 0,
            delta_checkpoints: 0,
            fsyncs: 0,
        };

        std::thread::scope(|scope| -> Result<(), ServeError> {
            // ---- group-commit stage ----
            scope.spawn(move || commit.run(store_req_rx, store_resp_tx));

            // ---- I/O thread pool ----
            let shutdown_ref = &shutdown;
            for (idx, (rx, wake_rx)) in io_inboxes.into_iter().enumerate() {
                let thread = IoThread {
                    poller: Poller::new(),
                    wake_rx,
                    rx,
                    self_tx: Some(io_txs[idx].clone()),
                    waker: Arc::clone(&io_wakers[idx]),
                    job_tx: job_tx.clone(),
                    conns: HashMap::new(),
                    next_token: idx as u64,
                    token_stride: io_threads as u64,
                };
                scope.spawn(move || thread.run(shutdown_ref));
            }
            // The I/O threads hold their own cloned job senders; drop ours
            // so the engine loop's exit conditions are exactly "Shutdown
            // verb" or "every I/O thread gone".
            drop(job_tx);

            // ---- accept loop ----
            let listener = &self.listener;
            let acceptor_wakers: Vec<Arc<Waker>> = io_wakers.iter().map(Arc::clone).collect();
            scope.spawn(move || {
                // `io_txs` moves in here: when the acceptor exits, the
                // only remaining inbox senders are the reply handles —
                // all dropped by teardown — so draining I/O threads see
                // their inboxes disconnect once every owed reply is out.
                let io_txs = io_txs;
                let mut next = 0usize;
                while !shutdown_ref.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let t = next % io_txs.len();
                            next = next.wrapping_add(1);
                            if io_txs[t].send(IoMsg::Conn(stream)).is_ok() {
                                let _ = acceptor_wakers[t].wake();
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => break,
                    }
                }
            });

            // ---- step stage (single total order of operations), with a
            // persistent worker-pool session for the daemon's lifetime ----
            // A panicking step must still run the teardown below: the
            // commit stage, acceptor, and I/O threads only exit once the
            // store sender drops and the shutdown flag rises, and the
            // scope joins them before this panic can propagate.
            let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.with_pool(|pe| {
                    report.replayed = recovery.replay_into(pe);
                    let mut stage = StepStage {
                        pe,
                        store_tx: &store_tx,
                        store_rx: &store_rx,
                        opts,
                        report: &mut report,
                        ckpt_due: &ckpt_due,
                        subs: BTreeMap::new(),
                    };
                    let mut graceful = false;
                    loop {
                        let job = match job_rx.recv() {
                            Ok(job) => job,
                            Err(_) => break,
                        };
                        let is_shutdown = matches!(job.request, Request::Shutdown);
                        stage.handle(job);
                        if is_shutdown {
                            graceful = true;
                            break;
                        }
                    }
                    if !graceful {
                        // The listener died under us — still leave a fresh
                        // checkpoint (graceful shutdown already wrote one).
                        let _ = stage.request_checkpoint(None);
                    }
                    // Final store round-trip: flushes any open window (so
                    // every owed ack is en route before teardown) and folds
                    // the fsync counter into the report.
                    let (_, _, fsyncs) = stage.store_stats();
                    stage.report.fsyncs = fsyncs;
                    ter_obs::dump_now("shutdown");
                });
            }));
            drop(store_tx);
            // Release the acceptor and I/O threads. Each I/O thread
            // drains its inbox (delivering every reply already released,
            // the graceful-shutdown Ack included), flushes its write
            // buffers, and exits; dropping the job queue drops any
            // still-queued reply handles so the drain can terminate.
            shutdown.store(true, Ordering::Release);
            for w in &io_wakers {
                let _ = w.wake();
            }
            drop(job_rx);
            if let Err(panic) = stepped {
                // Every helper thread is released above; re-raise once the
                // scope has joined them. The flight recorder's last act is
                // the post-mortem dump — the in-memory ring would die with
                // the process otherwise.
                ter_obs::flight(ter_obs::kind::PANIC, 0, 0, 0, 0);
                ter_obs::dump_now("panic");
                std::panic::resume_unwind(panic);
            }
            Ok(())
        })?;
        Ok(report)
    }
}

/// One registered standing query: the incrementally-maintained state,
/// the route back to its connection, and the protocol version its
/// notifications are stamped with.
struct Subscription {
    standing: StandingQuery,
    handle: ReplyHandle,
    proto: u8,
}

/// The engine thread's state: the pooled engine, the channel pair to the
/// group-commit stage, the standing-query registry, and the run
/// counters.
struct StepStage<'x, 's, 'a> {
    pe: &'x mut PooledEngine<'s, 'a>,
    store_tx: &'x mpsc::SyncSender<StoreReq>,
    store_rx: &'x mpsc::Receiver<StoreResp>,
    opts: &'x ServeOptions,
    report: &'x mut ServeReport,
    /// Byte-cadence trigger, raised by the commit stage once
    /// `opts.checkpoint_bytes` of WAL have accumulated; consumed here
    /// after the next ingest.
    ckpt_due: &'x AtomicBool,
    /// Standing queries keyed `(connection token, client-chosen sub_id)`
    /// — tokens are pool-unique, so two connections never alias. BTreeMap
    /// for a deterministic notification order per batch.
    subs: BTreeMap<(u64, u64), Subscription>,
}

impl StepStage<'_, '_, '_> {
    fn send_store(&self, req: StoreReq) {
        self.store_tx.send(req).expect("store stage hung up");
    }

    /// Requests a checkpoint of the *current* engine state (flushing the
    /// open flush window first) and waits for it. Returns the stamp's
    /// byte size and whether it was an incremental delta.
    fn request_checkpoint(&mut self, wal_seq: Option<u64>) -> Result<(u64, bool), String> {
        let state = Box::new(self.pe.export_state());
        self.send_store(StoreReq::Checkpoint { wal_seq, state });
        match self.store_rx.recv().expect("store stage hung up") {
            StoreResp::Checkpointed { result, delta } => result.map(|bytes| (bytes, delta)),
            StoreResp::Stats { .. } => {
                unreachable!("store protocol violation: unsolicited Stats")
            }
        }
    }

    /// Store-side counters. Forces a flush, so the returned log end — and
    /// therefore `Stats.next_batch_seq`, the position resuming feeders
    /// trust — covers only durable batches.
    fn store_stats(&mut self) -> (u64, u64, u64) {
        self.send_store(StoreReq::Stats);
        match self.store_rx.recv().expect("store stage hung up") {
            StoreResp::Stats {
                next_seq,
                wal_bytes,
                fsyncs,
            } => (next_seq, wal_bytes, fsyncs),
            StoreResp::Checkpointed { .. } => {
                unreachable!("store protocol violation: unsolicited Checkpointed")
            }
        }
    }

    /// One ingest: step the engine, build the ack, and hand batch + ack
    /// to the group-commit stage, which releases the ack only after the
    /// covering fsync. The WAL-before-ack invariant lives there; the
    /// engine never blocks on the disk for an ingest.
    fn handle_ingest(
        &mut self,
        batch: Vec<Arrival>,
        client_seq: Option<u64>,
        proto: u8,
        handle: ReplyHandle,
        t_recv: u64,
        t_enqueue: u64,
    ) {
        if !self.opts.ingest_hold.is_zero() {
            std::thread::sleep(self.opts.ingest_hold);
        }
        // Commits reach the WAL strictly in step order, so this batch's
        // log sequence is the resume point plus every batch stepped
        // before it.
        let seq = self.report.resumed_at + self.report.batches;
        if self.opts.panic_on_batch == Some(seq) {
            panic!("injected panic before stepping batch {seq}");
        }
        // ---- causal trace: root this batch at its frontend receipt ----
        let t_now = ter_obs::trace::now();
        if t_now > 0 {
            use ter_obs::trace::kind;
            // Stamps may be zero if tracing was off when the I/O thread
            // parsed the frame; fall back to "now" so the trace is still
            // well-formed (with empty frontend/queue-wait spans).
            let t_recv = if t_recv > 0 { t_recv } else { t_now };
            let t_enq = t_enqueue.clamp(t_recv, t_now);
            ter_obs::trace::begin(seq, t_recv);
            // Frontend: socket read + frame decode, up to the gate.
            ter_obs::trace::add(seq, kind::FRONTEND, t_recv, t_enq - t_recv);
            // The go-back-N gate admitted the batch at enqueue time; a
            // zero-duration marker keeps the admission visible.
            ter_obs::trace::add(seq, kind::GATE, t_enq, 0);
            // Queue wait: gate admission to engine pickup.
            ter_obs::trace::add(seq, kind::QUEUE_WAIT, t_enq, t_now - t_enq);
            // Stage spans (impute/traverse/refine/merge/barrier) and the
            // notify fan-out attach themselves to the current register.
            ter_obs::trace::set_current(seq);
        }
        let step_t0 = ter_obs::timer();
        let outputs = self.pe.step_batch(&batch);
        let step_us = ter_obs::OBS.step_micros.observe_since(step_t0);
        if t_now > 0 {
            ter_obs::trace::add_current_elapsed(ter_obs::trace::kind::STEP, step_us);
        }
        self.report.batches += 1;
        self.report.arrivals += batch.len() as u64;
        let delta = if self.subs.is_empty() {
            None
        } else {
            Some(BatchDelta::from_steps(&batch, &outputs))
        };
        let per_arrival: Vec<Vec<(u64, u64)>> =
            outputs.into_iter().map(|o| o.new_matches).collect();
        let reply = match client_seq {
            Some(client_seq) => Reply::IngestAck {
                seq: client_seq,
                per_arrival,
            },
            None => Reply::Matches(per_arrival),
        };
        self.send_store(StoreReq::Commit {
            seq,
            batch: Arc::new(batch),
            proto,
            reply,
            handle,
        });
        // Push standing-query notifications for this batch. They
        // describe stepped (engine) state, not durable state — exactly
        // like the query verbs — and ride the same per-connection
        // minipoll writer path as every other reply. The notify compute
        // still charges to this batch's trace (the current register
        // stays set through the fan-out).
        if let Some(delta) = delta {
            self.notify_subs(&delta, seq + 1);
        }
        ter_obs::trace::clear_current();
        let count_due =
            self.opts.checkpoint_every > 0 && (seq + 1) % self.opts.checkpoint_every == 0;
        // The byte cadence fires on the first ingest after the commit
        // stage reports `checkpoint_bytes` of WAL growth. Consumed with a
        // swap so one crossing yields one checkpoint.
        let bytes_due =
            self.opts.checkpoint_bytes > 0 && self.ckpt_due.swap(false, Ordering::AcqRel);
        if count_due || bytes_due {
            // The engine state covers batches 0..=seq, so the checkpoint
            // is stamped seq+1. A failed cadence checkpoint is not an
            // ingest failure — the WAL already covers the batch; just
            // log it.
            match self.request_checkpoint(Some(seq + 1)) {
                Ok((_, was_delta)) => {
                    self.report.checkpoints += 1;
                    if was_delta {
                        self.report.delta_checkpoints += 1;
                    }
                    // Text exposition rides the checkpoint cadence: one
                    // atomic rewrite of the --metrics-text target per
                    // checkpoint, so a scraper (or a post-SIGKILL
                    // autopsy) always finds a consistent dump.
                    ter_obs::dump_now("checkpoint");
                }
                Err(e) => eprintln!("ter_serve: checkpoint at batch {seq} failed: {e}"),
            }
        }
    }

    /// Advances every standing query past one ingested batch and pushes
    /// the net notifications. `seq` is the engine position *after* the
    /// batch — the position a resubscribing client resyncs at.
    ///
    /// Backpressure: a subscriber whose connection gauge exceeds
    /// `opts.notify_buffer` is shed with one final [`Reply::Lagged`]
    /// (tiny and gauge-exempt) instead of stalling ingest or buffering
    /// without bound; a gauge reading [`CONN_GONE`] means the connection
    /// itself died, so the subscription is pruned silently.
    fn notify_subs(&mut self, delta: &BatchDelta, seq: u64) {
        let eng = self.pe.engine();
        let mut shed: Vec<(u64, u64)> = Vec::new();
        for (&key, sub) in self.subs.iter_mut() {
            let backlog = sub.handle.gauge.load(Ordering::Acquire);
            if backlog == CONN_GONE {
                ter_obs::OBS.shed.inc();
                ter_obs::flight(ter_obs::kind::SHED, seq, key.1, 0, 0);
                shed.push(key);
                continue;
            }
            ter_obs::OBS.backlog_high_water.max(backlog as u64);
            if backlog > self.opts.notify_buffer {
                sub.handle.send(
                    sub.proto,
                    Reply::Lagged {
                        sub_id: key.1,
                        resync_seq: seq,
                    },
                );
                ter_obs::OBS.shed.inc();
                ter_obs::flight(ter_obs::kind::SHED, seq, key.1, backlog as u64, 0);
                shed.push(key);
                continue;
            }
            let (added, retracted) = sub.standing.apply_batch(eng, delta);
            if !added.is_empty() || !retracted.is_empty() {
                let rows = (added.len() + retracted.len()) as u64;
                ter_obs::OBS.notify_events.inc();
                ter_obs::OBS.notify_rows.add(rows);
                ter_obs::flight(ter_obs::kind::NOTIFY, seq, key.1, rows, 0);
                sub.handle.send(
                    sub.proto,
                    Reply::Notify {
                        sub_id: key.1,
                        seq,
                        added,
                        retracted,
                    },
                );
            }
        }
        for key in shed {
            self.subs.remove(&key);
        }
        ter_obs::OBS.subscribers.set(self.subs.len() as u64);
    }

    /// Applies one request. The engine state is always fully stepped
    /// (steps are synchronous), so queries answer directly; verbs whose
    /// replies describe durable positions (stats/checkpoint/shutdown) go
    /// through the group-commit stage, which flushes first.
    fn handle(&mut self, job: Job) {
        let Job {
            proto,
            request,
            reply,
            t_recv,
            t_enqueue,
        } = job;
        // Mirrors the `add(1)` at the I/O threads' successful try_send.
        ter_obs::OBS.engine_queue_depth.sub(1);
        let out = match request {
            Request::Ingest(batch) => {
                self.handle_ingest(batch, None, proto, reply, t_recv, t_enqueue);
                return; // acked by the group-commit stage after the fsync
            }
            Request::IngestSeq { seq, batch } => {
                self.handle_ingest(batch, Some(seq), proto, reply, t_recv, t_enqueue);
                return; // acked by the group-commit stage after the fsync
            }
            Request::Query(Query::Window) => {
                let eng = self.pe.engine();
                Reply::Window(WindowInfo {
                    len: eng.window_len(),
                    capacity: eng.window_capacity(),
                    live_ids: eng.live_ids(),
                })
            }
            Request::Query(Query::Entity(id)) => {
                let eng = self.pe.engine();
                match eng.meta(id) {
                    Some(meta) => {
                        let mut partners: Vec<u64> = eng
                            .results()
                            .iter()
                            .filter_map(|(a, b)| match (a == id, b == id) {
                                (true, _) => Some(b),
                                (_, true) => Some(a),
                                _ => None,
                            })
                            .collect();
                        partners.sort_unstable();
                        Reply::Entity(EntityInfo {
                            found: true,
                            stream_id: meta.stream_id,
                            timestamp: meta.timestamp,
                            possibly_topical: meta.possibly_topical,
                            partners,
                        })
                    }
                    None => Reply::Entity(EntityInfo::default()),
                }
            }
            Request::Query(Query::Results) => {
                let mut pairs: Vec<(u64, u64)> = self.pe.engine().results().iter().collect();
                pairs.sort_unstable();
                Reply::Matches(vec![pairs])
            }
            Request::PatternQuery(src) => match Pattern::parse(&src) {
                Ok(pattern) => {
                    let seq = self.report.resumed_at + self.report.batches;
                    let t0 = ter_obs::timer();
                    let (rows, trace) = ter_query::evaluate_traced(&pattern, self.pe.engine());
                    let us = ter_obs::OBS.eval_micros.observe_since(t0);
                    ter_obs::OBS.oneshot_queries.inc();
                    ter_obs::OBS.oneshot_rows.add(trace.rows);
                    ter_obs::flight(
                        ter_obs::kind::QUERY,
                        seq,
                        trace.order.len() as u64,
                        trace.rows,
                        us,
                    );
                    // Poor-man's EXPLAIN: one flight event per planned
                    // atom, carrying the intermediate cardinality.
                    for (k, &ai) in trace.order.iter().enumerate() {
                        ter_obs::flight(
                            ter_obs::kind::QUERY_ATOM,
                            seq,
                            ai as u64,
                            trace.atom_rows[k],
                            0,
                        );
                    }
                    Reply::Rows { seq, rows }
                }
                Err(e) => Reply::Error(format!("bad pattern: {e}")),
            },
            Request::Subscribe {
                sub_id,
                resync_seq: _,
                pattern: src,
            } => match Pattern::parse(&src) {
                // Always-snapshot semantics: the ack carries the full
                // current result regardless of `resync_seq` — folding
                // Notifies on top of it is correct from any position, so
                // a resync after `Lagged` (or a daemon restart) needs no
                // server-side replay state.
                Ok(pattern) => {
                    let mut standing = StandingQuery::new(pattern);
                    let rows = standing.seed(self.pe.engine());
                    let seq = self.report.resumed_at + self.report.batches;
                    self.subs.insert(
                        (reply.token, sub_id),
                        Subscription {
                            standing,
                            handle: reply.clone(),
                            proto,
                        },
                    );
                    ter_obs::OBS.subscribers.set(self.subs.len() as u64);
                    Reply::SubAck { sub_id, seq, rows }
                }
                Err(e) => Reply::Error(format!("bad pattern: {e}")),
            },
            Request::Unsubscribe { sub_id } => {
                let removed = self.subs.remove(&(reply.token, sub_id)).is_some();
                ter_obs::OBS.subscribers.set(self.subs.len() as u64);
                Reply::Ack(removed as u64)
            }
            Request::Stats => {
                let (next_seq, wal_bytes, fsyncs) = self.store_stats();
                let eng = self.pe.engine();
                let base = StatsInfo {
                    next_batch_seq: next_seq,
                    session_arrivals: self.report.arrivals + self.report.replayed as u64,
                    wal_bytes,
                    window_len: eng.window_len(),
                    stats: eng.prune_stats(),
                };
                if proto >= PROTO_V3 {
                    // A v3 Stats payload opts into the extended reply;
                    // v1/v2 callers keep the exact bytes they always got.
                    Reply::StatsEx(StatsExInfo {
                        base,
                        uptime_micros: ter_obs::epoch_micros(),
                        connections: ter_obs::OBS.connections.get(),
                        subscribers: self.subs.len() as u64,
                        fsyncs,
                    })
                } else {
                    Reply::Stats(base)
                }
            }
            Request::MetricsDump => Reply::Metrics {
                rows: ter_obs::snapshot(),
                flight: ter_obs::flight_snapshot(),
            },
            Request::TraceDump => {
                let (critical_path, traces) = ter_obs::trace::snapshot();
                Reply::Traces {
                    critical_path,
                    traces,
                }
            }
            Request::Checkpoint => match self.request_checkpoint(None) {
                Ok((bytes, was_delta)) => {
                    self.report.checkpoints += 1;
                    if was_delta {
                        self.report.delta_checkpoints += 1;
                    }
                    Reply::Ack(bytes)
                }
                Err(e) => Reply::Error(format!("checkpoint failed: {e}")),
            },
            Request::Shutdown => {
                // The final checkpoint happens *before* the shutdown ack
                // leaves — and its flush releases every pending ingest
                // ack first — so a client that saw the ack can rely on a
                // checkpoint-only (zero-replay) restart.
                match self.request_checkpoint(None) {
                    Ok((_, was_delta)) => {
                        self.report.checkpoints += 1;
                        if was_delta {
                            self.report.delta_checkpoints += 1;
                        }
                        Reply::Ack(self.report.batches)
                    }
                    Err(e) => Reply::Error(format!("shutdown checkpoint failed: {e}")),
                }
            }
        };
        reply.send(proto, out);
    }
}

/// What an I/O helper decided about a connection.
enum Action {
    Keep,
    Drop,
}

/// One connection's state, owned entirely by its I/O thread: the
/// non-blocking socket, the inbound reassembly buffer, the outbound
/// reply buffer, and the go-back-N gate cursor.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// How much of `wbuf` has reached the kernel.
    wpos: usize,
    /// The pipelined-ingest gate (`None` until the first `IngestSeq`).
    expected_seq: Option<u64>,
    /// Flush remaining replies, then close (set on EOF, frame-level
    /// garbage, or engine disconnect).
    closing: bool,
    /// The interest currently registered in the poller.
    interest: Interest,
    last_write_progress: Instant,
    /// Un-drained outbound bytes (`wbuf.len() - wpos`), mirrored for the
    /// engine thread's lag detector; [`CONN_GONE`] after the drop.
    gauge: Arc<AtomicUsize>,
}

impl Conn {
    /// Reconciles the shared gauge after any write-buffer mutation.
    fn sync_gauge(&self) {
        self.gauge
            .store(self.wbuf.len() - self.wpos, Ordering::Release);
    }
}

/// One event-loop thread of the front end: multiplexes its share of
/// connections over a [`Poller`], parses frames into engine jobs, and
/// writes replies delivered to its inbox.
struct IoThread {
    poller: Poller,
    wake_rx: WakeReceiver,
    rx: mpsc::Receiver<IoMsg>,
    /// Our own inbox sender, cloned into every [`ReplyHandle`] this
    /// thread mints. Dropped when the drain phase starts so the inbox
    /// can disconnect once every outstanding handle is gone.
    self_tx: Option<mpsc::Sender<IoMsg>>,
    waker: Arc<Waker>,
    job_tx: mpsc::SyncSender<Job>,
    conns: HashMap<u64, Conn>,
    /// Next connection token. Seeded with the thread's pool index and
    /// advanced by the pool size, so tokens are unique across the whole
    /// pool — standing subscriptions key on `(token, sub_id)` and must
    /// never alias two connections.
    next_token: u64,
    token_stride: u64,
}

impl IoThread {
    fn run(mut self, shutdown: &AtomicBool) {
        self.poller
            .register(self.wake_rx.as_raw_fd(), WAKER_TOKEN, Interest::READABLE);
        let mut events: Vec<Event> = Vec::new();
        let mut draining = false;
        let mut drain_deadline = Instant::now();
        loop {
            if !draining && shutdown.load(Ordering::Acquire) {
                // Drain phase: stop reading requests (the engine is
                // gone), deliver every reply still in the inbox, flush
                // write buffers, then exit.
                draining = true;
                drain_deadline = Instant::now() + DRAIN_GRACE;
                self.self_tx = None;
            }
            let _ = self.poller.wait(&mut events, Some(POLL_INTERVAL));
            for ev in std::mem::take(&mut events) {
                self.handle_event(&ev, draining);
            }
            let inbox_open = self.drain_inbox(draining);
            self.sweep(draining);
            if draining {
                let flushed = self.conns.values().all(|c| c.wpos == c.wbuf.len());
                if (!inbox_open && flushed) || Instant::now() >= drain_deadline {
                    break;
                }
            }
        }
        for (_, conn) in self.conns.drain() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Consumes every queued inbox message. Returns whether the inbox
    /// can still produce messages (senders remain).
    fn drain_inbox(&mut self, draining: bool) -> bool {
        loop {
            match self.rx.try_recv() {
                Ok(IoMsg::Conn(stream)) => {
                    if draining {
                        drop(stream); // refused: the engine is gone
                    } else {
                        self.admit(stream);
                    }
                }
                Ok(IoMsg::Reply {
                    token,
                    proto,
                    reply,
                    trace_seq,
                }) => self.queue_reply(token, proto, &reply, trace_seq),
                Err(mpsc::TryRecvError::Empty) => return true,
                Err(mpsc::TryRecvError::Disconnected) => return false,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += self.token_stride;
        self.poller
            .register(stream_fd(&stream), token, Interest::READABLE);
        self.conns.insert(
            token,
            Conn {
                stream,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                expected_seq: None,
                closing: false,
                interest: Interest::READABLE,
                last_write_progress: Instant::now(),
                gauge: Arc::new(AtomicUsize::new(0)),
            },
        );
        ter_obs::OBS.accepts.inc();
        ter_obs::OBS.connections.add(1);
        ter_obs::flight(ter_obs::kind::CONN_OPEN, 0, token, 0, 0);
    }

    /// Buffers one reply from the engine side and pushes it toward the
    /// socket immediately (the common case: an idle, writable peer).
    fn queue_reply(&mut self, token: u64, proto: u8, reply: &Reply, trace_seq: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            if trace_seq > 0 {
                // The connection died before its ack could be written
                // back — the trace never completes.
                ter_obs::trace::abandon(trace_seq - 1);
            }
            return; // connection died while its job was in flight
        };
        append_reply(conn, proto, reply);
        if trace_seq > 0 {
            // The ack is in the connection's write buffer: the batch's
            // causal chain ends here, closing the open write-back span.
            ter_obs::trace::end(trace_seq - 1, ter_obs::trace::now());
        }
        let act = flush_writes(conn);
        if matches!(act, Action::Drop) || conn.wbuf.len() - conn.wpos > WBUF_CAP {
            self.drop_conn(token);
        }
    }

    fn handle_event(&mut self, ev: &Event, draining: bool) {
        if ev.token == WAKER_TOKEN {
            self.wake_rx.drain();
            return;
        }
        let Some(conn) = self.conns.get_mut(&ev.token) else {
            return; // stale event for a dropped connection
        };
        let mut act = Action::Keep;
        if ev.writable && conn.wpos < conn.wbuf.len() {
            act = flush_writes(conn);
        }
        if matches!(act, Action::Keep) && ev.readable && !draining && !conn.closing {
            if let Some(tx) = self.self_tx.as_ref() {
                act = read_and_parse(conn, ev.token, &self.job_tx, tx, &self.waker);
            }
        }
        if matches!(act, Action::Keep) && ev.closed {
            // Peer hangup/error: whatever is still buffered either
            // flushes right now or never will.
            conn.closing = true;
            if conn.wpos == conn.wbuf.len() {
                act = Action::Drop;
            }
        }
        if matches!(act, Action::Drop) {
            self.drop_conn(ev.token);
        }
    }

    /// Post-event pass over every connection: enforce the write-stall
    /// timeout, retire drained closing connections, and reconcile each
    /// connection's poller interest with what it actually needs next.
    fn sweep(&mut self, draining: bool) {
        let now = Instant::now();
        let mut dead: Vec<u64> = Vec::new();
        for (&token, conn) in self.conns.iter_mut() {
            let write_pending = conn.wpos < conn.wbuf.len();
            if write_pending && now.duration_since(conn.last_write_progress) > WRITE_TIMEOUT {
                dead.push(token);
                continue;
            }
            if conn.closing && !write_pending {
                dead.push(token);
                continue;
            }
            let want = Interest {
                readable: !conn.closing && !draining,
                writable: write_pending,
            };
            if want != conn.interest {
                self.poller.modify(token, want);
                conn.interest = want;
            }
        }
        for token in dead {
            self.drop_conn(token);
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.deregister(token);
            // Tell the engine thread's subscription registry the peer is
            // gone — its standing queries are pruned silently.
            conn.gauge.store(CONN_GONE, Ordering::Release);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            ter_obs::OBS.connections.sub(1);
            ter_obs::flight(ter_obs::kind::CONN_CLOSE, 0, token, 0, 0);
        }
    }
}

/// Encodes one reply into the connection's write buffer. A reply too
/// large for the wire cap degrades to an in-protocol error.
fn append_reply(conn: &mut Conn, proto: u8, reply: &Reply) {
    let mut encoded = encode_reply(reply);
    if encoded.len() > MAX_WIRE_LEN {
        encoded = encode_reply(&Reply::Error(format!(
            "reply of {} bytes exceeds the wire cap",
            encoded.len()
        )));
    }
    // `proto` is the version the request arrived in; replies to v1
    // requests only ever use v1 tags, so no re-encoding is needed — the
    // assertion documents the invariant.
    debug_assert!(
        proto >= encoded[0],
        "v{} reply to a v{proto} request",
        encoded[0]
    );
    if matches!(reply, Reply::Notify { .. }) {
        ter_obs::OBS.notify_bytes.add(encoded.len() as u64);
    }
    // Framing into a Vec cannot fail.
    let _ = write_message(&mut conn.wbuf, &encoded);
    conn.sync_gauge();
}

/// Pushes buffered reply bytes at the socket until it would block.
fn flush_writes(conn: &mut Conn) -> Action {
    let t0 = if conn.wpos < conn.wbuf.len() {
        ter_obs::timer()
    } else {
        None
    };
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Action::Drop,
            Ok(n) => {
                conn.wpos += n;
                conn.last_write_progress = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Action::Drop,
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    conn.sync_gauge();
    ter_obs::OBS.write_micros.observe_since(t0);
    Action::Keep
}

/// The readable half of a connection: pull bytes until the socket is
/// dry, then parse complete frames into engine jobs.
///
/// Frame-level garbage (bad CRC, oversized length) gets an error reply
/// and closes the connection — a byte stream cannot resynchronize after
/// a corrupt frame. Payload-level garbage (intact frame, invalid
/// request) gets an error reply and the connection continues. A full
/// queue gets [`Reply::Busy`] (v1) or the sequence-tagged
/// [`Reply::IngestBusy`] (v2); a stopped engine gets a final error
/// reply.
///
/// The go-back-N gate: the first [`Request::IngestSeq`] fixes the
/// connection's expected sequence; afterwards only `expected` enters the
/// queue (advancing it), everything else — the tail behind a rejection,
/// or a stale retransmit — answers `IngestBusy` without touching the
/// engine. Batches therefore commit in exactly the client's order or not
/// at all.
fn read_and_parse(
    conn: &mut Conn,
    token: u64,
    job_tx: &mpsc::SyncSender<Job>,
    io_tx: &mpsc::Sender<IoMsg>,
    waker: &Arc<Waker>,
) -> Action {
    let t0 = ter_obs::timer();
    // Frontend trace stamp: every batch parsed in this pass roots its
    // causal trace at the instant the socket read began.
    let t_recv = ter_obs::trace::now();
    // ---- read until dry (or over budget; level-triggered re-drive) ----
    let mut saw_eof = false;
    let mut chunk = [0u8; 64 * 1024];
    while conn.rbuf.len() < RBUF_SOFT_CAP {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                if n < chunk.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Action::Drop,
        }
    }
    // ---- parse complete frames ----
    let mut pos = 0usize;
    while !conn.closing {
        let avail = conn.rbuf.len() - pos;
        if avail < 8 {
            break;
        }
        let len = u32::from_le_bytes(conn.rbuf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(conn.rbuf[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_WIRE_LEN {
            append_reply(
                conn,
                PROTO_V1,
                &Reply::Error(format!("bad frame: length {len} exceeds the wire cap")),
            );
            conn.closing = true;
            break;
        }
        if avail < 8 + len {
            break;
        }
        let crc_ok = ter_store::crc32(&conn.rbuf[pos + 8..pos + 8 + len]) == crc;
        if !crc_ok {
            append_reply(
                conn,
                PROTO_V1,
                &Reply::Error("bad frame: CRC mismatch".into()),
            );
            conn.closing = true;
            break;
        }
        let decoded = decode_request_versioned(&conn.rbuf[pos + 8..pos + 8 + len]);
        pos += 8 + len;
        let (proto, request) = match decoded {
            Ok(r) => r,
            Err(e) => {
                append_reply(conn, PROTO_V1, &Reply::Error(format!("bad request: {e}")));
                continue;
            }
        };
        let handle = ReplyHandle {
            token,
            tx: io_tx.clone(),
            waker: Arc::clone(waker),
            gauge: Arc::clone(&conn.gauge),
        };
        // ---- the pipelined-ingest gate ----
        if let Request::IngestSeq { seq, .. } = &request {
            let seq = *seq;
            if conn.expected_seq.is_some_and(|e| seq != e) {
                ter_obs::OBS.busy.inc();
                ter_obs::flight(ter_obs::kind::BUSY, seq, token, 0, 0);
                append_reply(conn, proto, &Reply::IngestBusy { seq });
                continue;
            }
            match job_tx.try_send(Job {
                proto,
                request,
                reply: handle,
                t_recv,
                t_enqueue: ter_obs::trace::now(),
            }) {
                Ok(()) => {
                    conn.expected_seq = Some(seq + 1);
                    ter_obs::OBS.engine_queue_depth.add(1);
                }
                Err(mpsc::TrySendError::Full(_)) => {
                    ter_obs::OBS.busy.inc();
                    ter_obs::flight(ter_obs::kind::BUSY, seq, token, 0, 0);
                    append_reply(conn, proto, &Reply::IngestBusy { seq });
                }
                Err(mpsc::TrySendError::Disconnected(_)) => {
                    append_reply(conn, proto, &Reply::Error("service shutting down".into()));
                    conn.closing = true;
                }
            }
            continue;
        }
        // ---- strict request/reply verbs ----
        match job_tx.try_send(Job {
            proto,
            request,
            reply: handle,
            t_recv,
            t_enqueue: ter_obs::trace::now(),
        }) {
            Ok(()) => ter_obs::OBS.engine_queue_depth.add(1),
            Err(mpsc::TrySendError::Full(_)) => {
                ter_obs::OBS.busy.inc();
                ter_obs::flight(ter_obs::kind::BUSY, 0, token, 0, 0);
                append_reply(conn, proto, &Reply::Busy);
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                append_reply(conn, proto, &Reply::Error("service shutting down".into()));
                conn.closing = true;
            }
        }
    }
    if pos > 0 {
        conn.rbuf.drain(..pos);
    }
    ter_obs::OBS.read_parse_micros.observe_since(t0);
    if saw_eof {
        // Frames already received were processed above (they were on the
        // wire before the close); anything partial is abandoned.
        conn.closing = true;
    }
    // Push any locally generated replies (Busy, gate rejections, errors)
    // at the socket right away.
    let act = flush_writes(conn);
    if conn.wbuf.len() - conn.wpos > WBUF_CAP {
        return Action::Drop;
    }
    act
}
