//! The daemon: a TCP accept loop, reader + writer threads per
//! connection, and a two-stage engine pipeline — a WAL/checkpoint stage
//! and a step stage — fed by one bounded ordered queue.
//!
//! ```text
//!  conn 1 ─reader─┐                       ┌────────── engine thread ──────────┐
//!  conn 2 ─reader─┤  bounded ordered      │ dispatch append(n+1) ──▶ WAL stage │
//!  conn N ─reader─┼──queue (sync_channel)─▶ step_batch(n)  [overlapped]  fsync │
//!                 │  full → IngestBusy    │ wait appended(n) ◀── seq ───────── │
//!                 │         / Busy        │ ack(n) → per-conn writer thread    │
//!                 └──────────────────────▶│ checkpoint_at cadence              │
//!                                         └────────────────────────────────────┘
//! ```
//!
//! Every verb — ingest and introspection alike — goes through the one
//! queue, so the engine observes a single total order of operations no
//! matter how clients interleave: results are **bit-identical** to a
//! library run feeding the same batches in the same commit order. The
//! queue is bounded; when it is full the reader replies [`Reply::Busy`]
//! (or the sequence-tagged [`Reply::IngestBusy`]) immediately instead of
//! buffering unboundedly (explicit backpressure).
//!
//! # The ingest pipeline
//!
//! The engine thread holds at most one *pending* ingest: when batch
//! `n+1` arrives it first dispatches `n+1`'s WAL append to the store
//! stage, then steps the pending batch `n` — so the fsync of `n+1`
//! overlaps the pure compute of `n`. The ack for `n` leaves only after
//! (a) the store stage confirmed `n` durable and (b) `step_batch(n)`
//! produced its matches: the **WAL-before-ack invariant holds per
//! sequence** exactly as in the strict request/reply protocol. When the
//! queue runs dry the pending batch is flushed immediately, so a
//! one-batch-in-flight client sees request/reply latency unchanged.
//! Checkpoints are stamped with an explicit WAL position
//! ([`TerStore::checkpoint_at`]) because the log may already run ahead
//! of the engine state being snapshotted.
//!
//! Pipelined ingest ([`Request::IngestSeq`]) adds a per-connection
//! go-back-N gate in the reader: only the in-sequence prefix enters the
//! queue, everything behind a rejection answers
//! [`Reply::IngestBusy`] — so batches are *never* committed out of
//! client order, which is what keeps a pipelined feed bit-identical to a
//! sequential one.
//!
//! Durability: `Ingest`/`IngestSeq` ack only after the batch is
//! WAL-committed (append + fsync) *and* stepped — a client that saw the
//! ack knows a kill -9 cannot lose that batch. Every `checkpoint_every`
//! batches the engine state is checkpointed, and the store's retention
//! policy (two checkpoint generations, WAL compacted beneath the older
//! one) bounds disk. On startup the daemon recovers via the `ter_store`
//! ladder and resumes at
//! [`Recovery::resume_seq`](ter_store::Recovery::resume_seq). The engine
//! itself runs a persistent worker-pool session
//! ([`ShardedTerIdsEngine::with_pool`]) for the daemon's lifetime —
//! recovery replay included — so no per-batch thread spawn sits on the
//! ingest path.

use std::collections::VecDeque;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use ter_exec::{ExecConfig, PooledEngine, ShardedTerIdsEngine};
use ter_ids::{EngineState, ErProcessor, Params, PruningMode, TerContext};
use ter_store::{context_fingerprint, CompactionPolicy, StoreError, TerStore};
use ter_stream::Arrival;

use crate::wire::{
    decode_request_versioned, encode_reply, write_message, EntityInfo, Query, Reply, Request,
    StatsInfo, WindowInfo, MAX_WIRE_LEN, PROTO_V1,
};

/// How the daemon runs. The defaults suit tests and small deployments;
/// the CLI exposes every knob.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Bounded depth of the ordered ingest queue; a full queue answers
    /// [`Reply::Busy`] / [`Reply::IngestBusy`].
    pub queue_depth: usize,
    /// Checkpoint every N ingested batches (0 = only on graceful
    /// shutdown / explicit `Checkpoint` verbs).
    pub checkpoint_every: u64,
    /// Engine parallelism.
    pub exec: ExecConfig,
    /// Store retention. Defaults to the bounded-disk two-generation
    /// policy — the daemon is a long-lived process.
    pub compaction: CompactionPolicy,
    /// Test/bench instrumentation: an artificial hold applied before each
    /// batch's step stage. Lets backpressure tests fill the bounded queue
    /// deterministically. Zero (the default) for real deployments.
    pub ingest_hold: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            queue_depth: 16,
            checkpoint_every: 8,
            exec: ExecConfig::default(),
            compaction: CompactionPolicy::two_generation(),
            ingest_hold: Duration::ZERO,
        }
    }
}

/// What a completed (gracefully shut down) serve run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Batch sequence the daemon resumed at (0 for a fresh directory).
    pub resumed_at: u64,
    /// WAL-suffix arrivals replayed during recovery.
    pub replayed: usize,
    /// Batches ingested during this run.
    pub batches: u64,
    /// Arrivals ingested during this run.
    pub arrivals: u64,
    /// Checkpoints written (cadence + explicit + shutdown).
    pub checkpoints: u64,
}

/// Everything that can stop the daemon from serving.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure of the listener itself.
    Io(std::io::Error),
    /// The persistence layer refused (fingerprint mismatch, unbridgeable
    /// recovery gap, disk failure).
    Store(StoreError),
    /// The recovered state could not be imported into the engine.
    Recovery(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
            ServeError::Recovery(e) => write!(f, "recovery error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// One queued operation: the decoded request, the protocol version it
/// arrived in (replies echo it), and the connection's writer channel.
struct Job {
    proto: u8,
    request: Request,
    reply_tx: mpsc::Sender<(u8, Reply)>,
}

/// A request to the WAL/checkpoint stage, issued only by the engine
/// thread (responses come back FIFO on one channel).
enum StoreReq {
    /// Durably append one batch (append + fsync). Shared with the step
    /// stage's pending slot — both sides only read it.
    Append(Arc<Vec<Arrival>>),
    /// Write a checkpoint; `wal_seq: None` stamps the log's current end
    /// (only correct when no append is outstanding), `Some(seq)` the
    /// explicit position of a pipelined cadence checkpoint.
    Checkpoint {
        wal_seq: Option<u64>,
        state: Box<EngineState>,
    },
    /// The store-side counters for a `Stats` reply.
    Stats,
}

enum StoreResp {
    Appended(Result<u64, String>),
    Checkpointed(Result<u64, String>),
    Stats { next_seq: u64, wal_bytes: u64 },
}

/// The WAL/checkpoint stage: owns the [`TerStore`], serves the engine
/// thread's requests in order, and exits when the request sender drops.
/// Running appends here is what lets the engine thread overlap batch
/// `n`'s step with batch `n+1`'s fsync.
///
/// One append failure disables every *later* append until the daemon
/// restarts. With the pipeline a batch behind the failed one may already
/// be in this stage's queue; letting it land would give it the failed
/// batch's sequence number, and a feeder resuming from `Stats` would
/// then silently skip the failed batch and double-feed its successor.
/// Refusing keeps the log a strict prefix of what clients saw acked —
/// the resume contract survives the fault.
fn store_stage(mut store: TerStore, rx: mpsc::Receiver<StoreReq>, tx: mpsc::Sender<StoreResp>) {
    let mut append_failed = false;
    while let Ok(req) = rx.recv() {
        let resp = match req {
            StoreReq::Append(batch) => StoreResp::Appended(if append_failed {
                Err("wal disabled after an earlier append failure (restart the daemon)".into())
            } else {
                let r = store.log_batch(&batch).map_err(|e| e.to_string());
                append_failed = r.is_err();
                r
            }),
            StoreReq::Checkpoint { wal_seq, state } => {
                let seq = wal_seq.unwrap_or_else(|| store.wal_seq());
                StoreResp::Checkpointed(store.checkpoint_at(seq, &state).map_err(|e| e.to_string()))
            }
            StoreReq::Stats => StoreResp::Stats {
                next_seq: store.wal_seq(),
                wal_bytes: store.wal_len_bytes(),
            },
        };
        if tx.send(resp).is_err() {
            break;
        }
    }
}

/// Reader-side poll interval: how often a blocked read re-checks the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How long a reply write may block before the connection is dropped. A
/// client that stops draining replies must not pin a writer thread
/// forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// A bound TER-iDS service. Binding is split from running so callers can
/// learn the ephemeral port (`addr()`) before the blocking serve loop
/// starts — tests and benches bind to `127.0.0.1:0`.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Binds the service listener.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self { listener })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Recovers from `dir`, then serves until a `Shutdown` verb arrives.
    /// Blocking; run it on a dedicated (scoped) thread when the caller
    /// needs to keep working. Returns the run's counters after a graceful
    /// shutdown (a kill -9 by definition returns nothing — that is what
    /// the WAL is for).
    pub fn run(
        self,
        ctx: &TerContext,
        params: Params,
        dir: &Path,
        opts: &ServeOptions,
    ) -> Result<ServeReport, ServeError> {
        let fingerprint = context_fingerprint(ctx, &params);
        let mut store = TerStore::open(dir, fingerprint)?;
        store.set_compaction(opts.compaction);
        let recovery = store.recover()?;
        let mut engine = ShardedTerIdsEngine::new(ctx, params, PruningMode::Full, opts.exec);
        if let Some(state) = &recovery.state {
            engine.import_state(state).map_err(ServeError::Recovery)?;
        }
        let resumed_at = recovery.resume_seq();

        let shutdown = AtomicBool::new(false);
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(opts.queue_depth.max(1));
        let (store_tx, store_req_rx) = mpsc::channel::<StoreReq>();
        let (store_resp_tx, store_rx) = mpsc::channel::<StoreResp>();
        self.listener.set_nonblocking(true)?;

        let mut report = ServeReport {
            resumed_at,
            replayed: 0,
            batches: 0,
            arrivals: 0,
            checkpoints: 0,
        };

        std::thread::scope(|scope| -> Result<(), ServeError> {
            // ---- accept loop ----
            let listener = &self.listener;
            let shutdown_ref = &shutdown;
            let acceptor_tx = job_tx.clone();
            scope.spawn(move || {
                while !shutdown_ref.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let conn_tx = acceptor_tx.clone();
                            scope.spawn(move || {
                                serve_connection(stream, conn_tx, shutdown_ref, scope);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => break,
                    }
                }
            });
            // The readers hold their own cloned senders; drop ours so the
            // engine loop's exit conditions are exactly "Shutdown verb" or
            // "acceptor and every reader gone".
            drop(job_tx);

            // ---- WAL/checkpoint stage ----
            scope.spawn(move || store_stage(store, store_req_rx, store_resp_tx));

            // ---- step stage (single total order of operations), with a
            // persistent worker-pool session for the daemon's lifetime ----
            engine.with_pool(|pe| {
                report.replayed = recovery.replay_into(pe);
                let mut stage = StepStage {
                    pe,
                    store_tx: &store_tx,
                    store_rx: &store_rx,
                    buffered_appends: VecDeque::new(),
                    pending: None,
                    opts,
                    report: &mut report,
                };
                let mut graceful = false;
                loop {
                    // Drain-fast: with nothing queued, flush the pending
                    // ingest so a one-in-flight client is acked promptly.
                    let job = match job_rx.try_recv() {
                        Ok(job) => job,
                        Err(mpsc::TryRecvError::Empty) => {
                            stage.flush_pending();
                            match job_rx.recv() {
                                Ok(job) => job,
                                Err(_) => break,
                            }
                        }
                        Err(mpsc::TryRecvError::Disconnected) => break,
                    };
                    let is_shutdown = matches!(job.request, Request::Shutdown);
                    stage.handle(job);
                    if is_shutdown {
                        graceful = true;
                        break;
                    }
                }
                stage.flush_pending();
                if !graceful {
                    // Listener died under us — still leave a fresh
                    // checkpoint (graceful shutdown already wrote one).
                    let _ = stage.request_checkpoint(None);
                }
            });
            drop(store_tx);
            // Release the acceptor and readers, then drain the queue:
            // dropping a pending job drops its reply channel, which wakes
            // its writer with a clean connection close instead of
            // deadlocking the scope join.
            shutdown.store(true, Ordering::Release);
            drop(job_rx);
            Ok(())
        })?;
        Ok(report)
    }
}

/// An ingest whose WAL append is in flight and whose step has not run
/// yet. The ack is owed after both.
struct PendingIngest {
    batch: Arc<Vec<Arrival>>,
    proto: u8,
    reply_tx: mpsc::Sender<(u8, Reply)>,
    /// The client's pipeline sequence tag (`None` for v1 ingest).
    client_seq: Option<u64>,
}

/// The engine thread's state: the pooled engine, the channel pair to the
/// WAL stage, and the one-deep ingest pipeline.
struct StepStage<'x, 's, 'a> {
    pe: &'x mut PooledEngine<'s, 'a>,
    store_tx: &'x mpsc::Sender<StoreReq>,
    store_rx: &'x mpsc::Receiver<StoreResp>,
    /// Append confirmations that arrived while waiting for a checkpoint
    /// or stats response (FIFO, matched to flushes in dispatch order).
    buffered_appends: VecDeque<Result<u64, String>>,
    pending: Option<PendingIngest>,
    opts: &'x ServeOptions,
    report: &'x mut ServeReport,
}

impl StepStage<'_, '_, '_> {
    fn send_store(&self, req: StoreReq) {
        self.store_tx.send(req).expect("store stage hung up");
    }

    /// The next append confirmation, in dispatch order.
    fn wait_appended(&mut self) -> Result<u64, String> {
        if let Some(r) = self.buffered_appends.pop_front() {
            return r;
        }
        match self.store_rx.recv().expect("store stage hung up") {
            StoreResp::Appended(r) => r,
            _ => unreachable!("store protocol violation: expected Appended"),
        }
    }

    /// Requests a checkpoint of the *current* engine state and waits for
    /// it, stashing any append confirmations that arrive first.
    fn request_checkpoint(&mut self, wal_seq: Option<u64>) -> Result<u64, String> {
        let state = Box::new(self.pe.export_state());
        self.send_store(StoreReq::Checkpoint { wal_seq, state });
        loop {
            match self.store_rx.recv().expect("store stage hung up") {
                StoreResp::Checkpointed(r) => return r,
                StoreResp::Appended(r) => self.buffered_appends.push_back(r),
                StoreResp::Stats { .. } => {
                    unreachable!("store protocol violation: unsolicited Stats")
                }
            }
        }
    }

    /// Store-side counters (call with no ingest pending, so the log end
    /// reflects every batch the engine has seen).
    fn store_stats(&mut self) -> (u64, u64) {
        self.send_store(StoreReq::Stats);
        loop {
            match self.store_rx.recv().expect("store stage hung up") {
                StoreResp::Stats {
                    next_seq,
                    wal_bytes,
                } => return (next_seq, wal_bytes),
                StoreResp::Appended(r) => self.buffered_appends.push_back(r),
                StoreResp::Checkpointed(_) => {
                    unreachable!("store protocol violation: unsolicited Checkpointed")
                }
            }
        }
    }

    /// Completes the pending ingest: confirm its WAL append, step the
    /// engine, ack, and run the checkpoint cadence. The WAL-before-ack
    /// invariant lives here.
    fn flush_pending(&mut self) {
        let Some(p) = self.pending.take() else { return };
        let seq = match self.wait_appended() {
            Ok(seq) => seq,
            Err(e) => {
                // A failed append is not a Busy (the client must not
                // silently retry into a diverged log) — it is an error.
                let reply = Reply::Error(format!("wal append failed: {e}"));
                let _ = p.reply_tx.send((p.proto, reply));
                return;
            }
        };
        if !self.opts.ingest_hold.is_zero() {
            std::thread::sleep(self.opts.ingest_hold);
        }
        let outputs = self.pe.step_batch(&p.batch);
        self.report.batches += 1;
        self.report.arrivals += p.batch.len() as u64;
        let per_arrival: Vec<Vec<(u64, u64)>> =
            outputs.into_iter().map(|o| o.new_matches).collect();
        let reply = match p.client_seq {
            Some(client_seq) => Reply::IngestAck {
                seq: client_seq,
                per_arrival,
            },
            None => Reply::Matches(per_arrival),
        };
        let _ = p.reply_tx.send((p.proto, reply));
        if self.opts.checkpoint_every > 0 && (seq + 1) % self.opts.checkpoint_every == 0 {
            // The engine state covers batches 0..=seq, so the checkpoint
            // is stamped seq+1 even if the log already runs ahead. A
            // failed cadence checkpoint is not an ingest failure — the
            // WAL already covers the batch; just log it.
            match self.request_checkpoint(Some(seq + 1)) {
                Ok(_) => self.report.checkpoints += 1,
                Err(e) => eprintln!("ter_serve: checkpoint at batch {seq} failed: {e}"),
            }
        }
    }

    /// Admits one ingest into the pipeline: dispatch its WAL append
    /// first (so the fsync overlaps the step below), then flush the
    /// previous pending batch, then park this one.
    fn enqueue_ingest(
        &mut self,
        batch: Vec<Arrival>,
        client_seq: Option<u64>,
        proto: u8,
        reply_tx: mpsc::Sender<(u8, Reply)>,
    ) {
        // One shared allocation: the store stage appends from it while
        // the pending slot waits to step it — no per-batch deep copy on
        // the ingest hot path.
        let batch = Arc::new(batch);
        self.send_store(StoreReq::Append(Arc::clone(&batch)));
        self.flush_pending();
        self.pending = Some(PendingIngest {
            batch,
            proto,
            reply_tx,
            client_seq,
        });
    }

    /// Applies one request. Non-ingest verbs flush the pipeline first so
    /// every reply reflects a consistent, fully-stepped snapshot.
    fn handle(&mut self, job: Job) {
        let Job {
            proto,
            request,
            reply_tx,
        } = job;
        let reply = match request {
            Request::Ingest(batch) => {
                self.enqueue_ingest(batch, None, proto, reply_tx);
                return; // acked on flush
            }
            Request::IngestSeq { seq, batch } => {
                self.enqueue_ingest(batch, Some(seq), proto, reply_tx);
                return; // acked on flush
            }
            Request::Query(Query::Window) => {
                self.flush_pending();
                let eng = self.pe.engine();
                Reply::Window(WindowInfo {
                    len: eng.window_len(),
                    capacity: eng.window_capacity(),
                    live_ids: eng.live_ids(),
                })
            }
            Request::Query(Query::Entity(id)) => {
                self.flush_pending();
                let eng = self.pe.engine();
                match eng.meta(id) {
                    Some(meta) => {
                        let mut partners: Vec<u64> = eng
                            .results()
                            .iter()
                            .filter_map(|(a, b)| match (a == id, b == id) {
                                (true, _) => Some(b),
                                (_, true) => Some(a),
                                _ => None,
                            })
                            .collect();
                        partners.sort_unstable();
                        Reply::Entity(EntityInfo {
                            found: true,
                            stream_id: meta.stream_id,
                            timestamp: meta.timestamp,
                            possibly_topical: meta.possibly_topical,
                            partners,
                        })
                    }
                    None => Reply::Entity(EntityInfo::default()),
                }
            }
            Request::Query(Query::Results) => {
                self.flush_pending();
                let mut pairs: Vec<(u64, u64)> = self.pe.engine().results().iter().collect();
                pairs.sort_unstable();
                Reply::Matches(vec![pairs])
            }
            Request::Stats => {
                self.flush_pending();
                let (next_seq, wal_bytes) = self.store_stats();
                let eng = self.pe.engine();
                Reply::Stats(StatsInfo {
                    next_batch_seq: next_seq,
                    session_arrivals: self.report.arrivals + self.report.replayed as u64,
                    wal_bytes,
                    window_len: eng.window_len(),
                    stats: eng.prune_stats(),
                })
            }
            Request::Checkpoint => {
                self.flush_pending();
                match self.request_checkpoint(None) {
                    Ok(bytes) => {
                        self.report.checkpoints += 1;
                        Reply::Ack(bytes)
                    }
                    Err(e) => Reply::Error(format!("checkpoint failed: {e}")),
                }
            }
            Request::Shutdown => {
                self.flush_pending();
                // The final checkpoint happens *before* the shutdown ack
                // leaves, so a client that saw the ack can rely on a
                // checkpoint-only (zero-replay) restart.
                match self.request_checkpoint(None) {
                    Ok(_) => {
                        self.report.checkpoints += 1;
                        Reply::Ack(self.report.batches)
                    }
                    Err(e) => Reply::Error(format!("shutdown checkpoint failed: {e}")),
                }
            }
        };
        let _ = reply_tx.send((proto, reply));
    }
}

/// Outcome of one shutdown-aware exact read.
enum ReadOutcome {
    /// The buffer is full.
    Done,
    /// The peer closed (or broke) the connection.
    Disconnected,
    /// Shutdown was requested while the socket was idle.
    ShuttingDown,
}

/// Reads exactly `buf.len()` bytes, retrying read timeouts so that a
/// frame fragmented across TCP segments is reassembled correctly (a plain
/// `read_exact` under a read timeout can consume a partial prefix and
/// then error, desynchronizing the framing). Every timeout re-checks the
/// shutdown flag — once it is set the engine is gone and no request can
/// be served, so even a half-read frame is abandoned; a reader stuck on
/// a silent-but-open connection must never block the scope join in
/// [`Server::run`].
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Acquire) {
            return ReadOutcome::ShuttingDown;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadOutcome::Disconnected,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => return ReadOutcome::Disconnected,
        }
    }
    ReadOutcome::Done
}

/// Drains a connection's reply channel onto the socket in order. A reply
/// too large for the wire cap degrades to an in-protocol error; a failed
/// write closes the connection (the reader notices via the shutdown).
/// Exits — closing the socket — once every reply sender (the reader and
/// any queued jobs) is gone.
fn writer_loop(mut stream: TcpStream, reply_rx: mpsc::Receiver<(u8, Reply)>) {
    while let Ok((proto, reply)) = reply_rx.recv() {
        let mut encoded = encode_reply(&reply);
        if encoded.len() > MAX_WIRE_LEN {
            encoded = encode_reply(&Reply::Error(format!(
                "reply of {} bytes exceeds the wire cap",
                encoded.len()
            )));
        }
        // `proto` is the version the request arrived in; replies to v1
        // requests only ever use v1 tags, so no re-encoding is needed —
        // the assertion documents the invariant.
        debug_assert!(
            proto >= encoded[0],
            "v{} reply to a v{proto} request",
            encoded[0]
        );
        if write_message(&mut stream, &encoded).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// One connection's reader loop: frame in, decode, enqueue; replies flow
/// through a dedicated writer thread so the reader never blocks on a
/// response — that is what lets a window of pipelined ingests ride one
/// connection. Frame-level garbage (bad CRC, oversized length) gets an
/// error reply and closes the connection — a byte stream cannot
/// resynchronize after a corrupt frame. Payload-level garbage (intact
/// frame, invalid request) gets an error reply and the connection
/// continues. A full queue gets [`Reply::Busy`] (v1) or the
/// sequence-tagged [`Reply::IngestBusy`] (v2); a stopped engine gets a
/// final error reply.
///
/// The go-back-N gate: the first [`Request::IngestSeq`] fixes the
/// connection's expected sequence; afterwards only `expected` enters the
/// queue (advancing it), everything else — the tail behind a rejection,
/// or a stale retransmit — answers `IngestBusy` without touching the
/// engine. Batches therefore commit in exactly the client's order or not
/// at all.
fn serve_connection<'scope, 'env>(
    stream: TcpStream,
    job_tx: mpsc::SyncSender<Job>,
    shutdown: &'env AtomicBool,
    scope: &'scope std::thread::Scope<'scope, 'env>,
) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if writer_stream
        .set_write_timeout(Some(WRITE_TIMEOUT))
        .is_err()
    {
        return;
    }
    let (reply_tx, reply_rx) = mpsc::channel::<(u8, Reply)>();
    // Scoped, so `Server::run` joins it: the final reply of a connection
    // — notably the graceful-shutdown Ack — must reach the kernel before
    // teardown, not race a detached thread's scheduling. It exits once
    // every reply sender (this reader, queued jobs, the engine's pending
    // slot) is gone, all of which teardown drops; a client that stops
    // draining is bounded by WRITE_TIMEOUT.
    scope.spawn(move || writer_loop(writer_stream, reply_rx));

    let mut expected_seq: Option<u64> = None;
    loop {
        let mut header = [0u8; 8];
        match read_exact_polling(&mut stream, &mut header, shutdown) {
            ReadOutcome::Done => {}
            ReadOutcome::Disconnected | ReadOutcome::ShuttingDown => return,
        }
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_WIRE_LEN {
            let _ = reply_tx.send((
                PROTO_V1,
                Reply::Error(format!("bad frame: length {len} exceeds the wire cap")),
            ));
            return;
        }
        let mut payload = vec![0u8; len];
        match read_exact_polling(&mut stream, &mut payload, shutdown) {
            ReadOutcome::Done => {}
            ReadOutcome::Disconnected | ReadOutcome::ShuttingDown => return,
        }
        if ter_store::crc32(&payload) != crc {
            let _ = reply_tx.send((PROTO_V1, Reply::Error("bad frame: CRC mismatch".into())));
            return;
        }
        let (proto, request) = match decode_request_versioned(&payload) {
            Ok(r) => r,
            Err(e) => {
                let _ = reply_tx.send((PROTO_V1, Reply::Error(format!("bad request: {e}"))));
                continue;
            }
        };
        // ---- the pipelined-ingest gate ----
        if let Request::IngestSeq { seq, .. } = &request {
            let seq = *seq;
            if expected_seq.is_some_and(|e| seq != e) {
                let _ = reply_tx.send((proto, Reply::IngestBusy { seq }));
                continue;
            }
            match job_tx.try_send(Job {
                proto,
                request,
                reply_tx: reply_tx.clone(),
            }) {
                Ok(()) => expected_seq = Some(seq + 1),
                Err(mpsc::TrySendError::Full(_)) => {
                    let _ = reply_tx.send((proto, Reply::IngestBusy { seq }));
                }
                Err(mpsc::TrySendError::Disconnected(_)) => {
                    let _ = reply_tx.send((proto, Reply::Error("service shutting down".into())));
                    return;
                }
            }
            continue;
        }
        // ---- strict request/reply verbs ----
        match job_tx.try_send(Job {
            proto,
            request,
            reply_tx: reply_tx.clone(),
        }) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(_)) => {
                let _ = reply_tx.send((proto, Reply::Busy));
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                let _ = reply_tx.send((proto, Reply::Error("service shutting down".into())));
                return;
            }
        }
    }
}
