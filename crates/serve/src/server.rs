//! The daemon: a TCP accept loop, one reader thread per connection, and a
//! single engine thread owning the `ShardedTerIdsEngine` + `TerStore`.
//!
//! ```text
//!  conn 1 ──reader──┐
//!  conn 2 ──reader──┤   bounded ordered queue     ┌─ engine thread ──┐
//!  conn N ──reader──┼───────(sync_channel)───────▶│ WAL append+fsync │
//!                   │  full → Reply::Busy         │ step_batch       │
//!                   │                             │ checkpoint cadence│
//!                   └── per-job reply channel ◀───┴──────────────────┘
//! ```
//!
//! Every verb — ingest and introspection alike — goes through the one
//! queue, so the engine observes a single total order of operations no
//! matter how clients interleave: results are **bit-identical** to a
//! library run feeding the same batches in the same commit order. The
//! queue is bounded; when it is full the reader replies [`Reply::Busy`]
//! immediately instead of buffering unboundedly (explicit backpressure).
//!
//! Durability: `Ingest` acks only after the batch is WAL-committed
//! (append + fsync) *and* stepped — a client that saw `Matches` knows a
//! kill -9 cannot lose that batch. Every `checkpoint_every` batches the
//! engine state is checkpointed, and the store's retention policy (two
//! checkpoint generations, WAL compacted beneath the older one) bounds
//! disk. On startup the daemon recovers via the `ter_store` ladder and
//! resumes at [`Recovery::resume_seq`](ter_store::Recovery::resume_seq).

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{ErProcessor, Params, PruningMode, TerContext};
use ter_store::{context_fingerprint, CompactionPolicy, StoreError, TerStore};

use crate::wire::{
    decode_request, encode_reply, write_message, EntityInfo, Query, Reply, Request, StatsInfo,
    WindowInfo, MAX_WIRE_LEN,
};

/// How the daemon runs. The defaults suit tests and small deployments;
/// the CLI exposes every knob.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Bounded depth of the ordered ingest queue; a full queue answers
    /// [`Reply::Busy`].
    pub queue_depth: usize,
    /// Checkpoint every N ingested batches (0 = only on graceful
    /// shutdown / explicit `Checkpoint` verbs).
    pub checkpoint_every: u64,
    /// Engine parallelism.
    pub exec: ExecConfig,
    /// Store retention. Defaults to the bounded-disk two-generation
    /// policy — the daemon is a long-lived process.
    pub compaction: CompactionPolicy,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            queue_depth: 16,
            checkpoint_every: 8,
            exec: ExecConfig::default(),
            compaction: CompactionPolicy::two_generation(),
        }
    }
}

/// What a completed (gracefully shut down) serve run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Batch sequence the daemon resumed at (0 for a fresh directory).
    pub resumed_at: u64,
    /// WAL-suffix arrivals replayed during recovery.
    pub replayed: usize,
    /// Batches ingested during this run.
    pub batches: u64,
    /// Arrivals ingested during this run.
    pub arrivals: u64,
    /// Checkpoints written (cadence + explicit + shutdown).
    pub checkpoints: u64,
}

/// Everything that can stop the daemon from serving.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure of the listener itself.
    Io(std::io::Error),
    /// The persistence layer refused (fingerprint mismatch, unbridgeable
    /// recovery gap, disk failure).
    Store(StoreError),
    /// The recovered state could not be imported into the engine.
    Recovery(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
            ServeError::Recovery(e) => write!(f, "recovery error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// One queued operation: the decoded request plus the channel the engine
/// thread answers on.
struct Job {
    request: Request,
    reply_tx: mpsc::Sender<Reply>,
}

/// Reader-side poll interval: how often a blocked read re-checks the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A bound TER-iDS service. Binding is split from running so callers can
/// learn the ephemeral port (`addr()`) before the blocking serve loop
/// starts — tests and benches bind to `127.0.0.1:0`.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Binds the service listener.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self { listener })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Recovers from `dir`, then serves until a `Shutdown` verb arrives.
    /// Blocking; run it on a dedicated (scoped) thread when the caller
    /// needs to keep working. Returns the run's counters after a graceful
    /// shutdown (a kill -9 by definition returns nothing — that is what
    /// the WAL is for).
    pub fn run(
        self,
        ctx: &TerContext,
        params: Params,
        dir: &Path,
        opts: &ServeOptions,
    ) -> Result<ServeReport, ServeError> {
        let fingerprint = context_fingerprint(ctx, &params);
        let mut store = TerStore::open(dir, fingerprint)?;
        store.set_compaction(opts.compaction);
        let recovery = store.recover()?;
        let mut engine = ShardedTerIdsEngine::new(ctx, params, PruningMode::Full, opts.exec);
        if let Some(state) = &recovery.state {
            engine.import_state(state).map_err(ServeError::Recovery)?;
        }
        let replayed = recovery.replay_into(&mut engine);
        let resumed_at = recovery.resume_seq();

        let shutdown = AtomicBool::new(false);
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(opts.queue_depth.max(1));
        self.listener.set_nonblocking(true)?;

        let mut report = ServeReport {
            resumed_at,
            replayed,
            batches: 0,
            arrivals: 0,
            checkpoints: 0,
        };

        std::thread::scope(|scope| -> Result<(), ServeError> {
            // ---- accept loop ----
            let listener = &self.listener;
            let shutdown_ref = &shutdown;
            let acceptor_tx = job_tx.clone();
            scope.spawn(move || {
                while !shutdown_ref.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let conn_tx = acceptor_tx.clone();
                            scope.spawn(move || {
                                serve_connection(stream, conn_tx, shutdown_ref);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => break,
                    }
                }
            });
            // The readers hold their own cloned senders; drop ours so the
            // engine loop's exit conditions are exactly "Shutdown verb" or
            // "acceptor and every reader gone".
            drop(job_tx);

            // ---- engine loop (single total order of operations) ----
            let mut graceful = false;
            while let Ok(job) = job_rx.recv() {
                let is_shutdown = matches!(job.request, Request::Shutdown);
                let reply = handle_request(job.request, &mut store, &mut engine, opts, &mut report);
                // The final checkpoint happens *before* the shutdown ack
                // leaves, so a client that saw the ack can rely on a
                // checkpoint-only (zero-replay) restart.
                let _ = job.reply_tx.send(reply);
                if is_shutdown {
                    graceful = true;
                    break;
                }
            }
            if !graceful {
                // Listener died under us — still leave a fresh checkpoint.
                let _ = store.checkpoint(&engine.export_state());
            }
            // Release the acceptor and readers, then drain the queue:
            // dropping a pending job drops its reply channel, which wakes
            // its reader with a clean "shutting down" error instead of
            // deadlocking the scope join.
            shutdown.store(true, Ordering::Release);
            drop(job_rx);
            Ok(())
        })?;
        Ok(report)
    }
}

/// Applies one request to the engine + store. Runs on the engine thread —
/// the single mutator — so every reply reflects a consistent snapshot.
fn handle_request(
    request: Request,
    store: &mut TerStore,
    engine: &mut ShardedTerIdsEngine<'_>,
    opts: &ServeOptions,
    report: &mut ServeReport,
) -> Reply {
    match request {
        Request::Ingest(batch) => {
            // Write-ahead: the batch is durable before the engine sees it,
            // and the ack is sent only after both.
            let seq = match store.log_batch(&batch) {
                Ok(seq) => seq,
                Err(e) => return Reply::Error(format!("wal append failed: {e}")),
            };
            let outputs = engine.step_batch(&batch);
            report.batches += 1;
            report.arrivals += batch.len() as u64;
            let per_arrival = outputs.into_iter().map(|o| o.new_matches).collect();
            if opts.checkpoint_every > 0 && (seq + 1) % opts.checkpoint_every == 0 {
                // A failed cadence checkpoint is not an ingest failure —
                // the WAL already covers the batch; just log it.
                match store.checkpoint(&engine.export_state()) {
                    Ok(_) => report.checkpoints += 1,
                    Err(e) => eprintln!("ter_serve: checkpoint at batch {seq} failed: {e}"),
                }
            }
            Reply::Matches(per_arrival)
        }
        Request::Query(Query::Window) => Reply::Window(WindowInfo {
            len: engine.window_len(),
            capacity: engine.window_capacity(),
            live_ids: engine.live_ids(),
        }),
        Request::Query(Query::Entity(id)) => match engine.meta(id) {
            Some(meta) => {
                let info = EntityInfo {
                    found: true,
                    stream_id: meta.stream_id,
                    timestamp: meta.timestamp,
                    possibly_topical: meta.possibly_topical,
                    partners: Vec::new(),
                };
                let mut partners: Vec<u64> = engine
                    .results()
                    .iter()
                    .filter_map(|(a, b)| match (a == id, b == id) {
                        (true, _) => Some(b),
                        (_, true) => Some(a),
                        _ => None,
                    })
                    .collect();
                partners.sort_unstable();
                Reply::Entity(EntityInfo { partners, ..info })
            }
            None => Reply::Entity(EntityInfo::default()),
        },
        Request::Query(Query::Results) => {
            let mut pairs: Vec<(u64, u64)> = engine.results().iter().collect();
            pairs.sort_unstable();
            Reply::Matches(vec![pairs])
        }
        Request::Stats => Reply::Stats(StatsInfo {
            next_batch_seq: store.wal_seq(),
            session_arrivals: report.arrivals + report.replayed as u64,
            wal_bytes: store.wal_len_bytes(),
            window_len: engine.window_len(),
            stats: engine.prune_stats(),
        }),
        Request::Checkpoint => match store.checkpoint(&engine.export_state()) {
            Ok(bytes) => {
                report.checkpoints += 1;
                Reply::Ack(bytes)
            }
            Err(e) => Reply::Error(format!("checkpoint failed: {e}")),
        },
        Request::Shutdown => match store.checkpoint(&engine.export_state()) {
            Ok(_) => {
                report.checkpoints += 1;
                Reply::Ack(report.batches)
            }
            Err(e) => Reply::Error(format!("shutdown checkpoint failed: {e}")),
        },
    }
}

/// Outcome of one shutdown-aware exact read.
enum ReadOutcome {
    /// The buffer is full.
    Done,
    /// The peer closed (or broke) the connection.
    Disconnected,
    /// Shutdown was requested while the socket was idle.
    ShuttingDown,
}

/// Reads exactly `buf.len()` bytes, retrying read timeouts so that a
/// frame fragmented across TCP segments is reassembled correctly (a plain
/// `read_exact` under a read timeout can consume a partial prefix and
/// then error, desynchronizing the framing). Every timeout re-checks the
/// shutdown flag — once it is set the engine is gone and no request can
/// be served, so even a half-read frame is abandoned; a reader stuck on
/// a silent-but-open connection must never block the scope join in
/// [`Server::run`].
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Acquire) {
            return ReadOutcome::ShuttingDown;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadOutcome::Disconnected,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => return ReadOutcome::Disconnected,
        }
    }
    ReadOutcome::Done
}

/// One connection's reader loop: frame in, decode, enqueue, frame out.
/// Frame-level garbage (bad CRC, oversized length) gets an error reply
/// and closes the connection — a byte stream cannot resynchronize after a
/// corrupt frame. Payload-level garbage (intact frame, invalid request)
/// gets an error reply and the connection continues. A full queue gets
/// [`Reply::Busy`]; a stopped engine gets a final error reply.
/// How long a reply write may block before the connection is dropped. A
/// client that stops draining replies must not pin this reader thread —
/// and with it the scope join in [`Server::run`] — forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

fn serve_connection(mut stream: TcpStream, job_tx: mpsc::SyncSender<Job>, shutdown: &AtomicBool) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
        || stream.set_write_timeout(Some(WRITE_TIMEOUT)).is_err()
    {
        return;
    }
    loop {
        let mut header = [0u8; 8];
        match read_exact_polling(&mut stream, &mut header, shutdown) {
            ReadOutcome::Done => {}
            ReadOutcome::Disconnected | ReadOutcome::ShuttingDown => return,
        }
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_WIRE_LEN {
            let _ = write_message(
                &mut stream,
                &encode_reply(&Reply::Error(format!(
                    "bad frame: length {len} exceeds the wire cap"
                ))),
            );
            return;
        }
        let mut payload = vec![0u8; len];
        match read_exact_polling(&mut stream, &mut payload, shutdown) {
            ReadOutcome::Done => {}
            ReadOutcome::Disconnected | ReadOutcome::ShuttingDown => return,
        }
        if ter_store::crc32(&payload) != crc {
            let _ = write_message(
                &mut stream,
                &encode_reply(&Reply::Error("bad frame: CRC mismatch".into())),
            );
            return;
        }
        let request = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // A failed (or timed-out, hence possibly partial) error
                // write desynchronizes the stream — close instead of
                // continuing.
                if write_message(
                    &mut stream,
                    &encode_reply(&Reply::Error(format!("bad request: {e}"))),
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        let reply = match job_tx.try_send(Job { request, reply_tx }) {
            Ok(()) => match reply_rx.recv() {
                Ok(reply) => reply,
                // Engine stopped with the job still queued.
                Err(_) => Reply::Error("service shutting down".into()),
            },
            Err(mpsc::TrySendError::Full(_)) => Reply::Busy,
            Err(mpsc::TrySendError::Disconnected(_)) => {
                Reply::Error("service shutting down".into())
            }
        };
        // A reply too large for the wire cap degrades to an in-protocol
        // error — the release-mode cap check in `write_message` would
        // otherwise close the connection without telling the peer why.
        let mut encoded = encode_reply(&reply);
        if encoded.len() > MAX_WIRE_LEN {
            encoded = encode_reply(&Reply::Error(format!(
                "reply of {} bytes exceeds the wire cap",
                encoded.len()
            )));
        }
        if write_message(&mut stream, &encoded).is_err() {
            return;
        }
    }
}
