//! The client side of the wire protocol: a thin synchronous
//! request/reply wrapper over one TCP connection.
//!
//! Each call writes one framed request and blocks for its framed reply.
//! [`Client::ingest`] surfaces [`Reply::Busy`] to the caller;
//! [`Client::ingest_wait`] retries it with a small backoff — the polite
//! default for feeders that just want their stream committed.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use ter_stream::Arrival;

use crate::wire::{
    decode_reply, encode_request, read_message, write_message, EntityInfo, Query, Reply, Request,
    StatsInfo, WindowInfo, WireError,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server answered [`Reply::Error`].
    Server(String),
    /// The server answered with a reply kind the verb does not produce —
    /// a protocol bug, not an operational condition.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Unexpected(kind) => write!(f, "unexpected {kind} reply"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Per-arrival match lists for one ingested batch, in arrival order.
pub type BatchMatches = Vec<Vec<(u64, u64)>>;

/// One connection to a `ter_serve` daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    /// Connects, retrying until `deadline_in` elapses — for harnesses and
    /// CLIs that race daemon startup (context building takes a moment).
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Copy,
        deadline_in: Duration,
    ) -> std::io::Result<Self> {
        let deadline = Instant::now() + deadline_in;
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// One request/reply round trip. [`Reply::Busy`] is surfaced as-is —
    /// the daemon answers it for *any* verb when its bounded queue is
    /// full.
    pub fn call(&mut self, req: &Request) -> Result<Reply, ClientError> {
        write_message(&mut self.stream, &encode_request(req))?;
        let payload = read_message(&mut self.stream)?;
        match decode_reply(&payload)? {
            Reply::Error(msg) => Err(ClientError::Server(msg)),
            reply => Ok(reply),
        }
    }

    /// [`Client::call`], retrying `Busy` with a small backoff — the right
    /// default for introspection and control verbs, which are idempotent
    /// and cheap for the engine.
    fn call_wait(&mut self, req: &Request) -> Result<Reply, ClientError> {
        loop {
            match self.call(req)? {
                Reply::Busy => std::thread::sleep(Duration::from_millis(2)),
                reply => return Ok(reply),
            }
        }
    }

    /// Ingests one batch. `Ok(Some(per_arrival_matches))` on commit,
    /// `Ok(None)` when the daemon answered [`Reply::Busy`] — the batch
    /// was *not* committed and should be resent.
    pub fn ingest(&mut self, batch: &[Arrival]) -> Result<Option<BatchMatches>, ClientError> {
        match self.call(&Request::Ingest(batch.to_vec()))? {
            Reply::Matches(per_arrival) => Ok(Some(per_arrival)),
            Reply::Busy => Ok(None),
            _ => Err(ClientError::Unexpected("ingest")),
        }
    }

    /// Ingests one batch, retrying `Busy` replies with a small backoff
    /// until the daemon commits it.
    pub fn ingest_wait(&mut self, batch: &[Arrival]) -> Result<BatchMatches, ClientError> {
        loop {
            if let Some(matches) = self.ingest(batch)? {
                return Ok(matches);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Window occupancy and live ids.
    pub fn window(&mut self) -> Result<WindowInfo, ClientError> {
        match self.call_wait(&Request::Query(Query::Window))? {
            Reply::Window(info) => Ok(info),
            _ => Err(ClientError::Unexpected("window")),
        }
    }

    /// One live tuple's coordinates and match partners.
    pub fn entity(&mut self, id: u64) -> Result<EntityInfo, ClientError> {
        match self.call_wait(&Request::Query(Query::Entity(id)))? {
            Reply::Entity(info) => Ok(info),
            _ => Err(ClientError::Unexpected("entity")),
        }
    }

    /// The live result set, `(min, max)`-normalized and sorted.
    pub fn results(&mut self) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.call_wait(&Request::Query(Query::Results))? {
            Reply::Matches(mut lists) if lists.len() == 1 => Ok(lists.pop().unwrap()),
            Reply::Matches(_) => Err(ClientError::Unexpected("results")),
            _ => Err(ClientError::Unexpected("results")),
        }
    }

    /// Service counters.
    pub fn stats(&mut self) -> Result<StatsInfo, ClientError> {
        match self.call_wait(&Request::Stats)? {
            Reply::Stats(info) => Ok(info),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }

    /// Forces a checkpoint; returns its byte size.
    pub fn checkpoint(&mut self) -> Result<u64, ClientError> {
        match self.call_wait(&Request::Checkpoint)? {
            Reply::Ack(bytes) => Ok(bytes),
            _ => Err(ClientError::Unexpected("checkpoint")),
        }
    }

    /// Gracefully stops the daemon (checkpoint, then ack); returns the
    /// batches the daemon served this run.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        match self.call_wait(&Request::Shutdown)? {
            Reply::Ack(batches) => Ok(batches),
            _ => Err(ClientError::Unexpected("shutdown")),
        }
    }
}
