//! The client side of the wire protocol.
//!
//! [`Client`] is the synchronous request/reply core over one TCP
//! connection: each call writes one framed request and blocks for its
//! framed reply. [`Client::ingest`] surfaces [`Reply::Busy`] to the
//! caller; [`Client::ingest_wait`] retries it with a small backoff — the
//! polite default for feeders that just want their stream committed.
//!
//! [`Client::ingest_pipelined`] is the windowed (v2) driver: it keeps up
//! to `W` sequence-tagged batches unacked on the wire, hiding the
//! round-trip and letting the daemon overlap WAL fsync with engine
//! compute. Backpressure is go-back-N: on any [`Reply::IngestBusy`] the
//! client drains every outstanding reply, rewinds to its lowest unacked
//! batch, and resends — the daemon's in-sequence gate guarantees batches
//! commit in client order or not at all, so the result stream is
//! bit-identical to a strict request/reply feed.
//!
//! [`ResilientClient`] wraps all of that with transparent
//! re-dial-and-resume: on a connection loss it reconnects with backoff,
//! asks the daemon's `Stats` where the committed stream ends, and
//! continues the feed from exactly there — the client-side half of the
//! crash-recovery story.

use std::collections::{BTreeSet, VecDeque};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use ter_stream::Arrival;

use ter_obs::{MetricRow, TraceEvent};

use crate::wire::{
    decode_reply, encode_ingest_seq, encode_request, encode_stats_v3, read_message, write_message,
    EntityInfo, Query, Reply, Request, StatsExInfo, StatsInfo, WindowInfo, WireError,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server answered [`Reply::Error`].
    Server(String),
    /// The server answered with a reply kind the verb does not produce —
    /// a protocol bug, not an operational condition.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Unexpected(kind) => write!(f, "unexpected {kind} reply"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Per-arrival match lists for one ingested batch, in arrival order.
pub type BatchMatches = Vec<Vec<(u64, u64)>>;

/// What the daemon acknowledged a subscription with: the engine position
/// of the snapshot and the full current result rows at that position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubAckInfo {
    /// The subscriber-chosen subscription id, echoed back.
    pub sub_id: u64,
    /// Engine batch position of the snapshot; the first `Notify` carries
    /// a strictly later position.
    pub seq: u64,
    /// The standing query's complete result at `seq` (sorted rows).
    pub rows: Vec<Vec<u64>>,
}

/// One pushed event on a subscriber connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubEvent {
    /// Net result change of one ingested batch.
    Notify {
        sub_id: u64,
        /// Engine position after the batch.
        seq: u64,
        added: Vec<Vec<u64>>,
        retracted: Vec<Vec<u64>>,
    },
    /// The daemon shed this subscription under backpressure; the
    /// notification stream has a gap. Resubscribe (quoting `resync_seq`)
    /// for a fresh snapshot.
    Lagged { sub_id: u64, resync_seq: u64 },
}

/// Client-side fold of a standing query: snapshot plus every `Notify`
/// applied in order. The differential-oracle contract makes
/// [`SubscriptionFold::rows`] bit-identical to a one-shot
/// [`Client::pattern_query`] at the same engine position.
#[derive(Debug, Clone, Default)]
pub struct SubscriptionFold {
    /// Engine position the fold has caught up to.
    pub seq: u64,
    /// `Some(resync_seq)` once a [`SubEvent::Lagged`] arrived — the fold
    /// is stale from that point and needs a resubscribe.
    pub lagged: Option<u64>,
    rows: BTreeSet<Vec<u64>>,
}

impl SubscriptionFold {
    /// Starts the fold from a subscription snapshot.
    pub fn start(ack: &SubAckInfo) -> Self {
        Self {
            seq: ack.seq,
            lagged: None,
            rows: ack.rows.iter().cloned().collect(),
        }
    }

    /// Applies one pushed event. Panics if a notification retracts a row
    /// the fold never had (or re-adds one it has) — that is a protocol
    /// contract violation the oracle suites must surface, not mask.
    pub fn apply(&mut self, ev: &SubEvent) {
        match ev {
            SubEvent::Notify {
                seq,
                added,
                retracted,
                ..
            } => {
                ter_query::fold_notification(&mut self.rows, added, retracted);
                self.seq = *seq;
            }
            SubEvent::Lagged { resync_seq, .. } => self.lagged = Some(*resync_seq),
        }
    }

    /// The folded result rows, sorted.
    pub fn rows(&self) -> Vec<Vec<u64>> {
        self.rows.iter().cloned().collect()
    }
}

/// What one [`Client::ingest_pipelined`] run committed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelinedIngest {
    /// Per-batch match lists, in batch order (each entry is that batch's
    /// per-arrival lists) — concatenated, bit-identical to a strict
    /// request/reply feed of the same batches.
    pub per_batch: Vec<BatchMatches>,
    /// `IngestBusy` rejections absorbed (backpressure events the go-back-N
    /// loop retried).
    pub busy_retries: u64,
}

/// One connection to a `ter_serve` daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Next pipelined-ingest sequence tag. Per-connection monotonic — the
    /// daemon's in-sequence gate pins the connection to this counter, so
    /// it never resets while the connection lives.
    pipeline_seq: u64,
    /// Pushed subscription events that arrived interleaved with a
    /// request/reply exchange; [`Client::next_event`] drains these before
    /// touching the socket.
    pending: VecDeque<SubEvent>,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            pipeline_seq: 0,
            pending: VecDeque::new(),
        })
    }

    /// Bounds every socket read and write (`None` restores blocking
    /// forever, the default). Opt-in: a client talking to a daemon that
    /// group-commits with a long flush interval, or one that must detect
    /// a hung daemon, sets this so no call can stall it indefinitely. A
    /// timeout surfaces as a [`WireError`] on the call; set it well above
    /// the daemon's `flush_interval` or healthy acks will be cut off
    /// mid-read.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Connects, retrying until `deadline_in` elapses — for harnesses and
    /// CLIs that race daemon startup (context building takes a moment).
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Copy,
        deadline_in: Duration,
    ) -> std::io::Result<Self> {
        let deadline = Instant::now() + deadline_in;
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// One request/reply round trip. [`Reply::Busy`] is surfaced as-is —
    /// the daemon answers it for *any* verb when its bounded queue is
    /// full. Pushed subscription events that land between the request
    /// and its reply are diverted to the [`Client::next_event`] queue,
    /// so control verbs stay usable on a subscriber connection.
    pub fn call(&mut self, req: &Request) -> Result<Reply, ClientError> {
        write_message(&mut self.stream, &encode_request(req))?;
        loop {
            let payload = read_message(&mut self.stream)?;
            match decode_reply(&payload)? {
                Reply::Error(msg) => return Err(ClientError::Server(msg)),
                Reply::Notify {
                    sub_id,
                    seq,
                    added,
                    retracted,
                } => self.pending.push_back(SubEvent::Notify {
                    sub_id,
                    seq,
                    added,
                    retracted,
                }),
                Reply::Lagged { sub_id, resync_seq } => self
                    .pending
                    .push_back(SubEvent::Lagged { sub_id, resync_seq }),
                reply => return Ok(reply),
            }
        }
    }

    /// [`Client::call`], retrying `Busy` with a small backoff — the right
    /// default for introspection and control verbs, which are idempotent
    /// and cheap for the engine.
    fn call_wait(&mut self, req: &Request) -> Result<Reply, ClientError> {
        loop {
            match self.call(req)? {
                Reply::Busy => std::thread::sleep(Duration::from_millis(2)),
                reply => return Ok(reply),
            }
        }
    }

    /// Ingests one batch. `Ok(Some(per_arrival_matches))` on commit,
    /// `Ok(None)` when the daemon answered [`Reply::Busy`] — the batch
    /// was *not* committed and should be resent.
    pub fn ingest(&mut self, batch: &[Arrival]) -> Result<Option<BatchMatches>, ClientError> {
        match self.call(&Request::Ingest(batch.to_vec()))? {
            Reply::Matches(per_arrival) => Ok(Some(per_arrival)),
            Reply::Busy => Ok(None),
            _ => Err(ClientError::Unexpected("ingest")),
        }
    }

    /// Ingests one batch, retrying `Busy` replies with a small backoff
    /// until the daemon commits it.
    pub fn ingest_wait(&mut self, batch: &[Arrival]) -> Result<BatchMatches, ClientError> {
        loop {
            if let Some(matches) = self.ingest(batch)? {
                return Ok(matches);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Window occupancy and live ids.
    pub fn window(&mut self) -> Result<WindowInfo, ClientError> {
        match self.call_wait(&Request::Query(Query::Window))? {
            Reply::Window(info) => Ok(info),
            _ => Err(ClientError::Unexpected("window")),
        }
    }

    /// One live tuple's coordinates and match partners.
    pub fn entity(&mut self, id: u64) -> Result<EntityInfo, ClientError> {
        match self.call_wait(&Request::Query(Query::Entity(id)))? {
            Reply::Entity(info) => Ok(info),
            _ => Err(ClientError::Unexpected("entity")),
        }
    }

    /// The live result set, `(min, max)`-normalized and sorted.
    pub fn results(&mut self) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.call_wait(&Request::Query(Query::Results))? {
            Reply::Matches(mut lists) if lists.len() == 1 => Ok(lists.pop().unwrap()),
            Reply::Matches(_) => Err(ClientError::Unexpected("results")),
            _ => Err(ClientError::Unexpected("results")),
        }
    }

    /// One-shot pattern query: parses and evaluates `pattern` against
    /// the daemon's live state. Returns the engine batch position the
    /// result describes plus the rows (sorted, deduped).
    pub fn pattern_query(&mut self, pattern: &str) -> Result<(u64, Vec<Vec<u64>>), ClientError> {
        match self.call_wait(&Request::PatternQuery(pattern.to_string()))? {
            Reply::Rows { seq, rows } => Ok((seq, rows)),
            _ => Err(ClientError::Unexpected("pattern query")),
        }
    }

    /// Registers a standing query under the caller-chosen `sub_id`
    /// (unique per connection). The ack carries a full snapshot of the
    /// result at subscription time — pass `resync_seq` from a prior
    /// [`SubEvent::Lagged`] when resyncing (the daemon treats every
    /// subscribe as snapshot-plus-stream, so any value is safe; 0 for a
    /// fresh subscription). Notifications then arrive via
    /// [`Client::next_event`].
    pub fn subscribe(
        &mut self,
        sub_id: u64,
        resync_seq: u64,
        pattern: &str,
    ) -> Result<SubAckInfo, ClientError> {
        let req = Request::Subscribe {
            sub_id,
            resync_seq,
            pattern: pattern.to_string(),
        };
        match self.call_wait(&req)? {
            Reply::SubAck { sub_id, seq, rows } => Ok(SubAckInfo { sub_id, seq, rows }),
            _ => Err(ClientError::Unexpected("subscribe")),
        }
    }

    /// Deregisters a standing query; returns whether it existed. Events
    /// already pushed before the daemon processed the unsubscribe are
    /// delivered through [`Client::next_event`] as usual.
    pub fn unsubscribe(&mut self, sub_id: u64) -> Result<bool, ClientError> {
        match self.call_wait(&Request::Unsubscribe { sub_id })? {
            Reply::Ack(n) => Ok(n == 1),
            _ => Err(ClientError::Unexpected("unsubscribe")),
        }
    }

    /// Blocks for the next pushed subscription event (any queued-up
    /// event first). Respect [`Client::set_io_timeout`] to bound the
    /// wait.
    pub fn next_event(&mut self) -> Result<SubEvent, ClientError> {
        if let Some(ev) = self.pending.pop_front() {
            return Ok(ev);
        }
        let payload = read_message(&mut self.stream)?;
        match decode_reply(&payload)? {
            Reply::Notify {
                sub_id,
                seq,
                added,
                retracted,
            } => Ok(SubEvent::Notify {
                sub_id,
                seq,
                added,
                retracted,
            }),
            Reply::Lagged { sub_id, resync_seq } => Ok(SubEvent::Lagged { sub_id, resync_seq }),
            Reply::Error(msg) => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("subscription event")),
        }
    }

    /// Service counters.
    pub fn stats(&mut self) -> Result<StatsInfo, ClientError> {
        match self.call_wait(&Request::Stats)? {
            Reply::Stats(info) => Ok(info),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }

    /// Extended service counters (protocol v3): the classic
    /// [`StatsInfo`] plus daemon uptime, live connection and subscriber
    /// counts, and the cumulative fsync count. Requires a v3 daemon —
    /// older daemons reject the payload version.
    pub fn stats_ex(&mut self) -> Result<StatsExInfo, ClientError> {
        loop {
            write_message(&mut self.stream, &encode_stats_v3())?;
            loop {
                let payload = read_message(&mut self.stream)?;
                match decode_reply(&payload)? {
                    Reply::Error(msg) => return Err(ClientError::Server(msg)),
                    Reply::Busy => {
                        std::thread::sleep(Duration::from_millis(2));
                        break; // re-send the request
                    }
                    Reply::Notify {
                        sub_id,
                        seq,
                        added,
                        retracted,
                    } => self.pending.push_back(SubEvent::Notify {
                        sub_id,
                        seq,
                        added,
                        retracted,
                    }),
                    Reply::Lagged { sub_id, resync_seq } => self
                        .pending
                        .push_back(SubEvent::Lagged { sub_id, resync_seq }),
                    Reply::StatsEx(info) => return Ok(info),
                    _ => return Err(ClientError::Unexpected("stats_ex")),
                }
            }
        }
    }

    /// Scrapes the daemon's metric registry and flight-recorder ring
    /// (protocol v3): every counter/gauge/histogram as wire rows, plus
    /// the most recent trace events, oldest first.
    pub fn metrics_dump(&mut self) -> Result<(Vec<MetricRow>, Vec<TraceEvent>), ClientError> {
        match self.call_wait(&Request::MetricsDump)? {
            Reply::Metrics { rows, flight } => Ok((rows, flight)),
            _ => Err(ClientError::Unexpected("metrics dump")),
        }
    }

    /// Scrapes the daemon's causal trace surface (protocol v3): the
    /// cumulative critical-path attribution table plus the tail
    /// sampler's retained traces, oldest first.
    pub fn trace_dump(
        &mut self,
    ) -> Result<(ter_obs::trace::CriticalPath, Vec<ter_obs::trace::Trace>), ClientError> {
        match self.call_wait(&Request::TraceDump)? {
            Reply::Traces {
                critical_path,
                traces,
            } => Ok((critical_path, traces)),
            _ => Err(ClientError::Unexpected("trace dump")),
        }
    }

    /// Forces a checkpoint; returns its byte size.
    pub fn checkpoint(&mut self) -> Result<u64, ClientError> {
        match self.call_wait(&Request::Checkpoint)? {
            Reply::Ack(bytes) => Ok(bytes),
            _ => Err(ClientError::Unexpected("checkpoint")),
        }
    }

    /// Gracefully stops the daemon (checkpoint, then ack); returns the
    /// batches the daemon served this run.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        match self.call_wait(&Request::Shutdown)? {
            Reply::Ack(batches) => Ok(batches),
            _ => Err(ClientError::Unexpected("shutdown")),
        }
    }

    /// One framed reply off the wire, *without* mapping `Error` — the
    /// pipelined loop needs the raw variant to account replies.
    fn read_raw_reply(&mut self) -> Result<Reply, ClientError> {
        let payload = read_message(&mut self.stream)?;
        Ok(decode_reply(&payload)?)
    }

    /// Ingests `batches` with up to `window` unacked batches in flight
    /// (protocol v2). Every batch is committed exactly once, in order:
    /// the daemon's per-connection gate admits only the in-sequence
    /// prefix, and on any [`Reply::IngestBusy`] this driver drains all
    /// outstanding replies, rewinds to its lowest unacked batch, and
    /// resends (go-back-N) after a small backoff. Blocks until every
    /// batch is acked; the returned per-batch match lists concatenate to
    /// exactly what a strict request/reply feed would have seen.
    ///
    /// Do not interleave other verbs on this connection while a
    /// pipelined run is in flight — their replies would race the tagged
    /// acks.
    ///
    /// On *any* error the connection is poisoned (shut down): replies
    /// for in-flight frames may still be on the wire and the daemon's
    /// per-connection expected sequence no longer matches this client's,
    /// so no later call could trust what it reads. Every subsequent
    /// operation fails fast with a transport error — reconnect (or use
    /// [`ResilientClient`], which does) instead of retrying on the dead
    /// connection.
    pub fn ingest_pipelined(
        &mut self,
        batches: &[Vec<Arrival>],
        window: usize,
    ) -> Result<PipelinedIngest, ClientError> {
        match self.ingest_pipelined_inner(batches, window) {
            Ok(out) => Ok(out),
            Err(e) => {
                // Undrained tagged replies + a diverged server-side
                // sequence gate = an unresynchronizable connection. A
                // shutdown on an already-broken stream is harmless.
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                Err(e)
            }
        }
    }

    fn ingest_pipelined_inner(
        &mut self,
        batches: &[Vec<Arrival>],
        window: usize,
    ) -> Result<PipelinedIngest, ClientError> {
        let w = window.max(1);
        let n = batches.len();
        let base = self.pipeline_seq;
        let mut out = PipelinedIngest {
            per_batch: Vec::with_capacity(n),
            busy_retries: 0,
        };
        let mut next_send = 0usize; // next batch index to (re)send
        let mut next_ack = 0usize; // acked prefix length
        let mut in_flight = 0usize; // frames whose reply is still owed
        while next_ack < n {
            while next_send < n && in_flight < w {
                // Borrow-encoding: no per-frame batch clone, even on
                // go-back-N retransmits.
                let payload = encode_ingest_seq(base + next_send as u64, &batches[next_send]);
                write_message(&mut self.stream, &payload)?;
                next_send += 1;
                in_flight += 1;
            }
            match self.read_raw_reply()? {
                Reply::IngestAck { seq, per_arrival } => {
                    in_flight -= 1;
                    // The daemon enqueues only the in-sequence prefix and
                    // acks in commit order, so acks arrive densely.
                    if seq != base + next_ack as u64 {
                        return Err(ClientError::Unexpected("pipelined ack order"));
                    }
                    out.per_batch.push(per_arrival);
                    next_ack += 1;
                }
                Reply::IngestBusy { .. } => {
                    in_flight -= 1;
                    out.busy_retries += 1;
                    // Go-back-N: drain the reply owed by every other frame
                    // still on the wire (acks may interleave with the
                    // rejected tail), then rewind and resend.
                    while in_flight > 0 {
                        match self.read_raw_reply()? {
                            Reply::IngestAck { seq, per_arrival } => {
                                in_flight -= 1;
                                if seq != base + next_ack as u64 {
                                    return Err(ClientError::Unexpected("pipelined ack order"));
                                }
                                out.per_batch.push(per_arrival);
                                next_ack += 1;
                            }
                            Reply::IngestBusy { .. } => {
                                in_flight -= 1;
                                out.busy_retries += 1;
                            }
                            Reply::Error(msg) => return Err(ClientError::Server(msg)),
                            _ => return Err(ClientError::Unexpected("pipelined ingest")),
                        }
                    }
                    next_send = next_ack;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Reply::Error(msg) => return Err(ClientError::Server(msg)),
                _ => return Err(ClientError::Unexpected("pipelined ingest")),
            }
        }
        self.pipeline_seq = base + n as u64;
        Ok(out)
    }
}

/// What one [`ResilientClient::feed`] run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedReport {
    /// Batches the daemon committed over the course of this feed,
    /// measured as the advance of its committed sequence — so batches
    /// committed just before a crash (acked or not) are counted, while
    /// batches committed by a previous incarnation are resumed past, not
    /// recounted. Assumes this feed is the only ingester.
    pub batches: u64,
    /// Arrivals inside those batches.
    pub arrivals: u64,
    /// `IngestBusy` backpressure events absorbed (best-effort: events of
    /// a run cut short by a connection loss are not recovered).
    pub busy_retries: u64,
    /// Connections (re-)established after the first.
    pub reconnects: u64,
    /// The daemon's committed batch sequence when the feed completed.
    pub final_seq: u64,
}

/// A self-healing client: re-dials with backoff on connection loss and
/// resumes ingest from the daemon's own committed position (`Stats`),
/// so a feed survives daemon restarts — including `kill -9` — without
/// double-feeding or skipping a batch.
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    /// How long each re-dial keeps retrying before giving up (passed to
    /// [`Client::connect_retry`] — it backs off internally).
    redial: Duration,
    conn: Option<Client>,
    reconnects: u64,
}

impl ResilientClient {
    /// Creates the wrapper; no connection is made until first use.
    pub fn new(addr: SocketAddr, redial: Duration) -> Self {
        Self {
            addr,
            redial,
            conn: None,
            reconnects: 0,
        }
    }

    /// Connections (re-)established after the first.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn conn(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let fresh = Client::connect_retry(self.addr, self.redial)
                .map_err(|e| ClientError::Wire(WireError::Io(e)))?;
            self.conn = Some(fresh);
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }

    fn drop_conn(&mut self) {
        self.conn = None;
        self.reconnects += 1;
    }

    /// `Stats`, reconnecting on transport failure until the re-dial
    /// deadline gives up.
    pub fn stats(&mut self) -> Result<StatsInfo, ClientError> {
        loop {
            match self.conn()?.stats() {
                Ok(s) => return Ok(s),
                Err(ClientError::Wire(_)) => self.drop_conn(),
                Err(e) => return Err(e),
            }
        }
    }

    /// Feeds `batches` — the *whole* stream, batched exactly as every
    /// previous feed of this store directory — with pipelined ingest at
    /// `window` batches in flight, transparently surviving connection
    /// loss: each (re)connection first asks the daemon where its
    /// committed stream ends and resumes from that batch. Returns once
    /// the daemon has committed every batch.
    pub fn feed(
        &mut self,
        batches: &[Vec<Arrival>],
        window: usize,
    ) -> Result<FeedReport, ClientError> {
        let mut report = FeedReport::default();
        let mut initial_seq: Option<usize> = None;
        loop {
            let start = self.stats()?.next_batch_seq as usize;
            // Progress is accounted by the *daemon's* committed-sequence
            // advance, not by acks seen: a run cut short by a crash may
            // have committed batches whose acks never arrived, and those
            // must still count as fed.
            let initial = *initial_seq.get_or_insert(start.min(batches.len()));
            if start >= batches.len() {
                let end = start.min(batches.len()).max(initial);
                report.batches = (end - initial) as u64;
                report.arrivals = batches[initial..end]
                    .iter()
                    .map(|b| b.len() as u64)
                    .sum::<u64>();
                report.reconnects = self.reconnects;
                report.final_seq = start as u64;
                return Ok(report);
            }
            match self.conn()?.ingest_pipelined(&batches[start..], window) {
                Ok(r) => {
                    report.busy_retries += r.busy_retries;
                    // Loop once more: the next stats call confirms the
                    // committed position reached the end.
                }
                Err(ClientError::Wire(_)) => self.drop_conn(),
                Err(e) => return Err(e),
            }
        }
    }
}
