//! The versioned wire protocol: every message travelling either direction
//! is one `ter_store` frame (`[len: u32 LE][crc: u32 LE][payload]`,
//! `crc = CRC-32/IEEE(payload)`) whose payload is
//!
//! ```text
//! payload := [proto: u8 = 1 | 2][tag: u8][body]
//! ```
//!
//! with the body encoded by the same hand-rolled codec the persistence
//! layer uses, so an `Arrival` travels over the wire bit-identically to
//! how it lands in the WAL. Decoding is strict: unknown protocol bytes
//! and tags, truncated bodies, and trailing bytes are all rejected with a
//! clean [`WireError`] — never a panic (property-tested, mirroring the
//! `ter_store` codec proptests) — and the frame CRC rejects any bit flip
//! in transit before the decoder even runs.
//!
//! # Versions
//!
//! * **v1** — strict request/reply: [`Request::Ingest`],
//!   [`Request::Query`], [`Request::Stats`], [`Request::Checkpoint`],
//!   [`Request::Shutdown`]; replies carry result data, an error string,
//!   or the explicit [`Reply::Busy`] backpressure signal. One request in
//!   flight per connection.
//! * **v2** — adds *pipelined ingest*: [`Request::IngestSeq`] tags each
//!   batch with a client-chosen, per-connection-monotonic sequence
//!   number, and the daemon answers out of band with the sequence-tagged
//!   [`Reply::IngestAck`] (committed + stepped) or [`Reply::IngestBusy`]
//!   (queue full *or* out of sequence — the go-back-N signal). A window
//!   of up to `W` unacked batches rides one connection; acks arrive in
//!   sequence order because the daemon enqueues only the in-sequence
//!   prefix.
//! * **v3** — adds the *declarative query layer*:
//!   [`Request::PatternQuery`] evaluates a `ter_query` pattern one-shot
//!   against the live engine ([`Reply::Rows`], stamped with the batch
//!   position it saw); [`Request::Subscribe`] registers the pattern as a
//!   *standing* query (the [`Reply::SubAck`] snapshot is the fold's
//!   starting point) after which the daemon pushes one unsolicited
//!   [`Reply::Notify`] per arrival batch that net-changed the result.
//!   A subscriber that cannot drain fast enough is dropped with
//!   [`Reply::Lagged`] carrying the `resync_seq` to resubscribe from —
//!   shedding, never stalling ingest. [`Request::Unsubscribe`]
//!   deregisters explicitly.
//!   v3 also carries the *observability* surface:
//!   [`Request::MetricsDump`] returns the daemon's full `ter_obs`
//!   registry plus its flight-recorder ring as [`Reply::Metrics`], and a
//!   `Stats` verb sent inside a v3 payload is answered with the enriched
//!   [`Reply::StatsEx`] (uptime, live connections, subscribers,
//!   cumulative fsyncs) instead of the v1 [`Reply::Stats`].
//!   [`Request::TraceDump`] returns the causal per-batch trace surface —
//!   the critical-path attribution table plus the tail-sampled retained
//!   traces — as [`Reply::Traces`].
//!
//! Both sides speak the *lowest* version a message needs: v1 verbs and
//! replies are emitted as v1 payloads (so an old peer interoperates
//! untouched), the pipelined messages as v2, the query-layer messages as
//! v3. Decoders accept every version; newer tags inside an older payload
//! are rejected. (The converse — an *older* tag inside a newer payload —
//! is accepted, which is how [`encode_stats_v3`] asks for the enriched
//! stats reply without a new verb.)

use std::io::{Read, Write};

use ter_ids::PruneStats;
use ter_obs::trace::{CriticalPath, Span, Trace};
use ter_obs::{MetricRow, TraceEvent};
use ter_store::{crc32, Codec, CodecError, Decoder, Encoder};
use ter_stream::Arrival;

/// The original request/reply protocol version.
pub const PROTO_V1: u8 = 1;
/// The pipelined-ingest protocol version.
pub const PROTO_V2: u8 = 2;
/// The standing-query protocol version.
pub const PROTO_V3: u8 = 3;
/// Newest protocol version this build speaks.
pub const PROTO_VERSION: u8 = PROTO_V3;

/// Hard cap on a wire frame's payload (16 MiB) — a corrupt or hostile
/// length field must not drive a pathological allocation.
pub const MAX_WIRE_LEN: usize = 16 << 20;

/// Why a wire message could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes EOF mid-frame).
    Io(std::io::Error),
    /// The frame length field (or a payload to be sent) exceeds
    /// [`MAX_WIRE_LEN`].
    Oversized(u64),
    /// The frame CRC does not match its payload.
    BadCrc,
    /// The payload's protocol byte is not [`PROTO_VERSION`].
    Version(u8),
    /// The payload's verb/reply tag is unknown.
    UnknownTag(u8),
    /// The body failed to decode.
    Codec(CodecError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Oversized(n) => write!(f, "frame length {n} exceeds the wire cap"),
            WireError::BadCrc => write!(f, "frame CRC mismatch"),
            WireError::Version(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// Reads one framed payload off a *blocking* byte stream. Fails cleanly
/// on EOF, truncation, oversized lengths, and CRC mismatches. (The
/// server's reader threads cannot use this — they read under a timeout
/// and must reassemble across partial reads — so `serve_connection`
/// carries a shutdown-polling fork of the same frame grammar.)
pub fn read_message(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if len as usize > MAX_WIRE_LEN {
        return Err(WireError::Oversized(len as u64));
    }
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(WireError::BadCrc);
    }
    Ok(payload)
}

/// Writes one framed payload to a byte stream. A payload above
/// [`MAX_WIRE_LEN`] is refused *before* anything is written (the peer
/// would reject the frame anyway, and a length above `u32::MAX` would
/// silently wrap and desynchronize the stream).
pub fn write_message(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_WIRE_LEN {
        return Err(WireError::Oversized(payload.len() as u64));
    }
    let mut framed = Vec::with_capacity(8 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    w.write_all(&framed)?;
    w.flush()?;
    Ok(())
}

/// What a [`Request::Query`] asks about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// The sliding window: occupancy and live tuple ids.
    Window,
    /// One live tuple: arrival coordinates, topicality, match partners.
    Entity(u64),
    /// The live result set `ES` (all currently-matched pairs).
    Results,
}

/// A client verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Append one arrival batch: WAL-commit, step the engine, and return
    /// the per-arrival match lists. Strict request/reply (v1).
    Ingest(Vec<Arrival>),
    /// Pipelined ingest (v2): like [`Request::Ingest`], but tagged with a
    /// client-chosen sequence number so up to `W` batches ride the
    /// connection unacked. The daemon enqueues only the in-sequence
    /// prefix (per connection) and answers each frame with exactly one
    /// [`Reply::IngestAck`] or [`Reply::IngestBusy`].
    IngestSeq { seq: u64, batch: Vec<Arrival> },
    /// Introspect the engine without mutating it.
    Query(Query),
    /// Evaluate a `ter_query` pattern one-shot against the live engine
    /// (v3). The pattern travels as source text and is parsed (and
    /// rejected with [`Reply::Error`] on a syntax error) server-side.
    PatternQuery(String),
    /// Register the pattern as a standing query under the client-chosen
    /// `sub_id` (v3). `resync_seq` is 0 on a fresh subscription, or the
    /// batch position from a [`Reply::Lagged`] / the last folded
    /// [`Reply::Notify`] when reconciling after a lag or a reconnect —
    /// the daemon always answers with a full [`Reply::SubAck`] snapshot,
    /// which restarts the fold from its `seq`.
    Subscribe {
        sub_id: u64,
        resync_seq: u64,
        pattern: String,
    },
    /// Deregister a standing query (v3). Acknowledged with
    /// [`Reply::Ack`]`(1)` if the subscription existed, `(0)` otherwise.
    Unsubscribe { sub_id: u64 },
    /// Service counters: stream position, WAL size, pruning statistics.
    /// Sent inside a v3 payload (see [`encode_stats_v3`]) the daemon
    /// answers with the enriched [`Reply::StatsEx`]; inside a v1/v2
    /// payload it answers [`Reply::Stats`], so old clients are
    /// unaffected.
    Stats,
    /// The full observability registry + flight-recorder snapshot (v3),
    /// answered with [`Reply::Metrics`]. Read-only and engine-thread
    /// serialized like every introspection verb, so the snapshot is
    /// consistent with a batch boundary.
    MetricsDump,
    /// The causal per-batch trace surface (v3): the cumulative
    /// critical-path attribution table plus the tail sampler's retained
    /// traces, answered with [`Reply::Traces`]. Read-only and
    /// engine-thread serialized like [`Request::MetricsDump`].
    TraceDump,
    /// Force a checkpoint now (cadence-independent).
    Checkpoint,
    /// Checkpoint and stop the daemon gracefully.
    Shutdown,
}

const TAG_INGEST: u8 = 0x01;
const TAG_QUERY: u8 = 0x02;
const TAG_STATS: u8 = 0x03;
const TAG_CHECKPOINT: u8 = 0x04;
const TAG_SHUTDOWN: u8 = 0x05;
const TAG_INGEST_SEQ: u8 = 0x06;
const TAG_PATTERN_QUERY: u8 = 0x07;
const TAG_SUBSCRIBE: u8 = 0x08;
const TAG_UNSUBSCRIBE: u8 = 0x09;
const TAG_METRICS_DUMP: u8 = 0x0A;
const TAG_TRACE_DUMP: u8 = 0x0B;

const TAG_ERROR: u8 = 0x80;
const TAG_BUSY: u8 = 0x81;
const TAG_MATCHES: u8 = 0x82;
const TAG_WINDOW: u8 = 0x83;
const TAG_ENTITY: u8 = 0x84;
const TAG_STATS_REPLY: u8 = 0x85;
const TAG_ACK: u8 = 0x86;
const TAG_INGEST_ACK: u8 = 0x87;
const TAG_INGEST_BUSY: u8 = 0x88;
const TAG_ROWS: u8 = 0x89;
const TAG_SUB_ACK: u8 = 0x8A;
const TAG_NOTIFY: u8 = 0x8B;
const TAG_LAGGED: u8 = 0x8C;
const TAG_METRICS: u8 = 0x8D;
const TAG_STATS_EX: u8 = 0x8E;
const TAG_TRACES: u8 = 0x8F;

/// The lowest protocol version that carries `tag` — both sides emit it,
/// so v1 peers keep interoperating until a v2+ message is actually needed.
fn tag_version(tag: u8) -> u8 {
    match tag {
        TAG_INGEST_SEQ | TAG_INGEST_ACK | TAG_INGEST_BUSY => PROTO_V2,
        TAG_PATTERN_QUERY | TAG_SUBSCRIBE | TAG_UNSUBSCRIBE | TAG_ROWS | TAG_SUB_ACK
        | TAG_NOTIFY | TAG_LAGGED | TAG_METRICS_DUMP | TAG_METRICS | TAG_STATS_EX
        | TAG_TRACE_DUMP | TAG_TRACES => PROTO_V3,
        _ => PROTO_V1,
    }
}

/// Window introspection reply body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WindowInfo {
    /// Unexpired tuples.
    pub len: usize,
    /// Window capacity `w`.
    pub capacity: usize,
    /// Ids of the unexpired tuples, ascending.
    pub live_ids: Vec<u64>,
}

/// Entity introspection reply body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EntityInfo {
    /// Whether the tuple is live in the window.
    pub found: bool,
    /// Source stream.
    pub stream_id: usize,
    /// Arrival timestamp.
    pub timestamp: u64,
    /// Whether topic-keyword pruning considers it possibly topical.
    pub possibly_topical: bool,
    /// Ids currently matched with it (the live result set restricted to
    /// this tuple), ascending.
    pub partners: Vec<u64>,
}

/// Service counters reply body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsInfo {
    /// Sequence number the next ingested batch will get — a feeder that
    /// always sends full fixed-size batches resumes its stream cursor at
    /// `next_batch_seq * batch_size`.
    pub next_batch_seq: u64,
    /// Arrivals folded into the engine since this daemon process started
    /// (replayed WAL suffix included; checkpointed history is not).
    pub session_arrivals: u64,
    /// Committed WAL bytes on disk.
    pub wal_bytes: u64,
    /// Window occupancy.
    pub window_len: usize,
    /// Cumulative pruning counters (bit-identical to the library engine's).
    pub stats: PruneStats,
}

/// Enriched service counters (v3): everything in [`StatsInfo`] plus the
/// liveness numbers a v1/v2 client could previously only scrape from the
/// daemon's stdout.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsExInfo {
    /// The v1 counters, unchanged.
    pub base: StatsInfo,
    /// Microseconds since the daemon process started observing.
    pub uptime_micros: u64,
    /// Connections currently admitted to the I/O pool.
    pub connections: u64,
    /// Live standing-query subscriptions.
    pub subscribers: u64,
    /// Commit-path fsyncs issued since start (replay included).
    pub fsyncs: u64,
}

impl Codec for StatsExInfo {
    fn encode(&self, enc: &mut Encoder) {
        self.base.encode(enc);
        enc.u64(self.uptime_micros);
        enc.u64(self.connections);
        enc.u64(self.subscribers);
        enc.u64(self.fsyncs);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(StatsExInfo {
            base: StatsInfo::decode(dec)?,
            uptime_micros: dec.u64()?,
            connections: dec.u64()?,
            subscribers: dec.u64()?,
            fsyncs: dec.u64()?,
        })
    }
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The request failed; the service state is unchanged.
    Error(String),
    /// The bounded ingest queue is full — retry after draining.
    Busy,
    /// Per-arrival match lists for one ingested batch, in arrival order,
    /// each `(min, max)`-normalized and sorted.
    Matches(Vec<Vec<(u64, u64)>>),
    /// Window introspection.
    Window(WindowInfo),
    /// Entity introspection.
    Entity(EntityInfo),
    /// Service counters.
    Stats(StatsInfo),
    /// Verb acknowledged; the payload is verb-specific (checkpoint bytes
    /// for `Checkpoint`, total batches served for `Shutdown`).
    Ack(u64),
    /// Pipelined ingest commit (v2): batch `seq` is WAL-durable and
    /// stepped; `per_arrival` carries its match lists in arrival order.
    IngestAck {
        seq: u64,
        per_arrival: Vec<Vec<(u64, u64)>>,
    },
    /// Pipelined ingest rejection (v2): batch `seq` was *not* committed —
    /// the queue was full or the frame arrived out of sequence behind an
    /// earlier rejection. The client rewinds to its lowest unacked batch
    /// and resends (go-back-N).
    IngestBusy { seq: u64 },
    /// One-shot pattern result (v3): the projected rows, sorted and
    /// deduped, plus the batch position of the engine state they were
    /// evaluated against.
    Rows { seq: u64, rows: Vec<Vec<u64>> },
    /// Subscription accepted (v3): the full snapshot of the pattern's
    /// rows at batch position `seq`. Every later [`Reply::Notify`] for
    /// this `sub_id` folds on top of it.
    SubAck {
        sub_id: u64,
        seq: u64,
        rows: Vec<Vec<u64>>,
    },
    /// Standing-query push (v3): after the arrival batch ending at
    /// position `seq`, `added` rows entered the result and `retracted`
    /// rows left it (both sorted, disjoint). Batches that net-change
    /// nothing send nothing.
    Notify {
        sub_id: u64,
        seq: u64,
        added: Vec<Vec<u64>>,
        retracted: Vec<Vec<u64>>,
    },
    /// Subscriber shed (v3): its notification backlog exceeded the
    /// daemon's buffer bound, so the subscription was dropped rather
    /// than stalling ingest. Notifications after `resync_seq` were lost;
    /// resubscribe (with `resync_seq`) for a fresh snapshot.
    Lagged { sub_id: u64, resync_seq: u64 },
    /// Enriched service counters (v3) — the answer to a `Stats` verb
    /// that arrived inside a v3 payload.
    StatsEx(StatsExInfo),
    /// The observability registry + flight recorder (v3) — the answer to
    /// [`Request::MetricsDump`].
    Metrics {
        /// Every registry metric, in declaration order.
        rows: Vec<MetricRow>,
        /// The flight ring's retained events, oldest → newest.
        flight: Vec<TraceEvent>,
    },
    /// The causal per-batch trace surface (v3) — the answer to
    /// [`Request::TraceDump`].
    Traces {
        /// Cumulative critical-path attribution over every completed
        /// trace since startup (not just the retained ones).
        critical_path: CriticalPath,
        /// The tail sampler's retained traces, oldest → newest: the K
        /// slowest per window plus every anomaly-overlapping trace.
        traces: Vec<Trace>,
    },
}

// `MetricRow`/`TraceEvent` live in the dependency-free `ter_obs` leaf
// crate and `Codec` in `ter_store`, so the orphan rule forbids a `Codec`
// impl here; standalone helpers carry them over the wire instead.

fn encode_metric_row(row: &MetricRow, enc: &mut Encoder) {
    enc.str(&row.name);
    enc.u8(row.kind);
    enc.u64(row.value);
    enc.u64(row.sum);
    row.buckets.encode(enc);
}

fn decode_metric_row(dec: &mut Decoder<'_>) -> Result<MetricRow, CodecError> {
    Ok(MetricRow {
        name: dec.str()?,
        kind: dec.u8()?,
        value: dec.u64()?,
        sum: dec.u64()?,
        buckets: Vec::decode(dec)?,
    })
}

fn encode_trace_event(ev: &TraceEvent, enc: &mut Encoder) {
    enc.u64(ev.ts_micros);
    enc.u8(ev.kind);
    enc.u64(ev.seq);
    enc.u64(ev.a);
    enc.u64(ev.b);
    enc.u64(ev.dur_micros);
}

fn decode_trace_event(dec: &mut Decoder<'_>) -> Result<TraceEvent, CodecError> {
    Ok(TraceEvent {
        ts_micros: dec.u64()?,
        kind: dec.u8()?,
        seq: dec.u64()?,
        a: dec.u64()?,
        b: dec.u64()?,
        dur_micros: dec.u64()?,
    })
}

fn encode_critical_path(cp: &CriticalPath, enc: &mut Encoder) {
    enc.u64(cp.traces);
    enc.u64(cp.total_micros);
    enc.u64(cp.frontend_micros);
    enc.u64(cp.gate_micros);
    enc.u64(cp.queue_wait_micros);
    enc.u64(cp.compute_micros);
    enc.u64(cp.barrier_micros);
    enc.u64(cp.wal_micros);
    enc.u64(cp.fsync_exposed_micros);
    enc.u64(cp.notify_micros);
    enc.u64(cp.write_back_micros);
    enc.u64(cp.other_micros);
}

fn decode_critical_path(dec: &mut Decoder<'_>) -> Result<CriticalPath, CodecError> {
    Ok(CriticalPath {
        traces: dec.u64()?,
        total_micros: dec.u64()?,
        frontend_micros: dec.u64()?,
        gate_micros: dec.u64()?,
        queue_wait_micros: dec.u64()?,
        compute_micros: dec.u64()?,
        barrier_micros: dec.u64()?,
        wal_micros: dec.u64()?,
        fsync_exposed_micros: dec.u64()?,
        notify_micros: dec.u64()?,
        write_back_micros: dec.u64()?,
        other_micros: dec.u64()?,
    })
}

fn encode_trace(t: &Trace, enc: &mut Encoder) {
    enc.u64(t.batch_seq);
    enc.u64(t.start);
    enc.u64(t.dur);
    enc.u64(t.covered);
    enc.bool(t.anomaly);
    enc.usize(t.spans.len());
    for s in &t.spans {
        // `batch_seq` is the trace's — not re-encoded per span.
        enc.u8(s.kind);
        enc.u8(s.parent);
        enc.u64(s.start);
        enc.u64(s.dur);
    }
}

fn decode_trace(dec: &mut Decoder<'_>) -> Result<Trace, CodecError> {
    let batch_seq = dec.u64()?;
    let start = dec.u64()?;
    let dur = dec.u64()?;
    let covered = dec.u64()?;
    let anomaly = dec.bool()?;
    let n = dec.usize()?;
    let mut spans = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        spans.push(Span {
            batch_seq,
            kind: dec.u8()?,
            parent: dec.u8()?,
            start: dec.u64()?,
            dur: dec.u64()?,
        });
    }
    Ok(Trace {
        batch_seq,
        start,
        dur,
        covered,
        anomaly,
        spans,
    })
}

fn payload_with(tag: u8) -> Encoder {
    let mut enc = Encoder::new();
    enc.u8(tag_version(tag));
    enc.u8(tag);
    enc
}

/// Splits a received payload into its protocol version, verb/reply tag,
/// and body decoder. Accepts every version this build speaks and rejects
/// tags newer than the payload's declared version — a v1 payload cannot
/// smuggle v2 verbs.
fn open_payload(payload: &[u8]) -> Result<(u8, u8, Decoder<'_>), WireError> {
    let mut dec = Decoder::new(payload);
    let proto = dec.u8()?;
    if proto == 0 || proto > PROTO_VERSION {
        return Err(WireError::Version(proto));
    }
    let tag = dec.u8()?;
    if tag_version(tag) > proto {
        return Err(WireError::UnknownTag(tag));
    }
    Ok((proto, tag, dec))
}

fn finish<T>(dec: &Decoder<'_>, v: T) -> Result<T, WireError> {
    if !dec.is_exhausted() {
        return Err(WireError::Codec(CodecError::TrailingBytes));
    }
    Ok(v)
}

/// Encodes a request into a wire payload (version + tag + body). The
/// version byte is the lowest that carries the verb.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Ingest(batch) => {
            let mut enc = payload_with(TAG_INGEST);
            batch.encode(&mut enc);
            enc.into_bytes()
        }
        Request::IngestSeq { seq, batch } => encode_ingest_seq(*seq, batch),
        Request::Query(q) => {
            let mut enc = payload_with(TAG_QUERY);
            match q {
                Query::Window => enc.u8(0),
                Query::Entity(id) => {
                    enc.u8(1);
                    enc.u64(*id);
                }
                Query::Results => enc.u8(2),
            }
            enc.into_bytes()
        }
        Request::PatternQuery(pattern) => {
            let mut enc = payload_with(TAG_PATTERN_QUERY);
            enc.str(pattern);
            enc.into_bytes()
        }
        Request::Subscribe {
            sub_id,
            resync_seq,
            pattern,
        } => {
            let mut enc = payload_with(TAG_SUBSCRIBE);
            enc.u64(*sub_id);
            enc.u64(*resync_seq);
            enc.str(pattern);
            enc.into_bytes()
        }
        Request::Unsubscribe { sub_id } => {
            let mut enc = payload_with(TAG_UNSUBSCRIBE);
            enc.u64(*sub_id);
            enc.into_bytes()
        }
        Request::Stats => payload_with(TAG_STATS).into_bytes(),
        Request::MetricsDump => payload_with(TAG_METRICS_DUMP).into_bytes(),
        Request::TraceDump => payload_with(TAG_TRACE_DUMP).into_bytes(),
        Request::Checkpoint => payload_with(TAG_CHECKPOINT).into_bytes(),
        Request::Shutdown => payload_with(TAG_SHUTDOWN).into_bytes(),
    }
}

/// Encodes a [`Request::Stats`] stamped [`PROTO_V3`] instead of its
/// minimal v1 — the opt-in for the enriched [`Reply::StatsEx`]. Decoders
/// accept old tags in new payloads, so an old daemon still answers (with
/// plain [`Reply::Stats`]).
pub fn encode_stats_v3() -> Vec<u8> {
    let mut payload = encode_request(&Request::Stats);
    payload[0] = PROTO_V3;
    payload
}

/// Encodes a [`Request::IngestSeq`] payload from a *borrowed* batch —
/// byte-identical to `encode_request` on the owned variant, without
/// cloning the batch into a `Request` first. The pipelined client sends
/// (and under go-back-N resends) batches it does not own, so this is its
/// hot path.
pub fn encode_ingest_seq(seq: u64, batch: &[Arrival]) -> Vec<u8> {
    let mut enc = payload_with(TAG_INGEST_SEQ);
    enc.u64(seq);
    // Same wire shape as `Vec<Arrival>::encode`: length, then elements.
    enc.usize(batch.len());
    for arrival in batch {
        arrival.encode(&mut enc);
    }
    enc.into_bytes()
}

/// Decodes a request payload. Any malformed input yields `Err`, never a
/// panic; the body must consume the payload exactly.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    decode_request_versioned(payload).map(|(_, req)| req)
}

/// [`decode_request`] that also reports the payload's protocol version,
/// so the daemon can answer each request in the version it arrived in
/// (a v1 client never sees a v2 reply).
pub fn decode_request_versioned(payload: &[u8]) -> Result<(u8, Request), WireError> {
    let (proto, tag, mut dec) = open_payload(payload)?;
    let req = match tag {
        TAG_INGEST => {
            let batch = Vec::<Arrival>::decode(&mut dec)?;
            finish(&dec, Request::Ingest(batch))
        }
        TAG_INGEST_SEQ => {
            let seq = dec.u64()?;
            let batch = Vec::<Arrival>::decode(&mut dec)?;
            finish(&dec, Request::IngestSeq { seq, batch })
        }
        TAG_QUERY => {
            let q = match dec.u8()? {
                0 => Query::Window,
                1 => Query::Entity(dec.u64()?),
                2 => Query::Results,
                t => return Err(WireError::UnknownTag(t)),
            };
            finish(&dec, Request::Query(q))
        }
        TAG_PATTERN_QUERY => {
            let pattern = dec.str()?;
            finish(&dec, Request::PatternQuery(pattern))
        }
        TAG_SUBSCRIBE => {
            let sub_id = dec.u64()?;
            let resync_seq = dec.u64()?;
            let pattern = dec.str()?;
            finish(
                &dec,
                Request::Subscribe {
                    sub_id,
                    resync_seq,
                    pattern,
                },
            )
        }
        TAG_UNSUBSCRIBE => {
            let sub_id = dec.u64()?;
            finish(&dec, Request::Unsubscribe { sub_id })
        }
        TAG_STATS => finish(&dec, Request::Stats),
        TAG_METRICS_DUMP => finish(&dec, Request::MetricsDump),
        TAG_TRACE_DUMP => finish(&dec, Request::TraceDump),
        TAG_CHECKPOINT => finish(&dec, Request::Checkpoint),
        TAG_SHUTDOWN => finish(&dec, Request::Shutdown),
        t => Err(WireError::UnknownTag(t)),
    }?;
    Ok((proto, req))
}

impl Codec for WindowInfo {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.len);
        enc.usize(self.capacity);
        self.live_ids.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(WindowInfo {
            len: dec.usize()?,
            capacity: dec.usize()?,
            live_ids: Vec::decode(dec)?,
        })
    }
}

impl Codec for EntityInfo {
    fn encode(&self, enc: &mut Encoder) {
        enc.bool(self.found);
        enc.usize(self.stream_id);
        enc.u64(self.timestamp);
        enc.bool(self.possibly_topical);
        self.partners.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(EntityInfo {
            found: dec.bool()?,
            stream_id: dec.usize()?,
            timestamp: dec.u64()?,
            possibly_topical: dec.bool()?,
            partners: Vec::decode(dec)?,
        })
    }
}

impl Codec for StatsInfo {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.next_batch_seq);
        enc.u64(self.session_arrivals);
        enc.u64(self.wal_bytes);
        enc.usize(self.window_len);
        self.stats.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(StatsInfo {
            next_batch_seq: dec.u64()?,
            session_arrivals: dec.u64()?,
            wal_bytes: dec.u64()?,
            window_len: dec.usize()?,
            stats: PruneStats::decode(dec)?,
        })
    }
}

/// Encodes a reply into a wire payload.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    match reply {
        Reply::Error(msg) => {
            let mut enc = payload_with(TAG_ERROR);
            enc.str(msg);
            enc.into_bytes()
        }
        Reply::Busy => payload_with(TAG_BUSY).into_bytes(),
        Reply::Matches(per_arrival) => {
            let mut enc = payload_with(TAG_MATCHES);
            per_arrival.encode(&mut enc);
            enc.into_bytes()
        }
        Reply::Window(info) => {
            let mut enc = payload_with(TAG_WINDOW);
            info.encode(&mut enc);
            enc.into_bytes()
        }
        Reply::Entity(info) => {
            let mut enc = payload_with(TAG_ENTITY);
            info.encode(&mut enc);
            enc.into_bytes()
        }
        Reply::Stats(info) => {
            let mut enc = payload_with(TAG_STATS_REPLY);
            info.encode(&mut enc);
            enc.into_bytes()
        }
        Reply::Ack(v) => {
            let mut enc = payload_with(TAG_ACK);
            enc.u64(*v);
            enc.into_bytes()
        }
        Reply::IngestAck { seq, per_arrival } => {
            let mut enc = payload_with(TAG_INGEST_ACK);
            enc.u64(*seq);
            per_arrival.encode(&mut enc);
            enc.into_bytes()
        }
        Reply::IngestBusy { seq } => {
            let mut enc = payload_with(TAG_INGEST_BUSY);
            enc.u64(*seq);
            enc.into_bytes()
        }
        Reply::Rows { seq, rows } => {
            let mut enc = payload_with(TAG_ROWS);
            enc.u64(*seq);
            rows.encode(&mut enc);
            enc.into_bytes()
        }
        Reply::SubAck { sub_id, seq, rows } => {
            let mut enc = payload_with(TAG_SUB_ACK);
            enc.u64(*sub_id);
            enc.u64(*seq);
            rows.encode(&mut enc);
            enc.into_bytes()
        }
        Reply::Notify {
            sub_id,
            seq,
            added,
            retracted,
        } => {
            let mut enc = payload_with(TAG_NOTIFY);
            enc.u64(*sub_id);
            enc.u64(*seq);
            added.encode(&mut enc);
            retracted.encode(&mut enc);
            enc.into_bytes()
        }
        Reply::Lagged { sub_id, resync_seq } => {
            let mut enc = payload_with(TAG_LAGGED);
            enc.u64(*sub_id);
            enc.u64(*resync_seq);
            enc.into_bytes()
        }
        Reply::StatsEx(info) => {
            let mut enc = payload_with(TAG_STATS_EX);
            info.encode(&mut enc);
            enc.into_bytes()
        }
        Reply::Metrics { rows, flight } => {
            let mut enc = payload_with(TAG_METRICS);
            enc.usize(rows.len());
            for row in rows {
                encode_metric_row(row, &mut enc);
            }
            enc.usize(flight.len());
            for ev in flight {
                encode_trace_event(ev, &mut enc);
            }
            enc.into_bytes()
        }
        Reply::Traces {
            critical_path,
            traces,
        } => {
            let mut enc = payload_with(TAG_TRACES);
            encode_critical_path(critical_path, &mut enc);
            enc.usize(traces.len());
            for t in traces {
                encode_trace(t, &mut enc);
            }
            enc.into_bytes()
        }
    }
}

/// Decodes a reply payload (strict, panic-free — see [`decode_request`]).
pub fn decode_reply(payload: &[u8]) -> Result<Reply, WireError> {
    let (_proto, tag, mut dec) = open_payload(payload)?;
    match tag {
        TAG_ERROR => {
            let msg = dec.str()?;
            finish(&dec, Reply::Error(msg))
        }
        TAG_BUSY => finish(&dec, Reply::Busy),
        TAG_MATCHES => {
            let per_arrival = Vec::<Vec<(u64, u64)>>::decode(&mut dec)?;
            finish(&dec, Reply::Matches(per_arrival))
        }
        TAG_WINDOW => {
            let info = WindowInfo::decode(&mut dec)?;
            finish(&dec, Reply::Window(info))
        }
        TAG_ENTITY => {
            let info = EntityInfo::decode(&mut dec)?;
            finish(&dec, Reply::Entity(info))
        }
        TAG_STATS_REPLY => {
            let info = StatsInfo::decode(&mut dec)?;
            finish(&dec, Reply::Stats(info))
        }
        TAG_ACK => {
            let v = dec.u64()?;
            finish(&dec, Reply::Ack(v))
        }
        TAG_INGEST_ACK => {
            let seq = dec.u64()?;
            let per_arrival = Vec::<Vec<(u64, u64)>>::decode(&mut dec)?;
            finish(&dec, Reply::IngestAck { seq, per_arrival })
        }
        TAG_INGEST_BUSY => {
            let seq = dec.u64()?;
            finish(&dec, Reply::IngestBusy { seq })
        }
        TAG_ROWS => {
            let seq = dec.u64()?;
            let rows = Vec::<Vec<u64>>::decode(&mut dec)?;
            finish(&dec, Reply::Rows { seq, rows })
        }
        TAG_SUB_ACK => {
            let sub_id = dec.u64()?;
            let seq = dec.u64()?;
            let rows = Vec::<Vec<u64>>::decode(&mut dec)?;
            finish(&dec, Reply::SubAck { sub_id, seq, rows })
        }
        TAG_NOTIFY => {
            let sub_id = dec.u64()?;
            let seq = dec.u64()?;
            let added = Vec::<Vec<u64>>::decode(&mut dec)?;
            let retracted = Vec::<Vec<u64>>::decode(&mut dec)?;
            finish(
                &dec,
                Reply::Notify {
                    sub_id,
                    seq,
                    added,
                    retracted,
                },
            )
        }
        TAG_LAGGED => {
            let sub_id = dec.u64()?;
            let resync_seq = dec.u64()?;
            finish(&dec, Reply::Lagged { sub_id, resync_seq })
        }
        TAG_STATS_EX => {
            let info = StatsExInfo::decode(&mut dec)?;
            finish(&dec, Reply::StatsEx(info))
        }
        TAG_METRICS => {
            let n = dec.usize()?;
            let mut rows = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                rows.push(decode_metric_row(&mut dec)?);
            }
            let n = dec.usize()?;
            let mut flight = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                flight.push(decode_trace_event(&mut dec)?);
            }
            finish(&dec, Reply::Metrics { rows, flight })
        }
        TAG_TRACES => {
            let critical_path = decode_critical_path(&mut dec)?;
            let n = dec.usize()?;
            let mut traces = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                traces.push(decode_trace(&mut dec)?);
            }
            finish(
                &dec,
                Reply::Traces {
                    critical_path,
                    traces,
                },
            )
        }
        t => Err(WireError::UnknownTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use ter_repo::{Record, Schema};
    use ter_text::Dictionary;

    fn sample_batch() -> Vec<Arrival> {
        let schema = Schema::new(vec!["a", "b"]);
        let mut dict = Dictionary::new();
        (0..3)
            .map(|i| Arrival {
                stream_id: i % 2,
                timestamp: i as u64,
                record: Record::from_texts(
                    &schema,
                    i as u64,
                    &[Some("hello world"), if i == 1 { None } else { Some("x") }],
                    &mut dict,
                ),
            })
            .collect()
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ingest(sample_batch()),
            Request::Ingest(Vec::new()),
            Request::IngestSeq {
                seq: 7,
                batch: sample_batch(),
            },
            Request::Query(Query::Window),
            Request::Query(Query::Entity(42)),
            Request::Query(Query::Results),
            Request::PatternQuery("match(a, b) -> a".into()),
            Request::Subscribe {
                sub_id: 3,
                resync_seq: 17,
                pattern: "match(a, b), live(c)".into(),
            },
            Request::Unsubscribe { sub_id: 3 },
            Request::Stats,
            Request::MetricsDump,
            Request::TraceDump,
            Request::Checkpoint,
            Request::Shutdown,
        ];
        for req in &reqs {
            let payload = encode_request(req);
            assert_eq!(&decode_request(&payload).unwrap(), req, "{req:?}");
        }
    }

    /// The borrow-based pipelined encoder must be byte-identical to
    /// encoding the owned request — same frames on the wire, no clone.
    #[test]
    fn borrowed_ingest_seq_encoding_is_byte_identical() {
        let batch = sample_batch();
        let owned = encode_request(&Request::IngestSeq {
            seq: 42,
            batch: batch.clone(),
        });
        assert_eq!(encode_ingest_seq(42, &batch), owned);
        assert_eq!(
            encode_ingest_seq(7, &[]),
            encode_request(&Request::IngestSeq {
                seq: 7,
                batch: Vec::new()
            })
        );
    }

    /// v1 verbs are emitted as v1 payloads (an old daemon keeps working);
    /// pipelined messages as v2; and a v1 payload cannot smuggle a v2 tag.
    #[test]
    fn versions_are_minimal_and_enforced() {
        assert_eq!(encode_request(&Request::Stats)[0], PROTO_V1);
        assert_eq!(encode_request(&Request::Ingest(Vec::new()))[0], PROTO_V1);
        let seq_payload = encode_request(&Request::IngestSeq {
            seq: 0,
            batch: Vec::new(),
        });
        assert_eq!(seq_payload[0], PROTO_V2);
        assert_eq!(encode_reply(&Reply::Busy)[0], PROTO_V1);
        assert_eq!(encode_reply(&Reply::IngestBusy { seq: 3 })[0], PROTO_V2);

        // Version downgrade on a v2-only tag must be rejected.
        let mut smuggled = seq_payload.clone();
        smuggled[0] = PROTO_V1;
        assert!(matches!(
            decode_request(&smuggled),
            Err(WireError::UnknownTag(_))
        ));

        // The query-layer messages are v3, and cannot be smuggled into a
        // v2 (or v1) payload either.
        let sub_payload = encode_request(&Request::Subscribe {
            sub_id: 1,
            resync_seq: 0,
            pattern: "live(a)".into(),
        });
        assert_eq!(sub_payload[0], PROTO_V3);
        assert_eq!(
            encode_request(&Request::PatternQuery("live(a)".into()))[0],
            PROTO_V3
        );
        assert_eq!(
            encode_request(&Request::Unsubscribe { sub_id: 1 })[0],
            PROTO_V3
        );
        assert_eq!(
            encode_reply(&Reply::Notify {
                sub_id: 0,
                seq: 0,
                added: vec![],
                retracted: vec![],
            })[0],
            PROTO_V3
        );
        assert_eq!(
            encode_reply(&Reply::Lagged {
                sub_id: 0,
                resync_seq: 0
            })[0],
            PROTO_V3
        );
        for downgrade in [PROTO_V1, PROTO_V2] {
            let mut smuggled = sub_payload.clone();
            smuggled[0] = downgrade;
            assert!(matches!(
                decode_request(&smuggled),
                Err(WireError::UnknownTag(_))
            ));
        }

        // The observability surface is v3 on both directions, and its
        // tags cannot be smuggled into older payloads either.
        let metrics_payload = encode_request(&Request::MetricsDump);
        assert_eq!(metrics_payload[0], PROTO_V3);
        assert_eq!(
            encode_reply(&Reply::Metrics {
                rows: vec![],
                flight: vec![]
            })[0],
            PROTO_V3
        );
        assert_eq!(
            encode_reply(&Reply::StatsEx(StatsExInfo::default()))[0],
            PROTO_V3
        );
        for downgrade in [PROTO_V1, PROTO_V2] {
            let mut smuggled = metrics_payload.clone();
            smuggled[0] = downgrade;
            assert!(matches!(
                decode_request(&smuggled),
                Err(WireError::UnknownTag(_))
            ));
        }
        // The tracing surface rides v3 too, both directions.
        let trace_payload = encode_request(&Request::TraceDump);
        assert_eq!(trace_payload[0], PROTO_V3);
        assert_eq!(
            encode_reply(&Reply::Traces {
                critical_path: CriticalPath::ZERO,
                traces: vec![]
            })[0],
            PROTO_V3
        );
        for downgrade in [PROTO_V1, PROTO_V2] {
            let mut smuggled = trace_payload.clone();
            smuggled[0] = downgrade;
            assert!(matches!(
                decode_request(&smuggled),
                Err(WireError::UnknownTag(_))
            ));
        }
        // A Stats verb re-stamped v3 is legal (old tag, new payload) and
        // decodes to the same verb — the StatsEx opt-in.
        let v3_stats = encode_stats_v3();
        assert_eq!(v3_stats[0], PROTO_V3);
        let (proto, req) = decode_request_versioned(&v3_stats).unwrap();
        assert_eq!(proto, PROTO_V3);
        assert!(matches!(req, Request::Stats));

        // The versioned decoder reports what arrived.
        let (proto, req) = decode_request_versioned(&seq_payload).unwrap();
        assert_eq!(proto, PROTO_V2);
        assert!(matches!(req, Request::IngestSeq { seq: 0, .. }));
        let (proto, _) = decode_request_versioned(&encode_request(&Request::Stats)).unwrap();
        assert_eq!(proto, PROTO_V1);
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            Reply::Error("boom".into()),
            Reply::Busy,
            Reply::Matches(vec![vec![(1, 2), (3, 4)], vec![], vec![(5, 9)]]),
            Reply::Window(WindowInfo {
                len: 2,
                capacity: 400,
                live_ids: vec![3, 7],
            }),
            Reply::Entity(EntityInfo {
                found: true,
                stream_id: 1,
                timestamp: 99,
                possibly_topical: true,
                partners: vec![4],
            }),
            Reply::Stats(StatsInfo {
                next_batch_seq: 12,
                session_arrivals: 1200,
                wal_bytes: 4096,
                window_len: 400,
                stats: PruneStats {
                    total_pairs: 10,
                    matches: 2,
                    ..Default::default()
                },
            }),
            Reply::Ack(77),
            Reply::IngestAck {
                seq: 9,
                per_arrival: vec![vec![(1, 2)], vec![]],
            },
            Reply::IngestBusy { seq: 10 },
            Reply::Rows {
                seq: 4,
                rows: vec![vec![1, 2], vec![9]],
            },
            Reply::SubAck {
                sub_id: 8,
                seq: 12,
                rows: vec![vec![3, 4]],
            },
            Reply::Notify {
                sub_id: 8,
                seq: 13,
                added: vec![vec![5, 6]],
                retracted: vec![vec![3, 4], vec![7, 7]],
            },
            Reply::Lagged {
                sub_id: 8,
                resync_seq: 13,
            },
            Reply::StatsEx(StatsExInfo {
                base: StatsInfo {
                    next_batch_seq: 12,
                    session_arrivals: 1200,
                    wal_bytes: 4096,
                    window_len: 400,
                    stats: PruneStats::default(),
                },
                uptime_micros: 55_000,
                connections: 3,
                subscribers: 2,
                fsyncs: 40,
            }),
            Reply::Metrics {
                rows: vec![
                    MetricRow {
                        name: "ter_store_fsyncs_total".into(),
                        kind: ter_obs::KIND_COUNTER,
                        value: 9,
                        sum: 0,
                        buckets: vec![],
                    },
                    MetricRow {
                        name: "ter_store_fsync_micros".into(),
                        kind: ter_obs::KIND_HISTOGRAM,
                        value: 9,
                        sum: 1200,
                        buckets: vec![0, 3, 6],
                    },
                ],
                flight: vec![TraceEvent {
                    ts_micros: 17,
                    kind: ter_obs::kind::FSYNC,
                    seq: 4,
                    a: 2,
                    b: 0,
                    dur_micros: 130,
                }],
            },
            Reply::Traces {
                critical_path: CriticalPath {
                    traces: 3,
                    total_micros: 9000,
                    frontend_micros: 100,
                    gate_micros: 0,
                    queue_wait_micros: 700,
                    compute_micros: 5000,
                    barrier_micros: 300,
                    wal_micros: 400,
                    fsync_exposed_micros: 1500,
                    notify_micros: 200,
                    write_back_micros: 500,
                    other_micros: 300,
                },
                traces: vec![Trace {
                    batch_seq: 42,
                    start: 1_000_000,
                    dur: 3_000,
                    covered: 4,
                    anomaly: true,
                    spans: vec![
                        Span {
                            batch_seq: 42,
                            kind: ter_obs::trace::kind::ROOT,
                            parent: ter_obs::trace::kind::ROOT,
                            start: 1_000_000,
                            dur: 3_000,
                        },
                        Span {
                            batch_seq: 42,
                            kind: ter_obs::trace::kind::FSYNC,
                            parent: ter_obs::trace::kind::ROOT,
                            start: 1_002_000,
                            dur: 600,
                        },
                    ],
                }],
            },
        ];
        for reply in &replies {
            let payload = encode_reply(reply);
            assert_eq!(&decode_reply(&payload).unwrap(), reply, "{reply:?}");
        }
    }

    #[test]
    fn stream_round_trip_and_eof() {
        let payload = encode_request(&Request::Stats);
        let mut buf = Vec::new();
        write_message(&mut buf, &payload).unwrap();
        write_message(&mut buf, &payload).unwrap();
        let mut cursor = Cursor::new(&buf);
        assert_eq!(read_message(&mut cursor).unwrap(), payload);
        assert_eq!(read_message(&mut cursor).unwrap(), payload);
        // Clean EOF between frames surfaces as an io error, not a hang.
        assert!(matches!(read_message(&mut cursor), Err(WireError::Io(_))));
    }

    #[test]
    fn wrong_version_and_unknown_tags_rejected() {
        let mut payload = encode_request(&Request::Stats);
        payload[0] = 9;
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::Version(9))
        ));
        let mut enc = Encoder::new();
        enc.u8(PROTO_VERSION);
        enc.u8(0x7F);
        assert!(matches!(
            decode_request(&enc.into_bytes()),
            Err(WireError::UnknownTag(0x7F))
        ));
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        let mut cursor = Cursor::new(&buf);
        assert!(matches!(
            read_message(&mut cursor),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = encode_request(&Request::Shutdown);
        payload.push(0);
        assert!(decode_request(&payload).is_err());
        let mut payload = encode_reply(&Reply::Busy);
        payload.push(0);
        assert!(decode_reply(&payload).is_err());
    }
}
