//! The static complete data repository `R` with per-attribute domains.
//!
//! §3 of the paper imputes a missing `r[A_j]` by (1) finding repository
//! samples `s` satisfying the CDD constraints on the determinant attributes
//! and (2) collecting candidate values `val ∈ dom(A_j)` with
//! `dist(s[A_j], val) ∈ A_j.I`. The repository therefore maintains, for
//! every attribute, the deduplicated value domain `dom(A_j)` plus each
//! sample's value as a *domain id*, so step (2) never re-hashes token sets.

use ter_text::fxhash::FxHashMap;
use ter_text::TokenSet;

use crate::record::{Record, RecordId, Schema};

/// Per-attribute value domain `dom(A_j)`: deduplicated values with dense ids.
#[derive(Debug, Clone, Default)]
pub struct Domain {
    values: Vec<TokenSet>,
    ids: FxHashMap<TokenSet, u32>,
}

impl Domain {
    /// Interns `value`, returning its domain id.
    pub fn intern(&mut self, value: &TokenSet) -> u32 {
        if let Some(&id) = self.ids.get(value) {
            return id;
        }
        let id = self.values.len() as u32;
        self.values.push(value.clone());
        self.ids.insert(value.clone(), id);
        id
    }

    /// Id of `value` if it occurs in the domain.
    pub fn lookup(&self, value: &TokenSet) -> Option<u32> {
        self.ids.get(value).copied()
    }

    /// The value with domain id `id`.
    pub fn value(&self, id: u32) -> &TokenSet {
        &self.values[id as usize]
    }

    /// All distinct values.
    pub fn values(&self) -> &[TokenSet] {
        &self.values
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The complete data repository `R` (Definition in §2.2, "Imputing Missing
/// Attributes"). Samples must be complete; incomplete insertions are
/// rejected, mirroring the paper's assumption.
#[derive(Debug, Clone)]
pub struct Repository {
    schema: Schema,
    samples: Vec<Record>,
    /// `value_ids[i][j]` = domain id of sample `i`'s attribute `j`.
    value_ids: Vec<Vec<u32>>,
    domains: Vec<Domain>,
}

impl Repository {
    /// Creates an empty repository over `schema`.
    pub fn new(schema: Schema) -> Self {
        let d = schema.arity();
        Self {
            schema,
            samples: Vec::new(),
            value_ids: Vec::new(),
            domains: vec![Domain::default(); d],
        }
    }

    /// Builds a repository from complete records.
    ///
    /// # Panics
    /// Panics if any record is incomplete or has the wrong arity.
    pub fn from_records(schema: Schema, records: Vec<Record>) -> Self {
        let mut repo = Self::new(schema);
        for r in records {
            repo.insert(r);
        }
        repo
    }

    /// Inserts one complete sample (also the §5.5 dynamic-update path).
    pub fn insert(&mut self, record: Record) {
        assert_eq!(record.attrs.len(), self.schema.arity(), "arity mismatch");
        assert!(
            record.is_complete(),
            "repository samples must be complete (record {})",
            record.id
        );
        let ids = record
            .attrs
            .iter()
            .enumerate()
            .map(|(j, v)| self.domains[j].intern(v.as_ref().unwrap()))
            .collect();
        self.value_ids.push(ids);
        self.samples.push(record);
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of samples `|R|`.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the repository holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples.
    pub fn samples(&self) -> &[Record] {
        &self.samples
    }

    /// Sample at position `i` (positions are stable; there is no deletion).
    pub fn sample(&self, i: usize) -> &Record {
        &self.samples[i]
    }

    /// Position of the sample with record id `id`, if present.
    pub fn position_of(&self, id: RecordId) -> Option<usize> {
        self.samples.iter().position(|s| s.id == id)
    }

    /// The domain `dom(A_j)`.
    pub fn domain(&self, j: usize) -> &Domain {
        &self.domains[j]
    }

    /// Domain id of sample `i`'s attribute `j`.
    pub fn value_id(&self, i: usize, j: usize) -> u32 {
        self.value_ids[i][j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ter_text::Dictionary;

    fn small_repo() -> (Repository, Dictionary) {
        let schema = Schema::new(vec!["gender", "symptom", "diagnosis"]);
        let mut dict = Dictionary::new();
        let recs = vec![
            Record::from_texts(
                &schema,
                1,
                &[
                    Some("male"),
                    Some("weight loss blurred vision"),
                    Some("diabetes"),
                ],
                &mut dict,
            ),
            Record::from_texts(
                &schema,
                2,
                &[Some("female"), Some("fever cough"), Some("pneumonia")],
                &mut dict,
            ),
            Record::from_texts(
                &schema,
                3,
                &[Some("male"), Some("fever cough"), Some("flu")],
                &mut dict,
            ),
        ];
        (Repository::from_records(schema, recs), dict)
    }

    #[test]
    fn domains_deduplicate() {
        let (repo, _) = small_repo();
        assert_eq!(repo.domain(0).len(), 2); // male, female
        assert_eq!(repo.domain(1).len(), 2); // two symptom strings
        assert_eq!(repo.domain(2).len(), 3);
    }

    #[test]
    fn value_ids_resolve_to_values() {
        let (repo, _) = small_repo();
        for i in 0..repo.len() {
            for j in 0..repo.schema().arity() {
                let id = repo.value_id(i, j);
                assert_eq!(repo.domain(j).value(id), repo.sample(i).attr(j).unwrap());
            }
        }
    }

    #[test]
    #[should_panic(expected = "complete")]
    fn incomplete_sample_rejected() {
        let schema = Schema::new(vec!["a", "b"]);
        let mut repo = Repository::new(schema.clone());
        repo.insert(Record::new(&schema, 1, vec![None, Some(TokenSet::empty())]));
    }

    #[test]
    fn dynamic_insert_extends_domains() {
        let (mut repo, mut dict) = small_repo();
        let schema = repo.schema().clone();
        let n = repo.len();
        repo.insert(Record::from_texts(
            &schema,
            4,
            &[
                Some("female"),
                Some("red eye itchy"),
                Some("conjunctivitis"),
            ],
            &mut dict,
        ));
        assert_eq!(repo.len(), n + 1);
        assert_eq!(repo.domain(2).len(), 4);
        assert_eq!(repo.position_of(4), Some(n));
    }

    #[test]
    fn domain_lookup_roundtrip() {
        let (repo, mut dict) = small_repo();
        let v = ter_text::tokenize("fever cough", &mut dict);
        let id = repo.domain(1).lookup(&v).expect("value in domain");
        assert_eq!(repo.domain(1).value(id), &v);
        let absent = ter_text::tokenize("absent thing", &mut dict);
        assert_eq!(repo.domain(1).lookup(&absent), None);
    }
}
