//! The DR-index `I_R` (§5.1): an aR-tree over pivot-converted repository
//! samples.
//!
//! Each sample `s ∈ R` becomes the `d`-dimensional point
//! `(dist(s[A_1], piv_1[A_1]), …, dist(s[A_d], piv_1[A_d]))`. Leaf entries
//! carry the paper's three aggregate kinds, and inner nodes their merge:
//!
//! 1. a Boolean keyword vector `V_s`;
//! 2. intervals bounding the distances to the *auxiliary* pivots
//!    `dist(s[A_x], piv_a[A_x])`, `a ≥ 2`;
//! 3. intervals bounding the token-set sizes `|T(s[A_x])|`.
//!
//! During imputation the engine range-queries the tree with per-attribute
//! main-pivot distance bounds derived from the CDD constraints, pruning
//! subtrees by aggregate before verifying samples exactly.

use ter_index::{ArTree, Entry, Rect};
use ter_text::{Interval, KeywordSet, TopicVector};

use crate::pivot::PivotTable;
use crate::repository::Repository;

/// Node/leaf aggregate of the DR-index (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct DrAggregate {
    /// OR of keyword vectors of all samples beneath.
    pub topics: TopicVector,
    /// Minimal bounding intervals of auxiliary-pivot distances, flattened
    /// in the layout given by [`DrIndex::aux_offset`].
    pub aux: Vec<Interval>,
    /// Minimal bounding intervals of token-set sizes, one per attribute.
    pub token_sizes: Vec<Interval>,
}

impl ter_index::Aggregate for DrAggregate {
    fn merge(&mut self, other: &Self) {
        self.topics.or_assign(&other.topics);
        for (a, b) in self.aux.iter_mut().zip(&other.aux) {
            a.expand_interval(b);
        }
        for (a, b) in self.token_sizes.iter_mut().zip(&other.token_sizes) {
            a.expand_interval(b);
        }
    }
}

/// The DR-index over a repository. Payloads are sample positions in `R`.
#[derive(Debug, Clone)]
pub struct DrIndex {
    tree: ArTree<usize, DrAggregate>,
    /// `aux_offsets[j]` = start of attribute `j`'s auxiliary intervals in
    /// [`DrAggregate::aux`]; `aux_offsets[d]` = total length.
    aux_offsets: Vec<usize>,
}

impl DrIndex {
    /// Bulk-builds the index over every sample of `repo`.
    ///
    /// `keywords` fixes the keyword universe for the Boolean vectors; use
    /// [`KeywordSet::universe`] when topics are unconstrained.
    pub fn build(
        repo: &Repository,
        pivots: &PivotTable,
        keywords: &KeywordSet,
        max_fanout: usize,
    ) -> Self {
        let d = repo.schema().arity();
        let mut aux_offsets = Vec::with_capacity(d + 1);
        let mut off = 0;
        for j in 0..d {
            aux_offsets.push(off);
            off += pivots.aux_count(j);
        }
        aux_offsets.push(off);

        let entries: Vec<Entry<usize, DrAggregate>> = (0..repo.len())
            .map(|i| {
                let s = repo.sample(i);
                let point = pivots.convert_complete(&s.attrs).into_boxed_slice();
                Entry {
                    point,
                    payload: i,
                    agg: leaf_aggregate(repo, pivots, keywords, &aux_offsets, i),
                }
            })
            .collect();
        Self {
            tree: ArTree::bulk_load(d, max_fanout, entries),
            aux_offsets,
        }
    }

    /// Inserts one more sample (dynamic repository, §5.5). `pos` must be
    /// the sample's position in the repository.
    pub fn insert_sample(
        &mut self,
        repo: &Repository,
        pivots: &PivotTable,
        keywords: &KeywordSet,
        pos: usize,
    ) {
        let s = repo.sample(pos);
        let point = pivots.convert_complete(&s.attrs);
        let agg = leaf_aggregate(repo, pivots, keywords, &self.aux_offsets, pos);
        self.tree.insert(point, pos, agg);
    }

    /// The underlying aR-tree (for the engine's 3-way index join).
    pub fn tree(&self) -> &ArTree<usize, DrAggregate> {
        &self.tree
    }

    /// Start of attribute `j`'s auxiliary-interval block in the aggregate.
    pub fn aux_offset(&self, j: usize) -> usize {
        self.aux_offsets[j]
    }

    /// Sample positions whose converted point falls inside the given
    /// per-attribute main-pivot distance bounds (`None` = unconstrained).
    /// This is the coarse candidate retrieval of the index join; callers
    /// verify exact CDD constraints on the returned samples.
    pub fn candidate_samples(&self, bounds: &[Option<Interval>]) -> Vec<usize> {
        let rect = Rect::new(
            bounds
                .iter()
                .map(|b| clamp_unit(b.unwrap_or_else(Interval::unit)))
                .collect(),
        );
        self.tree
            .range_query(&rect)
            .into_iter()
            .map(|e| e.payload)
            .collect()
    }
}

/// Clamps a query interval to the valid distance range `[0,1]`.
fn clamp_unit(i: Interval) -> Interval {
    Interval::new(
        i.lo.clamp(0.0, 1.0),
        i.hi.clamp(0.0, 1.0).max(i.lo.clamp(0.0, 1.0)),
    )
}

fn leaf_aggregate(
    repo: &Repository,
    pivots: &PivotTable,
    keywords: &KeywordSet,
    aux_offsets: &[usize],
    pos: usize,
) -> DrAggregate {
    let d = repo.schema().arity();
    let s = repo.sample(pos);
    let mut aux = vec![Interval::empty(); aux_offsets[d]];
    let mut token_sizes = Vec::with_capacity(d);
    for j in 0..d {
        let v = s.attr(j).unwrap();
        for a in 0..pivots.aux_count(j) {
            aux[aux_offsets[j] + a] = Interval::point(pivots.aux_distance(j, a, v));
        }
        token_sizes.push(Interval::point(v.len() as f64));
    }
    DrAggregate {
        topics: keywords.topic_vector(&s.all_tokens()),
        aux,
        token_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pivot::PivotConfig;
    use crate::record::{Record, Schema};
    use ter_text::Dictionary;

    fn setup() -> (Repository, PivotTable, Dictionary) {
        let schema = Schema::new(vec!["title", "venue"]);
        let mut dict = Dictionary::new();
        let texts = [
            ("entity resolution over streams", "sigmod"),
            ("approximate joins on data streams", "sigmod"),
            ("skyline queries incomplete streams", "vldb"),
            ("topic aware entity matching", "vldb"),
            ("record linkage web databases", "icde"),
            ("probabilistic entity linking networks", "sigmod"),
            ("temporal record linking profiles", "icde"),
            ("meta blocking entity resolution", "tkde"),
        ];
        let recs = texts
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                Record::from_texts(&schema, i as u64, &[Some(a), Some(b)], &mut dict)
            })
            .collect();
        let repo = Repository::from_records(schema, recs);
        let pivots = PivotTable::select(&repo, &PivotConfig::default());
        (repo, pivots, dict)
    }

    #[test]
    fn build_indexes_all_samples() {
        let (repo, pivots, dict) = setup();
        let kw = KeywordSet::parse("entity", &dict);
        let idx = DrIndex::build(&repo, &pivots, &kw, 4);
        assert_eq!(idx.tree().len(), repo.len());
        // Unconstrained query returns everything.
        let all = idx.candidate_samples(&[None, None]);
        assert_eq!(all.len(), repo.len());
    }

    #[test]
    fn candidate_query_matches_linear_scan() {
        let (repo, pivots, dict) = setup();
        let kw = KeywordSet::parse("entity", &dict);
        let idx = DrIndex::build(&repo, &pivots, &kw, 4);
        let bound = Interval::new(0.0, 0.4);
        let mut got = idx.candidate_samples(&[Some(bound), None]);
        got.sort_unstable();
        let expect: Vec<usize> = (0..repo.len())
            .filter(|&i| {
                let v = repo.sample(i).attr(0).unwrap();
                bound.contains(pivots.convert_value(0, v))
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn root_aggregate_covers_all_topics() {
        let (repo, pivots, dict) = setup();
        let kw = KeywordSet::parse("entity skyline", &dict);
        let idx = DrIndex::build(&repo, &pivots, &kw, 4);
        let root = idx.tree().root_agg().unwrap();
        assert_eq!(root.topics.count_ones(), 2); // both keywords occur in R
                                                 // Token-size aggregate covers each sample's sizes.
        for i in 0..repo.len() {
            for j in 0..2 {
                let sz = repo.sample(i).attr(j).unwrap().len() as f64;
                assert!(root.token_sizes[j].contains(sz));
            }
        }
    }

    #[test]
    fn aux_intervals_bound_every_sample() {
        let (repo, pivots, dict) = setup();
        let kw = KeywordSet::universe();
        let idx = DrIndex::build(&repo, &pivots, &kw, 4);
        let root = idx.tree().root_agg().unwrap();
        let _ = dict;
        for i in 0..repo.len() {
            for j in 0..2 {
                for a in 0..pivots.aux_count(j) {
                    let d = pivots.aux_distance(j, a, repo.sample(i).attr(j).unwrap());
                    assert!(root.aux[idx.aux_offset(j) + a].contains(d));
                }
            }
        }
    }

    #[test]
    fn dynamic_insert_is_queryable() {
        let (mut repo, pivots, mut dict) = setup();
        let kw = KeywordSet::universe();
        let mut idx = DrIndex::build(&repo, &pivots, &kw, 4);
        let schema = repo.schema().clone();
        repo.insert(Record::from_texts(
            &schema,
            99,
            &[Some("crowdsourced entity matching oracle"), Some("vldb")],
            &mut dict,
        ));
        idx.insert_sample(&repo, &pivots, &kw, repo.len() - 1);
        assert_eq!(idx.tree().len(), repo.len());
        let all = idx.candidate_samples(&[None, None]);
        assert!(all.contains(&(repo.len() - 1)));
    }

    #[test]
    fn out_of_range_bounds_are_clamped() {
        let (repo, pivots, dict) = setup();
        let kw = KeywordSet::universe();
        let _ = dict;
        let idx = DrIndex::build(&repo, &pivots, &kw, 4);
        // Triangle-inequality-derived bounds can exceed [0,1]; must clamp.
        let got = idx.candidate_samples(&[Some(Interval::new(-0.5, 1.5)), None]);
        assert_eq!(got.len(), repo.len());
    }
}
