//! Data repository substrate for the TER-iDS reproduction.
//!
//! The paper assumes a static, complete data repository `R` "collected or
//! inferred from historical stream data" that powers the CDD-based
//! imputation (§2.2/§3). This crate provides:
//!
//! * [`Schema`] / [`Record`] — the `d`-attribute textual tuple model shared
//!   by the repository and the streams (missing attributes are `None`,
//!   printed as "−" in the paper);
//! * [`Repository`] — the complete sample store with per-attribute value
//!   domains `dom(A_j)` and support for the dynamic-update extension of
//!   §5.5;
//! * [`pivot`] — the cost-model-based pivot selection of §5.4/Appendix B
//!   (Shannon-entropy quality measure, `P` buckets, `eMin`, `cntMax`,
//!   main + auxiliary pivots);
//! * [`DrIndex`] — the DR-index `I_R` of §5.1: an aR-tree over
//!   pivot-converted repository points whose nodes aggregate keyword
//!   vectors, auxiliary-pivot distance intervals, and token-set-size
//!   intervals.

pub mod drindex;
pub mod pivot;
pub mod record;
pub mod repository;

pub use drindex::{DrAggregate, DrIndex};
pub use pivot::{AttributePivots, PivotConfig, PivotTable};
pub use record::{Record, RecordId, Schema};
pub use repository::Repository;
