//! Cost-model-based pivot selection (§5.4 and Appendix B).
//!
//! Textual attribute values are converted to numbers via Jaccard distance to
//! *pivot* strings; all indexes operate in that converted space. A good
//! pivot spreads the converted values evenly, which the paper measures with
//! the Shannon entropy of a `P`-bucket histogram (Equation 5):
//!
//! ```text
//! H(piv_a[A_x]) = − Σ_b pdf[p_b] · log(pdf[p_b])
//! ```
//!
//! Appendix B's algorithm: per attribute, pick the domain value with the
//! largest entropy as the *main* pivot; while the joint entropy of the
//! selected pivots stays below `eMin` and fewer than `cntMax` pivots are
//! chosen, greedily add the *auxiliary* pivot that maximizes the joint
//! entropy (each new pivot subdivides the converted space further).

use ter_text::fxhash::FxHashMap;
use ter_text::TokenSet;

use crate::repository::Repository;

/// Tunables of the pivot cost model (paper defaults: `P = 10`,
/// `eMin = 1.5`, `cntMax` varied in `[1, 5]` in Figure 11(b)).
#[derive(Debug, Clone, Copy)]
pub struct PivotConfig {
    /// Number of histogram buckets `P` in Equation (5).
    pub buckets: usize,
    /// Minimal acceptable (joint) entropy `eMin`.
    pub e_min: f64,
    /// Maximal number of pivots per attribute `cntMax`.
    pub cnt_max: usize,
    /// Cap on candidate pivot values examined per attribute (the paper
    /// scans the whole domain; large domains make that quadratic, so we
    /// deterministically subsample evenly spaced candidates).
    pub max_candidates: usize,
    /// Cap on repository samples used to estimate the histograms.
    pub max_samples: usize,
}

impl Default for PivotConfig {
    fn default() -> Self {
        Self {
            buckets: 10,
            e_min: 1.5,
            cnt_max: 3,
            max_candidates: 64,
            max_samples: 512,
        }
    }
}

/// Selected pivots for one attribute. `pivots[0]` is the main pivot used
/// for the metric-space conversion; the rest are auxiliary pivots used only
/// in index aggregates.
#[derive(Debug, Clone)]
pub struct AttributePivots {
    /// Pivot attribute values, main first.
    pub pivots: Vec<TokenSet>,
    /// Joint entropy achieved after selecting each prefix of `pivots`.
    pub entropy_trace: Vec<f64>,
}

impl AttributePivots {
    /// The main pivot `piv_1[A_x]`.
    pub fn main(&self) -> &TokenSet {
        &self.pivots[0]
    }

    /// Auxiliary pivots `piv_a`, `a ≥ 2`.
    pub fn auxiliaries(&self) -> &[TokenSet] {
        &self.pivots[1..]
    }

    /// Total number of pivots `n_x`.
    pub fn count(&self) -> usize {
        self.pivots.len()
    }
}

/// All selected pivots, one [`AttributePivots`] per attribute, plus the
/// conversion helpers used everywhere downstream.
#[derive(Debug, Clone)]
pub struct PivotTable {
    per_attr: Vec<AttributePivots>,
}

impl PivotTable {
    /// Runs the Appendix B selection over repository `R`.
    ///
    /// # Panics
    /// Panics if the repository is empty (there is nothing to pivot on).
    pub fn select(repo: &Repository, cfg: &PivotConfig) -> Self {
        assert!(
            !repo.is_empty(),
            "cannot select pivots from an empty repository"
        );
        let d = repo.schema().arity();
        let per_attr = (0..d).map(|j| select_for_attr(repo, j, cfg)).collect();
        Self { per_attr }
    }

    /// Builds a table from explicit pivots (tests, degenerate setups).
    pub fn from_pivots(per_attr: Vec<AttributePivots>) -> Self {
        assert!(per_attr.iter().all(|p| !p.pivots.is_empty()));
        Self { per_attr }
    }

    /// Pivots of attribute `j`.
    pub fn attr(&self, j: usize) -> &AttributePivots {
        &self.per_attr[j]
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.per_attr.len()
    }

    /// Converts one attribute value: `dist(value, piv_1[A_j])`.
    #[inline]
    pub fn convert_value(&self, j: usize, value: &TokenSet) -> f64 {
        self.per_attr[j].main().jaccard_distance(value)
    }

    /// Distance to auxiliary pivot `a` (0-based among auxiliaries).
    #[inline]
    pub fn aux_distance(&self, j: usize, a: usize, value: &TokenSet) -> f64 {
        self.per_attr[j].auxiliaries()[a].jaccard_distance(value)
    }

    /// Number of auxiliary pivots of attribute `j`.
    pub fn aux_count(&self, j: usize) -> usize {
        self.per_attr[j].count() - 1
    }

    /// Converts a complete record into its `d`-dimensional point.
    ///
    /// # Panics
    /// Panics if any attribute is missing — incomplete tuples are converted
    /// to *regions*, not points (see the imputation bounds in `ter-impute`).
    pub fn convert_complete(&self, attrs: &[Option<TokenSet>]) -> Vec<f64> {
        attrs
            .iter()
            .enumerate()
            .map(|(j, v)| {
                self.convert_value(
                    j,
                    v.as_ref().expect("attribute missing in convert_complete"),
                )
            })
            .collect()
    }
}

/// Shannon entropy (Equation 5) of the bucket histogram of `dists`.
pub fn bucket_entropy(dists: &[f64], buckets: usize) -> f64 {
    if dists.is_empty() {
        return 0.0;
    }
    let mut counts = vec![0usize; buckets];
    for &d in dists {
        let b = ((d.clamp(0.0, 1.0)) * buckets as f64) as usize;
        counts[b.min(buckets - 1)] += 1;
    }
    let n = dists.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Joint entropy of the multi-pivot bucketization: each sample maps to the
/// tuple of its bucket ids under every selected pivot; entropy is taken
/// over that joint histogram (more pivots ⇒ finer cells ⇒ entropy can only
/// grow, matching Appendix B's "divide the converted space into more
/// sub-intervals").
fn joint_entropy(per_pivot_dists: &[Vec<f64>], buckets: usize) -> f64 {
    let n = per_pivot_dists.first().map_or(0, Vec::len);
    if n == 0 {
        return 0.0;
    }
    let mut counts: FxHashMap<u64, usize> = FxHashMap::default();
    for i in 0..n {
        // Pack bucket ids into a u64 key (buckets ≤ 2^8 per pivot, ≤ 8 pivots).
        let mut key = 0u64;
        for dists in per_pivot_dists {
            let b = ((dists[i].clamp(0.0, 1.0)) * buckets as f64) as u64;
            key = key << 8 | b.min(buckets as u64 - 1);
        }
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n as f64;
            -p * p.ln()
        })
        .sum()
}

/// Evenly subsamples `k` indices out of `0..n` (deterministic).
fn subsample_indices(n: usize, k: usize) -> Vec<usize> {
    if n <= k {
        return (0..n).collect();
    }
    (0..k).map(|i| i * n / k).collect()
}

fn select_for_attr(repo: &Repository, j: usize, cfg: &PivotConfig) -> AttributePivots {
    let domain = repo.domain(j);
    let sample_rows = subsample_indices(repo.len(), cfg.max_samples);
    let sample_values: Vec<&TokenSet> = sample_rows
        .iter()
        .map(|&i| repo.sample(i).attr(j).unwrap())
        .collect();
    let candidate_ids = subsample_indices(domain.len(), cfg.max_candidates);

    // Distances of every sample to every candidate pivot.
    let cand_dists: Vec<Vec<f64>> = candidate_ids
        .iter()
        .map(|&cid| {
            let piv = domain.value(cid as u32);
            sample_values
                .iter()
                .map(|v| piv.jaccard_distance(v))
                .collect()
        })
        .collect();

    // Main pivot: maximal single entropy.
    let entropies: Vec<f64> = cand_dists
        .iter()
        .map(|d| bucket_entropy(d, cfg.buckets))
        .collect();
    let best = entropies
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0);

    let mut chosen = vec![best];
    let mut chosen_dists = vec![cand_dists[best].clone()];
    let mut trace = vec![entropies[best]];

    // Greedy auxiliary pivots while joint entropy < eMin.
    while *trace.last().unwrap() < cfg.e_min && chosen.len() < cfg.cnt_max {
        let mut best_gain: Option<(usize, f64)> = None;
        for (ci, dists) in cand_dists.iter().enumerate() {
            if chosen.contains(&ci) {
                continue;
            }
            chosen_dists.push(dists.clone());
            let h = joint_entropy(&chosen_dists, cfg.buckets);
            chosen_dists.pop();
            if best_gain.is_none_or(|(_, bh)| h > bh) {
                best_gain = Some((ci, h));
            }
        }
        let Some((ci, h)) = best_gain else { break };
        // Stop if the extra pivot does not improve the joint entropy.
        if h <= *trace.last().unwrap() + 1e-12 {
            break;
        }
        chosen.push(ci);
        chosen_dists.push(cand_dists[ci].clone());
        trace.push(h);
    }

    AttributePivots {
        pivots: chosen
            .iter()
            .map(|&ci| domain.value(candidate_ids[ci] as u32).clone())
            .collect(),
        entropy_trace: trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, Schema};
    use ter_text::Dictionary;

    fn repo_with_values(values: &[&str]) -> (Repository, Dictionary) {
        let schema = Schema::new(vec!["a"]);
        let mut dict = Dictionary::new();
        let recs = values
            .iter()
            .enumerate()
            .map(|(i, v)| Record::from_texts(&schema, i as u64, &[Some(v)], &mut dict))
            .collect();
        (Repository::from_records(schema, recs), dict)
    }

    #[test]
    fn entropy_of_uniform_buckets_is_high() {
        let dists: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let h = bucket_entropy(&dists, 10);
        assert!((h - (10.0f64).ln()).abs() < 1e-9, "h={h}");
    }

    #[test]
    fn entropy_of_single_bucket_is_zero() {
        let dists = vec![0.45; 50];
        assert_eq!(bucket_entropy(&dists, 10), 0.0);
    }

    #[test]
    fn entropy_empty_is_zero() {
        assert_eq!(bucket_entropy(&[], 10), 0.0);
    }

    #[test]
    fn joint_entropy_monotone_in_pivots() {
        let d1: Vec<f64> = (0..64).map(|i| (i % 4) as f64 / 4.0).collect();
        let d2: Vec<f64> = (0..64).map(|i| (i % 8) as f64 / 8.0).collect();
        let single = joint_entropy(std::slice::from_ref(&d1), 10);
        let joint = joint_entropy(&[d1, d2], 10);
        assert!(joint >= single - 1e-12);
    }

    #[test]
    fn select_picks_a_pivot_per_attribute() {
        let (repo, _) = repo_with_values(&[
            "alpha beta",
            "alpha gamma",
            "beta gamma delta",
            "delta epsilon",
            "epsilon zeta",
            "zeta alpha",
            "gamma delta",
            "beta epsilon",
        ]);
        let table = PivotTable::select(&repo, &PivotConfig::default());
        assert_eq!(table.arity(), 1);
        assert!(table.attr(0).count() >= 1);
        assert!(table.attr(0).count() <= 3);
    }

    #[test]
    fn low_entropy_domain_adds_auxiliaries_up_to_cnt_max() {
        // All values identical → every pivot has zero entropy; the
        // algorithm must stop at the no-improvement check, not loop.
        let (repo, _) = repo_with_values(&["same", "same", "same", "same"]);
        let cfg = PivotConfig {
            e_min: 5.0,
            cnt_max: 4,
            ..PivotConfig::default()
        };
        let table = PivotTable::select(&repo, &cfg);
        assert_eq!(table.attr(0).count(), 1);
        assert_eq!(table.attr(0).entropy_trace[0], 0.0);
    }

    #[test]
    fn convert_value_is_distance_to_main() {
        let (repo, mut dict) = repo_with_values(&["alpha beta", "gamma delta"]);
        let table = PivotTable::select(&repo, &PivotConfig::default());
        let v = ter_text::tokenize("alpha beta", &mut dict);
        let expected = table.attr(0).main().jaccard_distance(&v);
        assert_eq!(table.convert_value(0, &v), expected);
    }

    #[test]
    fn convert_complete_produces_unit_coordinates() {
        let (repo, _) = repo_with_values(&["alpha", "beta", "gamma", "alpha beta gamma"]);
        let table = PivotTable::select(&repo, &PivotConfig::default());
        for s in repo.samples() {
            let p = table.convert_complete(&s.attrs);
            assert_eq!(p.len(), 1);
            assert!((0.0..=1.0).contains(&p[0]));
        }
    }

    #[test]
    #[should_panic(expected = "empty repository")]
    fn empty_repo_panics() {
        let schema = Schema::new(vec!["a"]);
        let repo = Repository::new(schema);
        let _ = PivotTable::select(&repo, &PivotConfig::default());
    }

    #[test]
    fn high_e_min_selects_multiple_pivots_when_useful() {
        // Values spread so that one pivot cannot reach eMin but more help.
        let vals: Vec<String> = (0..32)
            .map(|i| {
                let mut words = Vec::new();
                for w in 0..5 {
                    words.push(format!("w{}", (i * 7 + w * 3) % 16));
                }
                words.join(" ")
            })
            .collect();
        let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
        let (repo, _) = repo_with_values(&refs);
        let cfg = PivotConfig {
            e_min: 3.0,
            cnt_max: 4,
            ..PivotConfig::default()
        };
        let table = PivotTable::select(&repo, &cfg);
        let ap = table.attr(0);
        // Either reached eMin or used more than one pivot trying.
        assert!(ap.count() > 1 || *ap.entropy_trace.last().unwrap() >= cfg.e_min);
        // Entropy trace is non-decreasing.
        assert!(ap.entropy_trace.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }
}
