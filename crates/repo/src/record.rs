//! The `d`-attribute textual tuple model (Definition 1).
//!
//! Every record carries a unique id and `d` attribute values, each a
//! [`TokenSet`] or missing (`None`, the paper's "−"). Repository samples
//! are always complete; stream tuples may be incomplete.

use ter_text::{tokenize, Dictionary, TokenSet};

/// Unique record/profile identifier (`rid` in Definition 1).
pub type RecordId = u64;

/// The attribute layout shared by a repository and its streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<String>,
}

impl Schema {
    /// Builds a schema from attribute names.
    ///
    /// # Panics
    /// Panics if `attrs` is empty (the similarity function needs `d ≥ 1`).
    pub fn new<S: Into<String>>(attrs: Vec<S>) -> Self {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        assert!(!attrs.is_empty(), "schema needs at least one attribute");
        Self { attrs }
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names in order.
    pub fn attr_names(&self) -> &[String] {
        &self.attrs
    }

    /// Index of the attribute called `name`.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == name)
    }
}

/// One record: id plus `d` optional token-set values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Unique profile identifier.
    pub id: RecordId,
    /// `attrs[j]` is `T(r[A_j])`, or `None` when `r[A_j] = "−"`.
    pub attrs: Vec<Option<TokenSet>>,
}

impl Record {
    /// Builds a record, checking the arity against `schema`.
    pub fn new(schema: &Schema, id: RecordId, attrs: Vec<Option<TokenSet>>) -> Self {
        assert_eq!(
            attrs.len(),
            schema.arity(),
            "record arity does not match schema"
        );
        Self { id, attrs }
    }

    /// Convenience constructor from raw attribute strings
    /// (`None` = missing), tokenizing into `dict`.
    pub fn from_texts(
        schema: &Schema,
        id: RecordId,
        texts: &[Option<&str>],
        dict: &mut Dictionary,
    ) -> Self {
        assert_eq!(texts.len(), schema.arity());
        let attrs = texts.iter().map(|t| t.map(|s| tokenize(s, dict))).collect();
        Self { id, attrs }
    }

    /// Value of attribute `j`, or `None` when missing.
    #[inline]
    pub fn attr(&self, j: usize) -> Option<&TokenSet> {
        self.attrs[j].as_ref()
    }

    /// Whether attribute `j` is missing.
    #[inline]
    pub fn is_missing(&self, j: usize) -> bool {
        self.attrs[j].is_none()
    }

    /// Indices of missing attributes.
    pub fn missing_attrs(&self) -> Vec<usize> {
        (0..self.attrs.len())
            .filter(|&j| self.is_missing(j))
            .collect()
    }

    /// Whether every attribute is present.
    pub fn is_complete(&self) -> bool {
        self.attrs.iter().all(|a| a.is_some())
    }

    /// Summed per-attribute similarity (Definition 5).
    ///
    /// Defined on complete records; a missing attribute contributes 0
    /// (no shared evidence — including when *both* sides are missing), so
    /// the function stays total. Callers that need the paper's exact
    /// semantics impute first.
    pub fn similarity(&self, other: &Record) -> f64 {
        let empty = TokenSet::empty();
        self.attrs
            .iter()
            .zip(&other.attrs)
            .map(|(a, b)| {
                let a = a.as_ref().unwrap_or(&empty);
                let b = b.as_ref().unwrap_or(&empty);
                a.er_similarity(b)
            })
            .sum()
    }

    /// Summed per-attribute Jaccard distance; `similarity + distance = d`.
    pub fn distance(&self, other: &Record) -> f64 {
        self.attrs.len() as f64 - self.similarity(other)
    }

    /// Union of all attribute token sets — the token set used by the topic
    /// test `ϖ(r, K)` ("the token set of r contains at least one keyword").
    pub fn all_tokens(&self) -> TokenSet {
        let mut acc = TokenSet::empty();
        for a in self.attrs.iter().flatten() {
            acc = acc.union(a);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema4() -> Schema {
        Schema::new(vec!["gender", "symptom", "diagnosis", "treatment"])
    }

    #[test]
    fn schema_lookup() {
        let s = schema4();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.attr_index("diagnosis"), Some(2));
        assert_eq!(s.attr_index("nope"), None);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_schema_panics() {
        let _ = Schema::new(Vec::<String>::new());
    }

    #[test]
    fn from_texts_marks_missing() {
        let s = schema4();
        let mut d = Dictionary::new();
        // Tuple a2 from Table 1 of the paper.
        let r = Record::from_texts(
            &s,
            2,
            &[
                Some("male"),
                Some("loss of weight, blurred vision"),
                None,
                None,
            ],
            &mut d,
        );
        assert!(!r.is_complete());
        assert_eq!(r.missing_attrs(), vec![2, 3]);
        assert!(r.attr(1).unwrap().len() == 5);
    }

    #[test]
    fn similarity_sums_over_attributes() {
        let s = schema4();
        let mut d = Dictionary::new();
        let a = Record::from_texts(
            &s,
            1,
            &[
                Some("male"),
                Some("loss of weight"),
                Some("diabetes"),
                Some("drug therapy"),
            ],
            &mut d,
        );
        let b = Record::from_texts(
            &s,
            2,
            &[
                Some("male"),
                Some("blurred vision"),
                Some("diabetes"),
                Some("drug therapy"),
            ],
            &mut d,
        );
        // gender 1.0 + symptom 0.0 + diagnosis 1.0 + treatment 1.0
        assert!((a.similarity(&b) - 3.0).abs() < 1e-12);
        assert!((a.distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_identity_is_arity() {
        let s = schema4();
        let mut d = Dictionary::new();
        let a = Record::from_texts(
            &s,
            1,
            &[
                Some("female"),
                Some("fever cough"),
                Some("pneumonia"),
                Some("rest"),
            ],
            &mut d,
        );
        assert!((a.similarity(&a) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn all_tokens_unions_attributes() {
        let s = schema4();
        let mut d = Dictionary::new();
        let r = Record::from_texts(
            &s,
            1,
            &[Some("male"), Some("fever"), None, Some("rest fever")],
            &mut d,
        );
        let all = r.all_tokens();
        assert_eq!(all.len(), 3); // male, fever, rest
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let s = schema4();
        let _ = Record::new(&s, 1, vec![None, None]);
    }

    #[test]
    fn missing_vs_missing_carries_no_evidence() {
        let s = Schema::new(vec!["a", "b"]);
        let mut d = Dictionary::new();
        let x = Record::from_texts(&s, 1, &[Some("t"), None], &mut d);
        let y = Record::from_texts(&s, 2, &[Some("t"), None], &mut d);
        // A both-missing attribute contributes nothing (two extraction
        // failures are not an agreement).
        assert!((x.similarity(&y) - 1.0).abs() < 1e-12);
    }
}
