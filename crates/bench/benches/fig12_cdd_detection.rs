//! Figure 12 (Appendix C.2): offline CDD-detection time per dataset.
//!
//! Paper's reading: detection time grows with repository size (85.6 s on
//! Citations up to 6,260 s on Songs at their scale) and EBooks costs more
//! than similarly-sized datasets because of its large token sets.

use std::time::Instant;

use ter_bench::{header, BenchScale};
use ter_datasets::{preset, GenOptions, Preset};
use ter_rules::{detect_cdds, DiscoveryConfig};

fn main() {
    let scale = BenchScale::default();
    header("Figure 12", "offline CDD detection time per dataset");
    println!(
        "{:<11} {:>10} {:>12} {:>10}",
        "dataset", "|R|", "time (s)", "#CDDs"
    );
    for p in Preset::all() {
        let ds = preset(
            p,
            &GenOptions {
                scale: scale.for_preset(p),
                ..GenOptions::default()
            },
        );
        let t = Instant::now();
        let rules = detect_cdds(&ds.repo, &DiscoveryConfig::default());
        let secs = t.elapsed().as_secs_f64();
        println!(
            "{:<11} {:>10} {:>12.4} {:>10}",
            p.name(),
            ds.repo.len(),
            secs,
            rules.len()
        );
    }
    println!("(paper: 85.6 s Citations … 6,260 s Songs; EBooks disproportionately slow)");
}
