//! Criterion micro-benchmarks for the hot primitives: Jaccard on token
//! sets, aR-tree maintenance/queries, ER-grid maintenance, imputation of
//! one tuple, and one full engine step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ter_datasets::{preset, GenOptions, Preset};
use ter_ids::{ErProcessor, Params, PruningMode, TerContext, TerIdsEngine};
use ter_impute::{ImputeConfig, ImputeContext, Imputer, RuleImputer, RuleRetrieval};
use ter_index::{ArTree, Rect};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;
use ter_text::{Dictionary, Interval, Token, TokenSet};

fn bench_jaccard(c: &mut Criterion) {
    let a: TokenSet = (0..32u32).step_by(2).map(Token).collect();
    let b: TokenSet = (0..32u32).step_by(3).map(Token).collect();
    c.bench_function("jaccard/32-token sets", |bench| {
        bench.iter(|| std::hint::black_box(a.jaccard(&b)))
    });
    let long_a: TokenSet = (0..512u32).step_by(2).map(Token).collect();
    let long_b: TokenSet = (0..512u32).step_by(3).map(Token).collect();
    c.bench_function("jaccard/512-token sets", |bench| {
        bench.iter(|| std::hint::black_box(long_a.jaccard(&long_b)))
    });
}

fn bench_artree(c: &mut Criterion) {
    let points: Vec<Vec<f64>> = (0..2_000)
        .map(|i| vec![(i as f64 * 0.137) % 1.0, (i as f64 * 0.311) % 1.0])
        .collect();
    c.bench_function("artree/insert-2000", |bench| {
        bench.iter_batched(
            || points.clone(),
            |pts| {
                let mut t: ArTree<u32, ()> = ArTree::new(2, 16);
                for (i, p) in pts.into_iter().enumerate() {
                    t.insert(p, i as u32, ());
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    let mut tree: ArTree<u32, ()> = ArTree::new(2, 16);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u32, ());
    }
    let range = Rect::new(vec![Interval::new(0.2, 0.4), Interval::new(0.2, 0.4)]);
    c.bench_function("artree/range-query-2000", |bench| {
        bench.iter(|| std::hint::black_box(tree.range_query(&range).len()))
    });
}

fn bench_imputation(c: &mut Criterion) {
    let ds = preset(
        Preset::Citations,
        &GenOptions {
            scale: 0.2,
            ..GenOptions::default()
        },
    );
    let ctx = TerContext::build(
        ds.repo.clone(),
        ds.keywords(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let incomplete = ds
        .streams
        .stream(0)
        .iter()
        .find(|r| !r.is_complete())
        .expect("an incomplete tuple")
        .clone();
    let indexed = RuleImputer::new(
        "indexed",
        &ctx.repo,
        &ctx.pivots,
        &ctx.cdds,
        RuleRetrieval::Indexed {
            cdd_indexes: &ctx.cdd_indexes,
            dr_index: &ctx.dr_index,
        },
        ImputeConfig::default(),
    );
    let linear = RuleImputer::new(
        "linear",
        &ctx.repo,
        &ctx.pivots,
        &ctx.cdds,
        RuleRetrieval::Linear,
        ImputeConfig::default(),
    );
    let ictx = ImputeContext::default();
    c.bench_function("impute/indexed (CDD-index + DR-index)", |bench| {
        bench.iter(|| std::hint::black_box(indexed.impute(&incomplete, &ictx).instance_count()))
    });
    c.bench_function("impute/linear scans", |bench| {
        bench.iter(|| std::hint::black_box(linear.impute(&incomplete, &ictx).instance_count()))
    });
}

fn bench_engine_step(c: &mut Criterion) {
    let ds = preset(
        Preset::Anime,
        &GenOptions {
            scale: 0.2,
            ..GenOptions::default()
        },
    );
    let ctx = TerContext::build(
        ds.repo.clone(),
        ds.keywords(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        16,
    );
    let arrivals = ds.streams.arrivals();
    let params = Params {
        window: 100,
        ..Params::default()
    };
    c.bench_function("engine/full-stream (Anime scale 0.2)", |bench| {
        bench.iter(|| {
            let mut e = TerIdsEngine::new(&ctx, params, PruningMode::Full);
            for a in &arrivals {
                e.process(a);
            }
            std::hint::black_box(e.prune_stats().total_pairs)
        })
    });
}

fn bench_tokenize(c: &mut Criterion) {
    c.bench_function("tokenize/short attribute", |bench| {
        bench.iter_batched(
            Dictionary::new,
            |mut d| ter_text::tokenize("loss of weight, blurred vision", &mut d),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_jaccard, bench_tokenize, bench_artree, bench_imputation, bench_engine_step
}
criterion_main!(benches);
