//! Figure 10: efficiency vs the sliding-window size w (paper:
//! 500–3000; here scaled proportionally), per dataset, all six methods.
//!
//! Paper's reading: time increases with w (more tuples to compare);
//! TER-iDS lowest (0.0006s–0.0093s on their testbed).

use ter_bench::{sweep, BenchScale, Method, Metric};
use ter_datasets::GenOptions;
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    // Paper sweeps 500, 800, 1000, 2000, 3000 with default 1000; we keep
    // the same ratios around the scaled default window.
    let w0 = scale.window as f64;
    let windows: Vec<usize> = [0.5, 0.8, 1.0, 2.0, 3.0]
        .iter()
        .map(|r| ((w0 * r) as usize).max(10))
        .collect();
    sweep(
        "Figure 10",
        "avg wall-clock per arrival vs window size w",
        &windows,
        &Method::all(),
        Metric::Time,
        |p, w| {
            (
                GenOptions {
                    scale: scale.for_preset(p),
                    ..GenOptions::default()
                },
                Params {
                    window: w,
                    ..Params::default()
                },
            )
        },
    );
    println!("\n(paper: time increases with w; TER-iDS lowest everywhere)");
}
