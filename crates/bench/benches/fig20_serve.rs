//! Figure 20 (beyond the paper): service-layer ingest throughput — what
//! the daemon costs on top of the durable library loop, and what
//! pipelined ingest buys back.
//!
//! Three measured configurations over the same EBooks stream:
//!
//! * **library+wal** — the in-process durable loop (`log_batch` with
//!   fsync-per-batch, then `step_batch` on a persistent pool session),
//!   the fastest any durable consumer can go;
//! * **daemon (request/reply)** — the same batches through `ter_serve`
//!   over localhost TCP with one batch in flight: framing + CRC, the
//!   bounded ordered queue, WAL-before-ack, and the checkpoint cadence
//!   all included;
//! * **daemon (pipelined, W unacked batches)** — the v2 windowed
//!   protocol: the round-trip hides behind the window and the daemon
//!   overlaps batch `n+1`'s WAL fsync with batch `n`'s compute.
//!
//! plus two sweeps over the event-driven front end:
//!
//! * **group-commit sweep** — the same pipelined feed (depth 8) at
//!   `flush_window ∈ {1, 8}` with the checkpoint cadence off, counting
//!   WAL fsyncs via [`ServeReport::fsyncs`]. `W=1` must fsync once per
//!   batch (the pre-group-commit contract, bit-identical output); `W=8`
//!   must cover the same batches with at least 4× fewer fsyncs — the
//!   cross-connection group-commit claim, asserted, not just recorded;
//! * **connection herd** — the headline pipelined run repeated with
//!   `TER_FIG20_HERD` idle standing connections (default 256) parked on
//!   the poll loop, recording what a loaded front end costs the feed.
//!
//! Every daemon run is parity-gated: its per-arrival match lists must be
//! bit-identical to the library run's before its throughput is accepted.
//! Results land in `BENCH_serve.json` with a `RunStamp`. When the host
//! has too few CPUs for client + daemon stages to actually run
//! concurrently the JSON is flagged `"undersubscribed": true` and the
//! pipelining speedup-claim assertion is skipped — a 1-CPU container
//! must never record a misleading curve. (The fsync-ratio assertion is
//! *not* CPU-gated: group commit batches fsyncs even time-sliced.)
//!
//! `TER_FIG20_SCALE` scales the stream for quick local runs.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ter_bench::{critical_path_json, header, prepare, RunStamp};
use ter_datasets::{GenOptions, Preset};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{ErProcessor, Params, PruningMode};
use ter_obs::trace::CriticalPath;
use ter_serve::{Client, ServeOptions, ServeReport, Server};
use ter_store::{context_fingerprint, TerStore};

const BATCH: usize = 256;
const CHECKPOINT_EVERY: u64 = 16;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("ter_fig20_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        Self(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn main() {
    let scale: f64 = std::env::var("TER_FIG20_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let preset = Preset::EBooks;
    let params = Params::default();
    let exec = ExecConfig::new(
        8,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4),
    );

    header(
        "Figure 20",
        "service-layer ingest throughput (daemon vs durable library loop)",
    );
    println!(
        "preset={} scale={scale} window={} batch={BATCH} checkpoint_every={CHECKPOINT_EVERY} \
         shards={} threads={}",
        preset.name(),
        params.window,
        exec.shards,
        exec.threads
    );

    let prepared = prepare(
        preset,
        GenOptions {
            scale,
            ..GenOptions::default()
        },
        params,
    );
    let arrivals = &prepared.arrivals;
    let batches: Vec<&[ter_stream::Arrival]> = arrivals.chunks(BATCH).collect();
    let owned_batches: Vec<Vec<ter_stream::Arrival>> = batches.iter().map(|b| b.to_vec()).collect();

    // ---- library+wal: the in-process durable loop ----
    let lib_dir = TempDir::new("lib");
    let fp = context_fingerprint(&prepared.ctx, &prepared.params);
    let mut store = TerStore::open(&lib_dir.0, fp).expect("open store");
    let mut engine =
        ShardedTerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full, exec);
    let mut lib_matches: Vec<Vec<(u64, u64)>> = Vec::new();
    let start = Instant::now();
    engine.with_pool(|pe| {
        for batch in &batches {
            let seq = store.log_batch(batch).expect("wal append");
            lib_matches.extend(pe.step_batch(batch).into_iter().map(|o| o.new_matches));
            if (seq + 1) % CHECKPOINT_EVERY == 0 {
                store.checkpoint(&pe.export_state()).expect("checkpoint");
            }
        }
    });
    let lib_secs = start.elapsed().as_secs_f64();
    let lib_tps = arrivals.len() as f64 / lib_secs;
    println!("library+wal         {lib_secs:>9.2}s {lib_tps:>12.1} tuples/s");

    // One daemon run over a fresh directory; `window == 1` is strict
    // request/reply, `window > 1` the pipelined v2 driver. `idle_conns`
    // standing connections are parked on the poll loop for the duration.
    // The daemon runs in-process (a scoped thread), so the returned
    // critical-path table is the trace registry's delta across the run:
    // the attribution of exactly this feed's acked batches.
    // (wall secs, per-batch served matches, report, trace-table delta)
    type DaemonRun = (f64, Vec<Vec<(u64, u64)>>, ServeReport, CriticalPath);
    let daemon_run =
        |tag: &str, window: usize, opts: ServeOptions, idle_conns: usize| -> DaemonRun {
            let serve_dir = TempDir::new(tag);
            let server = Server::bind("127.0.0.1:0").expect("bind");
            let addr = server.addr().expect("addr");
            let (cp0, _) = ter_obs::trace::snapshot();
            std::thread::scope(|scope| {
                let handle = scope.spawn(|| {
                    server
                        .run(&prepared.ctx, prepared.params, &serve_dir.0, &opts)
                        .expect("serve")
                });
                let herd: Vec<std::net::TcpStream> = (0..idle_conns)
                    .map(|_| std::net::TcpStream::connect(addr).expect("herd connect"))
                    .collect();
                let mut client =
                    Client::connect_retry(addr, Duration::from_secs(30)).expect("connect");
                let mut served: Vec<Vec<(u64, u64)>> = Vec::new();
                let start = Instant::now();
                if window <= 1 {
                    for batch in &batches {
                        served.extend(client.ingest_wait(batch).expect("ingest"));
                    }
                } else {
                    let run = client
                        .ingest_pipelined(&owned_batches, window)
                        .expect("pipelined ingest");
                    served.extend(run.per_batch.into_iter().flatten());
                }
                let secs = start.elapsed().as_secs_f64();
                drop(herd);
                client.shutdown().expect("shutdown");
                let report = handle.join().expect("daemon thread");
                assert_eq!(report.batches, batches.len() as u64);
                let (cp1, _) = ter_obs::trace::snapshot();
                (secs, served, report, cp1.delta(&cp0))
            })
        };
    let base_opts = || ServeOptions {
        checkpoint_every: CHECKPOINT_EVERY,
        exec,
        ..ServeOptions::default()
    };

    // ---- daemon, strict request/reply (one batch in flight) ----
    let (reqrep_secs, reqrep_matches, _, _) = daemon_run("reqrep", 1, base_opts(), 0);
    // Parity gate: throughput of a wrong answer is meaningless.
    assert_eq!(
        reqrep_matches, lib_matches,
        "request/reply daemon results diverged from the library engine"
    );
    let reqrep_tps = arrivals.len() as f64 / reqrep_secs;
    let overhead = lib_tps / reqrep_tps;
    println!(
        "daemon req/reply    {reqrep_secs:>9.2}s {reqrep_tps:>12.1} tuples/s \
         ({overhead:.2}x library+wal time)"
    );

    // ---- daemon, pipelined ingest (W unacked batches) ----
    const PIPELINE_WINDOW: usize = 4;
    let (piped_secs, piped_matches, _, piped_cp) =
        daemon_run("pipelined", PIPELINE_WINDOW, base_opts(), 0);
    assert_eq!(
        piped_matches, lib_matches,
        "pipelined daemon results diverged from the library engine"
    );
    let piped_tps = arrivals.len() as f64 / piped_secs;
    let pipe_speedup = piped_tps / reqrep_tps;
    println!(
        "daemon pipelined W{PIPELINE_WINDOW} {piped_secs:>9.2}s {piped_tps:>12.1} tuples/s \
         ({pipe_speedup:.2}x request/reply)"
    );

    // ---- group-commit sweep: fsyncs vs flush window ----
    // Checkpoint cadence off so every fsync on the counter is a WAL
    // commit; a generous flush interval so the pipelined feed (the step
    // stage is the bottleneck) can actually fill an 8-deep window before
    // the time bound fires.
    const GC_WINDOW: usize = 8;
    let gc_opts = |flush_window: usize| ServeOptions {
        checkpoint_every: 0,
        flush_window,
        flush_interval: Duration::from_secs(2),
        ..base_opts()
    };
    let (gc1_secs, gc1_matches, gc1_report, gc1_cp) = daemon_run("gc_w1", GC_WINDOW, gc_opts(1), 0);
    assert_eq!(
        gc1_matches, lib_matches,
        "flush_window=1 daemon results diverged from the library engine"
    );
    assert_eq!(
        gc1_report.fsyncs, gc1_report.batches,
        "flush_window=1 must degenerate to fsync-per-batch"
    );
    let (gc8_secs, gc8_matches, gc8_report, gc8_cp) =
        daemon_run("gc_w8", GC_WINDOW, gc_opts(GC_WINDOW), 0);
    assert_eq!(
        gc8_matches, lib_matches,
        "flush_window=8 daemon results diverged from the library engine"
    );
    assert!(
        gc8_report.fsyncs * 4 <= gc8_report.batches,
        "group commit at flush_window=8 must cover {} batches with at \
         least 4x fewer fsyncs (got {})",
        gc8_report.batches,
        gc8_report.fsyncs
    );
    println!(
        "group commit W=1    {gc1_secs:>9.2}s  {} fsyncs / {} batches",
        gc1_report.fsyncs, gc1_report.batches
    );
    println!(
        "group commit W=8    {gc8_secs:>9.2}s  {} fsyncs / {} batches \
         ({:.1}x fewer)",
        gc8_report.fsyncs,
        gc8_report.batches,
        gc1_report.fsyncs as f64 / gc8_report.fsyncs as f64
    );
    // The causal traces answer the open perf question behind the sweep:
    // how much fsync time an acked batch actually *waits for* (a shared
    // fsync's duration is charged to each covered batch at 1/covered).
    // At W=1 every batch eats a whole fsync; at W=8 the covering fsync
    // amortizes 8 ways, so the per-batch exposure must drop.
    let w1_exposed = gc1_cp.fsync_exposed_micros / gc1_cp.traces.max(1);
    let w8_exposed = gc8_cp.fsync_exposed_micros / gc8_cp.traces.max(1);
    println!(
        "fsync exposed/batch W=1 {w1_exposed}us  W=8 {w8_exposed}us  \
         ({} traces / {} traces)",
        gc1_cp.traces, gc8_cp.traces
    );

    // ---- connection herd: the headline feed under standing load ----
    let herd_conns: usize = std::env::var("TER_FIG20_HERD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let (herd_secs, herd_matches, _, _) =
        daemon_run("herd", PIPELINE_WINDOW, base_opts(), herd_conns);
    assert_eq!(
        herd_matches, lib_matches,
        "daemon results under the connection herd diverged from the library engine"
    );
    let herd_tps = arrivals.len() as f64 / herd_secs;
    let herd_cost = piped_tps / herd_tps;
    println!(
        "daemon {herd_conns} idle conns {herd_secs:>9.2}s {herd_tps:>12.1} tuples/s \
         ({herd_cost:.2}x pipelined time)"
    );

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    // Bench honesty: with fewer than 2 CPUs the client, the WAL stage,
    // and the step stage time-slice one core — overlap cannot show, so
    // the speedup claim is recorded but not asserted. The JSON is
    // written *before* the gate below so a failed claim leaves its
    // measured evidence behind instead of the stale previous run.
    let undersubscribed = host_cpus < 2;
    // The per-batch fsync-exposure claim needs real concurrency too: on
    // one time-sliced CPU the W=1 run's fsyncs can look artificially
    // cheap (nothing else contends for the disk's dispatch window), so
    // the ratio is recorded but only asserted with ≥2 CPUs visible.
    if !undersubscribed {
        assert!(
            gc1_cp.traces > 0 && gc8_cp.traces > 0,
            "group-commit runs completed no traces — tracing disabled?"
        );
        assert!(
            (w8_exposed as f64) < (w1_exposed as f64) * 0.6,
            "group commit at flush_window=8 must measurably shrink the \
             per-batch fsync-exposed time: W=1 {w1_exposed}us vs W=8 \
             {w8_exposed}us (claim: < 0.6x)"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"fig20_serve\",\n{}\n  \"preset\": \"{}\",\n  \"scale\": {},\n  \
         \"window\": {},\n  \"batch\": {},\n  \"checkpoint_every\": {},\n  \"shards\": {},\n  \
         \"threads\": {},\n  \"host_cpus\": {},\n  \"undersubscribed\": {},\n  \
         \"arrivals\": {},\n  \
         \"library_wal_tuples_per_sec\": {:.1},\n  \"daemon_tuples_per_sec\": {:.1},\n  \
         \"daemon_overhead_factor\": {:.3},\n  \"pipeline_window\": {},\n  \
         \"pipelined_tuples_per_sec\": {:.1},\n  \"pipelined_speedup_vs_request_reply\": {:.3},\n  \
         \"group_commit_batches\": {},\n  \"group_commit_fsyncs_w1\": {},\n  \
         \"group_commit_fsyncs_w8\": {},\n  \"group_commit_fsync_reduction\": {:.3},\n  \
         \"fsync_exposed_per_batch_w1_micros\": {},\n  \
         \"fsync_exposed_per_batch_w8_micros\": {},\n  \
         \"idle_conn_herd\": {},\n  \"herd_tuples_per_sec\": {:.1},\n  \
         \"herd_cost_factor\": {:.3},\n  \"critical_path\": {}\n}}\n",
        RunStamp::capture().json_fields(),
        preset.name(),
        scale,
        params.window,
        BATCH,
        CHECKPOINT_EVERY,
        exec.shards,
        exec.threads,
        host_cpus,
        undersubscribed,
        arrivals.len(),
        lib_tps,
        reqrep_tps,
        overhead,
        PIPELINE_WINDOW,
        piped_tps,
        pipe_speedup,
        gc8_report.batches,
        gc1_report.fsyncs,
        gc8_report.fsyncs,
        gc1_report.fsyncs as f64 / gc8_report.fsyncs as f64,
        w1_exposed,
        w8_exposed,
        herd_conns,
        herd_tps,
        herd_cost,
        critical_path_json(&piped_cp)
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    fs::write(out, &json).expect("write BENCH_serve.json");
    println!("wrote {out}");

    if undersubscribed {
        println!(
            "undersubscribed: {host_cpus} visible CPU(s) — pipelining overlap cannot \
             manifest; recorded the numbers, skipping the speedup-claim assertion"
        );
    } else {
        assert!(
            pipe_speedup > 1.0,
            "pipelined ingest (W={PIPELINE_WINDOW}) must beat request/reply wall-clock \
             on a {host_cpus}-CPU host (got {pipe_speedup:.2}x)"
        );
    }
}
