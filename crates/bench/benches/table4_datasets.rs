//! Table 4 (dataset statistics) and Table 5 (parameter settings).
//!
//! Prints our scaled analogs next to the paper's originals so the
//! proportions are auditable at a glance.

use ter_bench::BenchScale;
use ter_datasets::{preset, GenOptions, Preset};
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    println!("=== Table 4: the tested data sets (scaled analogs) ===");
    println!(
        "{:<11} {:>10} {:>10} {:>14} {:>8} {:>12}",
        "Data Set", "Source A", "Source B", "Correct Match", "Arity", "Repo |R|"
    );
    let paper: [(&str, u32, u32, u32); 5] = [
        ("Citations", 2_614, 2_294, 2_224),
        ("Anime", 4_000, 4_000, 10_704),
        ("Bikes", 4_786, 9_003, 13_815),
        ("EBooks", 6_500, 14_112, 16_719),
        ("Songs", 1_000_000, 1_000_000, 1_292_023),
    ];
    for (p, row) in Preset::all().into_iter().zip(paper) {
        let ds = preset(
            p,
            &GenOptions {
                scale: scale.for_preset(p),
                ..GenOptions::default()
            },
        );
        println!(
            "{:<11} {:>10} {:>10} {:>14} {:>8} {:>12}",
            ds.name,
            ds.streams.stream(0).len(),
            ds.streams.stream(1).len(),
            ds.entity_pairs.len(),
            ds.schema.arity(),
            ds.repo.len(),
        );
        println!(
            "{:<11} {:>10} {:>10} {:>14}   (paper)",
            "", row.1, row.2, row.3
        );
    }

    let params = Params::default();
    println!("\n=== Table 5: parameter settings (defaults in use) ===");
    println!(
        "probabilistic threshold alpha      : 0.1 0.2 [0.5] 0.8 0.9 -> {}",
        params.alpha
    );
    println!(
        "similarity ratio rho = gamma/d     : 0.3 0.4 [0.5] 0.6 0.7 -> {}",
        params.rho
    );
    println!("missing rate xi                    : 0.1 0.2 [0.3] 0.4 0.5 0.8");
    println!(
        "window size w (paper 500..3000)    : scaled -> {}",
        scale.window
    );
    println!("repo ratio eta                     : 0.1 0.2 [0.3] 0.4 0.5");
    println!("missing attributes m               : [1] 2 3");
}
