//! Figure 6: break-up of TER-iDS's per-arrival cost into online CDD
//! selection, online imputation, and online ER.
//!
//! Paper's reading: ER dominates everywhere except Songs (whose large
//! repository makes rule selection + sample retrieval relatively more
//! expensive); EBooks has the highest ER cost (large token sets).

use ter_bench::{header, prepare, run_method, BenchScale, Method};
use ter_datasets::{GenOptions, Preset};
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    header("Figure 6", "TER-iDS break-up cost per arrival (seconds)");
    println!(
        "{:<11} {:>14} {:>14} {:>14}",
        "dataset", "CDD-selection", "imputation", "ER"
    );
    for p in Preset::all() {
        let prepared = prepare(
            p,
            GenOptions {
                scale: scale.for_preset(p),
                ..GenOptions::default()
            },
            Params {
                window: scale.window,
                ..Params::default()
            },
        );
        let r = run_method(&prepared, Method::TerIds);
        let n = r.timing.arrivals.max(1) as f64;
        println!(
            "{:<11} {:>14.6} {:>14.6} {:>14.6}",
            p.name(),
            r.timing.rule_selection.as_secs_f64() / n,
            r.timing.imputation.as_secs_f64() / n,
            r.timing.er.as_secs_f64() / n,
        );
    }
    println!("(paper: ER dominates except on Songs; EBooks' ER cost highest)");
}
