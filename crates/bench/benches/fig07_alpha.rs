//! Figure 7: efficiency vs probabilistic threshold α ∈ {0.1, 0.2, 0.5,
//! 0.8, 0.9}, per dataset, all six methods.
//!
//! Paper's reading: time decreases as α grows (fewer candidates survive);
//! TER-iDS is lowest across the board (0.0008s–0.0175s on their testbed).

use ter_bench::{sweep, BenchScale, Method, Metric};
use ter_datasets::GenOptions;
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    sweep(
        "Figure 7",
        "avg wall-clock per arrival vs alpha",
        &[0.1, 0.2, 0.5, 0.8, 0.9],
        &Method::all(),
        Metric::Time,
        |p, alpha| {
            (
                GenOptions {
                    scale: scale.for_preset(p),
                    ..GenOptions::default()
                },
                Params {
                    alpha,
                    window: scale.window,
                    ..Params::default()
                },
            )
        },
    );
    println!("\n(paper: time decreases with alpha; TER-iDS lowest everywhere)");
}
