//! Figure 11 (Appendix C.1): cost of the cost-model-based pivot-selection
//! algorithm, (a) vs repository ratio η and (b) vs `cntMax`.
//!
//! Paper's reading: (a) selection time grows with η (more samples to
//! histogram) and with dataset size; (b) time grows smoothly with
//! `cntMax` and plateaus once the entropy target `eMin` is met.

use std::time::Instant;

use ter_bench::{header, BenchScale};
use ter_datasets::{preset, GenOptions, Preset};
use ter_repo::{PivotConfig, PivotTable};

fn main() {
    let scale = BenchScale::default();

    header(
        "Figure 11(a)",
        "pivot selection time (s) vs repository ratio eta",
    );
    print!("{:<11}", "dataset");
    for eta in [0.1, 0.2, 0.3, 0.4, 0.5] {
        print!(" {eta:>9}");
    }
    println!();
    for p in Preset::all() {
        print!("{:<11}", p.name());
        for eta in [0.1, 0.2, 0.3, 0.4, 0.5] {
            let ds = preset(
                p,
                &GenOptions {
                    scale: scale.for_preset(p),
                    repo_ratio: eta,
                    ..GenOptions::default()
                },
            );
            let cfg = PivotConfig {
                buckets: 10,
                e_min: 1.5,
                ..PivotConfig::default()
            };
            let t = Instant::now();
            let _ = PivotTable::select(&ds.repo, &cfg);
            print!(" {:>9.4}", t.elapsed().as_secs_f64());
        }
        println!();
    }
    println!("(paper: grows with eta and dataset size; offline, 10^1–10^5 s at full scale)");

    header("Figure 11(b)", "pivot selection time (s) vs cntMax");
    print!("{:<11}", "dataset");
    for cnt in 1..=5usize {
        print!(" {cnt:>9}");
    }
    println!();
    for p in Preset::all() {
        let ds = preset(
            p,
            &GenOptions {
                scale: scale.for_preset(p),
                ..GenOptions::default()
            },
        );
        print!("{:<11}", p.name());
        for cnt in 1..=5usize {
            let cfg = PivotConfig {
                buckets: 10,
                e_min: 1.5,
                cnt_max: cnt,
                ..PivotConfig::default()
            };
            let t = Instant::now();
            let table = PivotTable::select(&ds.repo, &cfg);
            let _ = table;
            print!(" {:>9.4}", t.elapsed().as_secs_f64());
        }
        println!();
    }
    println!("(paper: grows with cntMax, plateaus once eMin=1.5 is reached)");
}
