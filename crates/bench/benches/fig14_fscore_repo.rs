//! Figure 14: F-score vs the repository size ratio η ∈ {0.1 .. 0.5}.
//!
//! Paper's reading: more repository ⇒ better imputation ⇒ higher F-score
//! for the rule-based methods; con+ER is flat (it never touches R);
//! TER-iDS highest (87.5%–98.9%).

use ter_bench::{sweep, BenchScale, Method, Metric};
use ter_datasets::GenOptions;
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    sweep(
        "Figure 14",
        "F-score vs repository ratio eta",
        &[0.1, 0.2, 0.3, 0.4, 0.5],
        &Method::accuracy_set(),
        Metric::FScore,
        |p, eta| {
            (
                GenOptions {
                    scale: scale.for_preset(p),
                    repo_ratio: eta,
                    ..GenOptions::default()
                },
                Params {
                    window: scale.window,
                    ..Params::default()
                },
            )
        },
    );
    println!("\n(paper: rule-based F-scores grow with eta; con+ER flat; TER-iDS highest)");
}
