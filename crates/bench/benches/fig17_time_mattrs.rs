//! Figure 17: efficiency vs the number of missing attributes m ∈ {1,2,3}.
//!
//! Paper's reading: time grows with m (more imputed candidates) except
//! for con+ER (window-based, insensitive); TER-iDS lowest
//! (0.0013s–0.0635s on their testbed).

use ter_bench::{sweep, BenchScale, Method, Metric};
use ter_datasets::GenOptions;
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    sweep(
        "Figure 17",
        "avg wall-clock per arrival vs missing attributes m",
        &[1usize, 2, 3],
        &Method::all(),
        Metric::Time,
        |p, m| {
            (
                GenOptions {
                    scale: scale.for_preset(p),
                    missing_attrs: m,
                    ..GenOptions::default()
                },
                Params {
                    window: scale.window,
                    ..Params::default()
                },
            )
        },
    );
    println!("\n(paper: time grows with m except con+ER; TER-iDS lowest)");
}
