//! Figure 18 (beyond the paper): sharded-engine throughput vs worker
//! threads on the scale-1 preset, seeding the repo's perf trajectory.
//!
//! Sweeps threads ∈ {1, 2, 4, 8} over the batch-parallel engine
//! (`ter_exec`), with the sequential `TerIdsEngine` as the reference, and
//! writes the measured curve to `BENCH_throughput.json` at the repo root.
//! Every parallel run is parity-checked against the sequential reported
//! set before its numbers are accepted — a throughput figure from a
//! diverging engine would be meaningless.
//!
//! Defaults match the acceptance setup (EBooks — the heaviest preset per
//! Figures 5(b)/6 — at generator scale 1.0); `TER_FIG18_SCALE` and
//! `TER_FIG18_BATCH` override for quick local runs.

use std::time::Instant;

use ter_bench::{critical_path_json, header, prepare, Prepared, RunStamp};
use ter_datasets::{GenOptions, Preset};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{ErProcessor, Params, PruningMode, TerIdsEngine};

struct Measured {
    threads: usize,
    secs: f64,
    tuples_per_sec: f64,
    /// Merge-thread barrier rounds per arrival (2 lock-step, ~1
    /// overlapped — the pipelined drive's claim, measured).
    barriers_per_arrival: f64,
    /// The timed run's reported pairs, sorted — parity-checked against the
    /// sequential oracle (timing only the grid-mutation side of the engine
    /// would be pointless if its answers drifted).
    reported: Vec<(u64, u64)>,
    /// Summed per-batch wall time, measured at the call site — the
    /// external truth the trace attribution must account for.
    stepped_us: u64,
    /// This run's critical-path attribution (trace-table delta across
    /// the run): in library mode each batch self-roots its trace, so
    /// the table partitions `stepped_us` into compute/barrier/other.
    critical_path: ter_obs::trace::CriticalPath,
}

fn run_sharded(prepared: &Prepared, threads: usize, shards: usize, batch: usize) -> Measured {
    let mut engine = ShardedTerIdsEngine::new(
        &prepared.ctx,
        prepared.params,
        PruningMode::Full,
        ExecConfig::new(shards, threads),
    );
    let (cp0, _) = ter_obs::trace::snapshot();
    // One persistent worker-pool session for the whole stream — the
    // production execution shape (no per-batch thread spawn).
    let start = Instant::now();
    let mut stepped_us = 0u64;
    engine.with_pool(|pe| {
        for chunk in prepared.arrivals.chunks(batch) {
            let t0 = Instant::now();
            pe.step_batch(chunk);
            stepped_us += t0.elapsed().as_micros() as u64;
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let (cp1, _) = ter_obs::trace::snapshot();
    let mut reported: Vec<(u64, u64)> = engine.reported().iter().copied().collect();
    reported.sort_unstable();
    Measured {
        threads,
        secs,
        tuples_per_sec: prepared.arrivals.len() as f64 / secs,
        barriers_per_arrival: engine
            .stage_metrics()
            .barriers_per_arrival(prepared.arrivals.len() as u64),
        reported,
        stepped_us,
        critical_path: cp1.delta(&cp0),
    }
}

fn main() {
    let scale: f64 = std::env::var("TER_FIG18_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let batch: usize = std::env::var("TER_FIG18_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
        .max(1); // chunks(0) panics
    let shards = 8;
    let preset = Preset::EBooks;
    let params = Params::default();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    header(
        "Figure 18",
        "sharded-engine throughput (tuples/s) vs worker threads",
    );
    println!(
        "preset={} scale={scale} window={} shards={shards} batch={batch} host_cpus={host_cpus}",
        preset.name(),
        params.window
    );
    if host_cpus < 4 {
        println!(
            "NOTE: only {host_cpus} CPU(s) visible — thread counts beyond that \
             time-slice one core and cannot speed up; interpret the curve accordingly"
        );
    }

    let prepared = prepare(
        preset,
        GenOptions {
            scale,
            ..GenOptions::default()
        },
        params,
    );

    // Sequential reference (and the parity oracle for every parallel run).
    let mut seq = TerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full);
    let start = Instant::now();
    for a in &prepared.arrivals {
        seq.process(a);
    }
    let seq_secs = start.elapsed().as_secs_f64();
    let seq_tps = prepared.arrivals.len() as f64 / seq_secs;
    println!(
        "{:<16} {:>9.2}s {:>12.1} tuples/s",
        "sequential", seq_secs, seq_tps
    );
    let mut seq_reported: Vec<(u64, u64)> = seq.reported().iter().copied().collect();
    seq_reported.sort_unstable();

    let swept = [1usize, 2, 4, 8];
    // Bench honesty: thread counts beyond the visible CPUs time-slice one
    // core — a "scaling curve" measured that way is noise, so the curve is
    // flagged and the speedup-claim assertions are skipped.
    let undersubscribed = swept.iter().copied().max().unwrap_or(1) > host_cpus;
    // The sweep's stage histograms (impute/traverse/refine/merge/barrier
    // per batch) come from the global telemetry registry; reset it so the
    // recorded summaries describe exactly this sweep.
    ter_obs::reset();
    let mut series = Vec::new();
    for threads in swept {
        let m = run_sharded(&prepared, threads, shards, batch);
        // Parity gate: throughput of a wrong answer is not throughput.
        assert_eq!(
            m.reported, seq_reported,
            "sharded engine (T={threads}) diverged from sequential"
        );
        // The overlapped drive's structural claim, asserted where it is
        // measured: one combined barrier round per arrival (the lockstep
        // drive needs two). Independent of CPU count — barriers are
        // counted, not timed — so this gates even undersubscribed runs.
        if threads > 1 {
            assert!(
                m.barriers_per_arrival <= 1.01,
                "overlapped drive at T={threads} spent {:.3} barriers/arrival \
                 (claim: ≤ 1 + rounding)",
                m.barriers_per_arrival
            );
        }
        // Causal-trace honesty gate: the critical-path analyzer's
        // segments must account for the latency the bench measured from
        // the outside — within 5% plus per-batch rounding (each span
        // truncates to whole microseconds).
        let attributed = m.critical_path.total_micros;
        assert_eq!(
            m.critical_path.segment_sum(),
            attributed,
            "attribution table does not partition its own total"
        );
        let tol = m.stepped_us / 20 + 2 * m.critical_path.traces + 100;
        assert!(
            m.stepped_us.abs_diff(attributed) <= tol,
            "trace attribution at T={threads} accounts for {attributed}us \
             of {}us measured (tolerance {tol}us)",
            m.stepped_us
        );
        println!(
            "{:<16} {:>9.2}s {:>12.1} tuples/s  ({:.2} barriers/arrival, \
             {attributed}us attributed / {}us measured)",
            format!("threads={}", m.threads),
            m.secs,
            m.tuples_per_sec,
            m.barriers_per_arrival,
            m.stepped_us
        );
        series.push(m);
    }

    let t1 = series[0].tuples_per_sec;
    let speedup_at_4 = series
        .iter()
        .find(|m| m.threads == 4)
        .map(|m| m.tuples_per_sec / t1)
        .unwrap_or(0.0);
    println!("\nspeedup at 4 threads vs 1 thread: {speedup_at_4:.2}x");

    // JSON trajectory record (repo root, next to the sources). Written
    // *before* the speedup gate below: if the claim fails, the measured
    // evidence of the failure must survive, not the stale previous run.
    let rows: Vec<String> = series
        .iter()
        .map(|m| {
            format!(
                "    {{\"threads\": {}, \"secs\": {:.4}, \"tuples_per_sec\": {:.1}, \"speedup_vs_1t\": {:.3}, \"barriers_per_arrival\": {:.3}}}",
                m.threads,
                m.secs,
                m.tuples_per_sec,
                m.tuples_per_sec / t1,
                m.barriers_per_arrival
            )
        })
        .collect();
    // Per-stage wall-time histograms over the whole sweep, from the
    // telemetry registry — the observability layer answering the bench's
    // own question: where does a batch's time actually go?
    let obs = ter_obs::snapshot();
    let stage_rows: Vec<String> = [
        ("impute", "ter_engine_impute_micros"),
        ("traverse", "ter_engine_traverse_micros"),
        ("refine", "ter_engine_refine_micros"),
        ("merge", "ter_engine_merge_micros"),
        ("barrier_wait", "ter_engine_barrier_wait_micros"),
    ]
    .iter()
    .map(|(stage, metric)| {
        let row = obs
            .iter()
            .find(|r| r.name == *metric)
            .expect("stage metric registered");
        format!(
            "    \"{stage}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            row.value,
            row.sum,
            row.quantile(0.50),
            row.quantile(0.95),
            row.quantile(0.99)
        )
    })
    .collect();
    // The whole sweep's attribution table (the registry was reset just
    // before the sweep, so the cumulative table covers exactly it).
    let (sweep_cp, _) = ter_obs::trace::snapshot();
    let json = format!(
        "{{\n  \"bench\": \"fig18_throughput\",\n{}\n  \"preset\": \"{}\",\n  \"scale\": {},\n  \"window\": {},\n  \"shards\": {},\n  \"batch\": {},\n  \"arrivals\": {},\n  \"host_cpus\": {},\n  \"undersubscribed\": {},\n  \"sequential_tuples_per_sec\": {:.1},\n  \"stage_micros\": {{\n{}\n  }},\n  \"critical_path\": {},\n  \"series\": [\n{}\n  ]\n}}\n",
        RunStamp::capture().json_fields(),
        preset.name(),
        scale,
        params.window,
        shards,
        batch,
        prepared.arrivals.len(),
        host_cpus,
        undersubscribed,
        seq_tps,
        stage_rows.join(",\n"),
        critical_path_json(&sweep_cp),
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(out, &json).expect("write BENCH_throughput.json");
    println!("wrote {out}");

    if undersubscribed {
        println!(
            "undersubscribed: sweep max {} threads > {host_cpus} visible CPU(s) — \
             recording the curve, skipping the speedup-claim assertion",
            swept.iter().max().unwrap()
        );
    } else {
        // The design target is ≥1.8× at 4 threads; gate conservatively so
        // shared-runner noise does not flake the bench.
        assert!(
            speedup_at_4 >= 1.2,
            "4-thread speedup {speedup_at_4:.2}x below the 1.2x floor on a \
             {host_cpus}-CPU host (design target 1.8x)"
        );
    }
}
