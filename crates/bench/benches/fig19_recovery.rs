//! Figure 19 (beyond the paper): persistence-layer throughput — what
//! durability costs on the write path and how fast a crashed service is
//! back at its stream position.
//!
//! Three measurements, written to `BENCH_recovery.json`:
//!
//! * **checkpoint write MB/s** — encode + atomic write + fsync of the
//!   full `EngineState` at a steady-state window;
//! * **WAL append tuples/s** — arrival batches appended with
//!   fsync-on-commit (the per-batch durability tax on ingest);
//! * **recovery replay tuples/s** — checkpoint load + import + WAL-suffix
//!   replay at suffix lengths {0, 100, 1000} arrivals, timed end to end
//!   from `TerStore::open` to a caught-up engine.
//!
//! Every recovered engine is parity-gated against the uninterrupted
//! oracle (`export_state` bit-equality) before its numbers are accepted.
//!
//! Defaults use the EBooks preset at generator scale 1.2 (enough stream
//! for a full window *and* a 1000-arrival suffix); `TER_FIG19_SCALE`
//! overrides for quick local runs (suffixes clamp to the stream).

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use ter_bench::{header, prepare, RunStamp};
use ter_datasets::{GenOptions, Preset};
use ter_ids::{ErProcessor, Params, PruningMode, TerIdsEngine};
use ter_store::{context_fingerprint, TerStore};

const BATCH: usize = 100;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("ter_fig19_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        Self(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn main() {
    let scale: f64 = std::env::var("TER_FIG19_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.2);
    let preset = Preset::EBooks;
    let params = Params::default();

    header(
        "Figure 19",
        "WAL/checkpoint write cost and recovery replay throughput",
    );
    println!(
        "preset={} scale={scale} window={} batch={BATCH}",
        preset.name(),
        params.window
    );

    let prepared = prepare(
        preset,
        GenOptions {
            scale,
            ..GenOptions::default()
        },
        params,
    );
    let arrivals = &prepared.arrivals;
    let fp = context_fingerprint(&prepared.ctx, &prepared.params);
    // Base position: window full (400) plus churn, so the checkpoint is a
    // steady-state snapshot; the largest suffix takes whatever remains.
    let min_base = (params.window + 200).min(arrivals.len() / 2);
    let max_suffix = 1000usize.min(arrivals.len().saturating_sub(min_base));
    let base = (arrivals.len() - max_suffix) / BATCH * BATCH;

    // ---- WAL append throughput (fsync per batch) ----
    let wal_dir = TempDir::new("wal");
    let mut store = TerStore::open(&wal_dir.0, fp).expect("open store");
    let start = Instant::now();
    for batch in arrivals.chunks(BATCH) {
        store.log_batch(batch).expect("append");
    }
    let wal_secs = start.elapsed().as_secs_f64();
    let wal_tps = arrivals.len() as f64 / wal_secs;
    let wal_mb = store.wal_len_bytes() as f64 / (1024.0 * 1024.0);
    println!(
        "WAL append      {:>9.2}s {:>12.1} tuples/s ({:.1} MiB, fsync/batch)",
        wal_secs, wal_tps, wal_mb
    );

    // ---- engine warm-up to the base position ----
    let mut engine = TerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full);
    for batch in arrivals[..base].chunks(BATCH) {
        engine.step_batch(batch);
    }

    // ---- checkpoint write throughput ----
    let ck_dir = TempDir::new("ckpt");
    let mut ck_store = TerStore::open(&ck_dir.0, fp).expect("open store");
    let state = engine.export_state();
    let reps = 5;
    let mut ck_bytes = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        ck_bytes = ck_store.checkpoint(&state).expect("checkpoint");
    }
    let ck_secs = start.elapsed().as_secs_f64() / reps as f64;
    let ck_mb = ck_bytes as f64 / (1024.0 * 1024.0);
    let ck_mbps = ck_mb / ck_secs;
    println!(
        "checkpoint      {:>9.4}s {:>12.1} MB/s ({:.2} MiB state, {} live tuples)",
        ck_secs,
        ck_mbps,
        ck_mb,
        state.live_count()
    );

    // ---- recovery replay throughput at suffix lengths {0, 100, 1000} ----
    let mut series = Vec::new();
    for suffix_len in [0usize, 100, 1000] {
        let suffix_len = suffix_len.min(max_suffix);
        let dir = TempDir::new(&format!("rec{suffix_len}"));
        {
            let mut store = TerStore::open(&dir.0, fp).expect("open store");
            // WAL carries the suffix only; the checkpoint owns the prefix.
            let mut crashed = TerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full);
            for batch in arrivals[..base].chunks(BATCH) {
                crashed.step_batch(batch);
            }
            store
                .checkpoint(&crashed.export_state())
                .expect("checkpoint");
            for batch in arrivals[base..base + suffix_len].chunks(BATCH) {
                store.log_batch(batch).expect("append");
                crashed.step_batch(batch);
            }
        }
        // Oracle at the crash position, for the parity gate.
        let mut oracle = TerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full);
        for batch in arrivals[..base + suffix_len].chunks(BATCH) {
            oracle.step_batch(batch);
        }

        let start = Instant::now();
        let store = TerStore::open(&dir.0, fp).expect("reopen");
        let rec = store.recover().expect("recover");
        let mut recovered = TerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full);
        recovered
            .import_state(rec.state.as_ref().expect("state"))
            .expect("import");
        let replayed = rec.replay_into(&mut recovered);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(replayed, suffix_len, "suffix length mismatch");
        // Parity gate: recovery throughput of a wrong state is meaningless.
        assert_eq!(
            recovered.export_state(),
            oracle.export_state(),
            "recovered engine diverged at suffix {suffix_len}"
        );
        let replay_tps = if secs > 0.0 {
            suffix_len as f64 / secs
        } else {
            0.0
        };
        println!(
            "recover+{suffix_len:<6} {:>9.4}s {:>12.1} replay tuples/s",
            secs, replay_tps
        );
        series.push((suffix_len, secs, replay_tps));
    }

    let rows: Vec<String> = series
        .iter()
        .map(|(suffix, secs, tps)| {
            format!(
                "    {{\"wal_suffix\": {suffix}, \"recover_secs\": {secs:.5}, \"replay_tuples_per_sec\": {tps:.1}}}"
            )
        })
        .collect();
    // Single-threaded replay can't oversubscribe, but the schema gate
    // requires every BENCH_*.json to carry the honesty fields.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"fig19_recovery\",\n{}\n  \"preset\": \"{}\",\n  \"scale\": {},\n  \"window\": {},\n  \"batch\": {},\n  \"host_cpus\": {},\n  \"undersubscribed\": false,\n  \"arrivals\": {},\n  \"live_tuples\": {},\n  \"checkpoint_bytes\": {},\n  \"checkpoint_write_mb_per_sec\": {:.1},\n  \"wal_append_tuples_per_sec\": {:.1},\n  \"recovery\": [\n{}\n  ]\n}}\n",
        RunStamp::capture().json_fields(),
        preset.name(),
        scale,
        params.window,
        BATCH,
        host_cpus,
        arrivals.len(),
        state.live_count(),
        ck_bytes,
        ck_mbps,
        wal_tps,
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    fs::write(out, &json).expect("write BENCH_recovery.json");
    println!("wrote {out}");
}
