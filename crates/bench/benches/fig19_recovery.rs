//! Figure 19 (beyond the paper): persistence-layer throughput — what
//! durability costs on the write path and how fast a crashed service is
//! back at its stream position.
//!
//! Two parts, written to `BENCH_recovery.json`:
//!
//! **Part 1 — baseline window (Table-4 EBooks):**
//!
//! * **checkpoint write MB/s** — encode + atomic write + fsync of the
//!   full `EngineState` at a steady-state window;
//! * **WAL append tuples/s** — arrival batches appended with
//!   fsync-on-commit (the per-batch durability tax on ingest);
//! * **recovery replay tuples/s** — checkpoint load + import + WAL-suffix
//!   replay at suffix lengths {0, 100, 1000} arrivals, timed end to end
//!   from `TerStore::open` to a caught-up engine.
//!
//! **Part 2 — full-vs-delta checkpoint sweep at production scale:**
//! every [`ScaleProfile`] (10⁴–10⁵-tuple windows, uniform / hot-key /
//! bursty shapes) runs a daemon-shaped loop — WAL-log, step, stamp —
//! writing a full snapshot *and* an incremental delta at every cadence
//! point, so the two costs are measured on the same states. Churn is
//! measured per stamp (delta-touched entries over live tuples), and
//! whenever it is ≤ 20% the delta stamp is **asserted** to cost ≤ 0.5×
//! the full snapshot. Both stores then recover through their respective
//! ladders (full: flat checkpoint + suffix; delta: base + chain replay +
//! suffix), timed and parity-gated against the live engine.
//!
//! Every recovered engine is parity-gated against the uninterrupted
//! oracle (`export_state` bit-equality) before its numbers are accepted.
//!
//! Part 1 defaults to the EBooks preset at generator scale 1.2 (enough
//! stream for a full window *and* a 1000-arrival suffix);
//! `TER_FIG19_SCALE` overrides for quick local runs (suffixes clamp to
//! the stream). The sweep's per-profile arrival budget defaults to
//! 12 000 (`TER_FIG19_SWEEP_ARRIVALS` overrides; 0 skips the sweep —
//! the engine's per-arrival cost grows with the live window, so filling
//! a 10⁵ window end to end is a soak run, not a bench).

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use ter_bench::{header, prepare, RunStamp};
use ter_datasets::{GenOptions, Preset, ScaleProfile, ScaleShape};
use ter_ids::{delta_between, ErProcessor, Params, PruningMode, TerIdsEngine};
use ter_store::{context_fingerprint, TerStore};

const BATCH: usize = 100;

/// Cadence intervals per sweep run: stamps at the first 7 boundaries
/// (one full base + six chained deltas), the 8th interval left as the
/// WAL suffix so recovery walks the complete ladder.
const SWEEP_INTERVALS: usize = 8;
const SWEEP_STAMPS: usize = SWEEP_INTERVALS - 1;

/// Churn bound under which the delta-vs-full byte guarantee is asserted.
const CHURN_GATE: f64 = 0.20;
/// Asserted ceiling on `delta_bytes / full_bytes` at gated stamps.
const DELTA_RATIO_CEILING: f64 = 0.5;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("ter_fig19_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        Self(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// One stamp of the sweep: the same engine state checkpointed both ways.
struct StampRow {
    live: usize,
    churn: f64,
    full_bytes: u64,
    delta_bytes: u64,
}

/// One profile's sweep result.
struct SweepRow {
    profile: ScaleProfile,
    arrivals: usize,
    live: usize,
    chain_len: usize,
    wal_suffix: usize,
    full_ckpt_secs: f64,
    delta_ckpt_secs: f64,
    recover_full_secs: f64,
    recover_delta_secs: f64,
    stamps: Vec<StampRow>,
}

impl SweepRow {
    /// The steady-state (final-stamp) figures the headline fields quote.
    fn last(&self) -> &StampRow {
        self.stamps.last().expect("sweep stamps")
    }
}

/// Runs one scale profile through the daemon-shaped loop: WAL-log each
/// batch into two stores, step the engine, and at each cadence boundary
/// stamp the same exported state as a full snapshot (store A) and a
/// chained delta (store B). Then crash-recover both stores and
/// parity-gate against the live engine.
fn sweep_profile(profile: ScaleProfile, budget: usize) -> SweepRow {
    let params = Params {
        window: profile.window,
        ..Params::default()
    };
    let prepared = prepare(
        profile.preset,
        profile.gen_options(GenOptions::default()),
        params,
    );
    let budget = budget.min(prepared.arrivals.len());
    let cadence = (budget / SWEEP_INTERVALS).max(1);
    let sizes = profile.batch_sizes(budget, BATCH);
    let fp = context_fingerprint(&prepared.ctx, &prepared.params);

    let full_dir = TempDir::new(&format!("{}_full", profile.name));
    let delta_dir = TempDir::new(&format!("{}_delta", profile.name));
    let mut engine = TerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full);
    let mut stamps: Vec<StampRow> = Vec::new();
    let mut prev: Option<ter_ids::EngineState> = None;
    let mut base_seq = 0u64;
    let (mut full_ckpt_secs, mut delta_ckpt_secs) = (0.0f64, 0.0f64);
    let mut consumed = 0usize;
    let mut suffix = 0usize;

    {
        let mut full_store = TerStore::open(&full_dir.0, fp).expect("open full store");
        let mut delta_store = TerStore::open(&delta_dir.0, fp).expect("open delta store");
        let mut offset = 0usize;
        for size in &sizes {
            let batch = &prepared.arrivals[offset..offset + size];
            offset += size;
            full_store.log_batch(batch).expect("full WAL append");
            delta_store.log_batch(batch).expect("delta WAL append");
            engine.step_batch(batch);
            consumed += size;
            if stamps.len() < SWEEP_STAMPS && consumed >= (stamps.len() + 1) * cadence {
                let seq = delta_store.wal_seq();
                let state = engine.export_state();
                let live = state.live_count();

                let t = Instant::now();
                let full_bytes = full_store.checkpoint_at(seq, &state).expect("full stamp");
                full_ckpt_secs += t.elapsed().as_secs_f64();

                let (churn, delta_bytes) = match &prev {
                    // The chain's base is itself a full snapshot; its
                    // "churn" is the whole window by definition.
                    None => {
                        let t = Instant::now();
                        let bytes = delta_store.checkpoint_at(seq, &state).expect("base stamp");
                        delta_ckpt_secs += t.elapsed().as_secs_f64();
                        (1.0, bytes)
                    }
                    Some(prev_state) => {
                        let d = delta_between(prev_state, &state).expect("delta");
                        let churn = (d.arrivals.len() + d.evicted.len()) as f64 / live as f64;
                        let t = Instant::now();
                        let bytes = delta_store
                            .checkpoint_delta_at(base_seq, seq, &d)
                            .expect("delta stamp");
                        delta_ckpt_secs += t.elapsed().as_secs_f64();
                        // The tentpole guarantee, enforced (not plotted):
                        // low churn must buy a proportionally small stamp.
                        if churn <= CHURN_GATE {
                            assert!(
                                (delta_bytes_ratio(bytes, full_bytes)) <= DELTA_RATIO_CEILING,
                                "{}: delta stamp {} B vs full {} B at churn {:.3}",
                                profile.name,
                                bytes,
                                full_bytes,
                                churn
                            );
                        }
                        (churn, bytes)
                    }
                };
                base_seq = seq;
                prev = Some(state);
                stamps.push(StampRow {
                    live,
                    churn,
                    full_bytes,
                    delta_bytes,
                });
                suffix = 0;
            } else {
                suffix += size;
            }
        }
        // Crash: both stores drop their unsynced tails here.
    }
    assert_eq!(
        stamps.len(),
        SWEEP_STAMPS,
        "{}: cadence starved",
        profile.name
    );
    assert!(
        stamps.iter().any(|s| s.churn <= CHURN_GATE),
        "{}: no stamp exercised the ≤{CHURN_GATE} churn gate",
        profile.name
    );
    let live_final = engine.export_state();

    // Recover both ways, parity-gated against the live engine.
    let recover = |dir: &TempDir, chain_expected: usize| -> f64 {
        let start = Instant::now();
        let store = TerStore::open(&dir.0, fp).expect("reopen");
        let rec = store.recover().expect("recover");
        assert_eq!(rec.chain_applied, chain_expected, "chain links applied");
        let mut recovered = TerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full);
        recovered
            .import_state(rec.state.as_ref().expect("state"))
            .expect("import");
        let replayed = rec.replay_into(&mut recovered);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(replayed, suffix, "suffix length mismatch");
        assert_eq!(
            recovered.export_state(),
            live_final,
            "recovered engine diverged ({})",
            profile.name
        );
        secs
    };
    let recover_full_secs = recover(&full_dir, 0);
    let recover_delta_secs = recover(&delta_dir, SWEEP_STAMPS - 1);

    SweepRow {
        profile,
        arrivals: consumed,
        live: live_final.live_count(),
        chain_len: SWEEP_STAMPS - 1,
        wal_suffix: suffix,
        full_ckpt_secs,
        delta_ckpt_secs,
        recover_full_secs,
        recover_delta_secs,
        stamps,
    }
}

fn delta_bytes_ratio(delta: u64, full: u64) -> f64 {
    delta as f64 / (full as f64).max(1.0)
}

fn shape_name(shape: ScaleShape) -> &'static str {
    match shape {
        ScaleShape::Uniform => "uniform",
        ScaleShape::HotKey { .. } => "hotkey",
        ScaleShape::Bursty { .. } => "bursty",
    }
}

fn main() {
    let scale: f64 = std::env::var("TER_FIG19_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.2);
    let preset = Preset::EBooks;
    let params = Params::default();

    header(
        "Figure 19",
        "WAL/checkpoint write cost and recovery replay throughput",
    );
    println!(
        "preset={} scale={scale} window={} batch={BATCH}",
        preset.name(),
        params.window
    );

    let prepared = prepare(
        preset,
        GenOptions {
            scale,
            ..GenOptions::default()
        },
        params,
    );
    let arrivals = &prepared.arrivals;
    let fp = context_fingerprint(&prepared.ctx, &prepared.params);
    // Base position: window full (400) plus churn, so the checkpoint is a
    // steady-state snapshot; the largest suffix takes whatever remains.
    let min_base = (params.window + 200).min(arrivals.len() / 2);
    let max_suffix = 1000usize.min(arrivals.len().saturating_sub(min_base));
    let base = (arrivals.len() - max_suffix) / BATCH * BATCH;

    // ---- WAL append throughput (fsync per batch) ----
    let wal_dir = TempDir::new("wal");
    let mut store = TerStore::open(&wal_dir.0, fp).expect("open store");
    let start = Instant::now();
    for batch in arrivals.chunks(BATCH) {
        store.log_batch(batch).expect("append");
    }
    let wal_secs = start.elapsed().as_secs_f64();
    let wal_tps = arrivals.len() as f64 / wal_secs;
    let wal_mb = store.wal_len_bytes() as f64 / (1024.0 * 1024.0);
    println!(
        "WAL append      {:>9.2}s {:>12.1} tuples/s ({:.1} MiB, fsync/batch)",
        wal_secs, wal_tps, wal_mb
    );

    // ---- engine warm-up to the base position ----
    let mut engine = TerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full);
    for batch in arrivals[..base].chunks(BATCH) {
        engine.step_batch(batch);
    }

    // ---- checkpoint write throughput ----
    let ck_dir = TempDir::new("ckpt");
    let mut ck_store = TerStore::open(&ck_dir.0, fp).expect("open store");
    let state = engine.export_state();
    let reps = 5;
    let mut ck_bytes = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        ck_bytes = ck_store.checkpoint(&state).expect("checkpoint");
    }
    let ck_secs = start.elapsed().as_secs_f64() / reps as f64;
    let ck_mb = ck_bytes as f64 / (1024.0 * 1024.0);
    let ck_mbps = ck_mb / ck_secs;
    println!(
        "checkpoint      {:>9.4}s {:>12.1} MB/s ({:.2} MiB state, {} live tuples)",
        ck_secs,
        ck_mbps,
        ck_mb,
        state.live_count()
    );

    // ---- recovery replay throughput at suffix lengths {0, 100, 1000} ----
    let mut series = Vec::new();
    for suffix_len in [0usize, 100, 1000] {
        let suffix_len = suffix_len.min(max_suffix);
        let dir = TempDir::new(&format!("rec{suffix_len}"));
        {
            let mut store = TerStore::open(&dir.0, fp).expect("open store");
            // WAL carries the suffix only; the checkpoint owns the prefix.
            let mut crashed = TerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full);
            for batch in arrivals[..base].chunks(BATCH) {
                crashed.step_batch(batch);
            }
            store
                .checkpoint(&crashed.export_state())
                .expect("checkpoint");
            for batch in arrivals[base..base + suffix_len].chunks(BATCH) {
                store.log_batch(batch).expect("append");
                crashed.step_batch(batch);
            }
        }
        // Oracle at the crash position, for the parity gate.
        let mut oracle = TerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full);
        for batch in arrivals[..base + suffix_len].chunks(BATCH) {
            oracle.step_batch(batch);
        }

        let start = Instant::now();
        let store = TerStore::open(&dir.0, fp).expect("reopen");
        let rec = store.recover().expect("recover");
        let mut recovered = TerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full);
        recovered
            .import_state(rec.state.as_ref().expect("state"))
            .expect("import");
        let replayed = rec.replay_into(&mut recovered);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(replayed, suffix_len, "suffix length mismatch");
        // Parity gate: recovery throughput of a wrong state is meaningless.
        assert_eq!(
            recovered.export_state(),
            oracle.export_state(),
            "recovered engine diverged at suffix {suffix_len}"
        );
        let replay_tps = if secs > 0.0 {
            suffix_len as f64 / secs
        } else {
            0.0
        };
        println!(
            "recover+{suffix_len:<6} {:>9.4}s {:>12.1} replay tuples/s",
            secs, replay_tps
        );
        series.push((suffix_len, secs, replay_tps));
    }

    // ---- part 2: full-vs-delta checkpoint sweep at production scale ----
    let sweep_budget: usize = std::env::var("TER_FIG19_SWEEP_ARRIVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12_000);
    let mut sweep_rows: Vec<SweepRow> = Vec::new();
    if sweep_budget > 0 {
        for profile in ScaleProfile::all() {
            let row = sweep_profile(profile, sweep_budget);
            let last = row.last();
            println!(
                "{:<9} window={:>6} live={:>6} churn={:.3}  full {:>9} B  delta {:>8} B  \
                 ({:.3}x)  recover full {:.3}s / delta {:.3}s (chain {}, suffix {})",
                row.profile.name,
                row.profile.window,
                row.live,
                last.churn,
                last.full_bytes,
                last.delta_bytes,
                delta_bytes_ratio(last.delta_bytes, last.full_bytes),
                row.recover_full_secs,
                row.recover_delta_secs,
                row.chain_len,
                row.wal_suffix
            );
            sweep_rows.push(row);
        }
    } else {
        println!("sweep skipped (TER_FIG19_SWEEP_ARRIVALS=0)");
    }

    let rows: Vec<String> = series
        .iter()
        .map(|(suffix, secs, tps)| {
            format!(
                "    {{\"wal_suffix\": {suffix}, \"recover_secs\": {secs:.5}, \"replay_tuples_per_sec\": {tps:.1}}}"
            )
        })
        .collect();
    let sweep_json: Vec<String> = sweep_rows
        .iter()
        .map(|row| {
            let last = row.last();
            let stamp_rows: Vec<String> = row
                .stamps
                .iter()
                .map(|s| {
                    format!(
                        "        {{\"live\": {}, \"churn\": {:.4}, \"full_bytes\": {}, \
                         \"delta_bytes\": {}}}",
                        s.live, s.churn, s.full_bytes, s.delta_bytes
                    )
                })
                .collect();
            format!(
                "    {{\n      \"profile\": \"{}\",\n      \"preset\": \"{}\",\n      \
                 \"shape\": \"{}\",\n      \"window\": {},\n      \"arrivals\": {},\n      \
                 \"live_tuples\": {},\n      \"chain_len\": {},\n      \"wal_suffix\": {},\n      \
                 \"churn_ratio\": {:.4},\n      \"full_bytes\": {},\n      \
                 \"delta_bytes\": {},\n      \"delta_over_full\": {:.4},\n      \
                 \"full_ckpt_secs_total\": {:.4},\n      \"delta_ckpt_secs_total\": {:.4},\n      \
                 \"recover_full_secs\": {:.4},\n      \"recover_delta_secs\": {:.4},\n      \
                 \"stamps\": [\n{}\n      ]\n    }}",
                row.profile.name,
                row.profile.preset.name(),
                shape_name(row.profile.shape),
                row.profile.window,
                row.arrivals,
                row.live,
                row.chain_len,
                row.wal_suffix,
                last.churn,
                last.full_bytes,
                last.delta_bytes,
                delta_bytes_ratio(last.delta_bytes, last.full_bytes),
                row.full_ckpt_secs,
                row.delta_ckpt_secs,
                row.recover_full_secs,
                row.recover_delta_secs,
                stamp_rows.join(",\n")
            )
        })
        .collect();
    // Single-threaded replay can't oversubscribe, but the schema gate
    // requires every BENCH_*.json to carry the honesty fields.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"fig19_recovery\",\n{}\n  \"preset\": \"{}\",\n  \"scale\": {},\n  \"window\": {},\n  \"batch\": {},\n  \"host_cpus\": {},\n  \"undersubscribed\": false,\n  \"arrivals\": {},\n  \"live_tuples\": {},\n  \"checkpoint_bytes\": {},\n  \"checkpoint_write_mb_per_sec\": {:.1},\n  \"wal_append_tuples_per_sec\": {:.1},\n  \"churn_gate\": {CHURN_GATE},\n  \"delta_ratio_ceiling\": {DELTA_RATIO_CEILING},\n  \"recovery\": [\n{}\n  ],\n  \"sweep\": [\n{}\n  ]\n}}\n",
        RunStamp::capture().json_fields(),
        preset.name(),
        scale,
        params.window,
        BATCH,
        host_cpus,
        arrivals.len(),
        state.live_count(),
        ck_bytes,
        ck_mbps,
        wal_tps,
        rows.join(",\n"),
        sweep_json.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    fs::write(out, &json).expect("write BENCH_recovery.json");
    println!("wrote {out}");
}
