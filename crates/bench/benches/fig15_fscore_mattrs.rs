//! Figure 15: F-score vs the number of missing attributes m ∈ {1, 2, 3}.
//!
//! Paper's reading: accuracy decreases with m for every method; TER-iDS
//! stays highest (89.3%–97.3%).

use ter_bench::{sweep, BenchScale, Method, Metric};
use ter_datasets::GenOptions;
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    sweep(
        "Figure 15",
        "F-score vs number of missing attributes m",
        &[1usize, 2, 3],
        &Method::accuracy_set(),
        Metric::FScore,
        |p, m| {
            (
                GenOptions {
                    scale: scale.for_preset(p),
                    missing_attrs: m,
                    ..GenOptions::default()
                },
                Params {
                    window: scale.window,
                    ..Params::default()
                },
            )
        },
    );
    println!("\n(paper: F-score decreases with m; TER-iDS highest, 89.3–97.3%)");
}
