//! Figure 13: F-score vs missing rate ξ ∈ {0.1 .. 0.8}, per dataset
//! (TER-iDS vs DD+ER, er+ER, con+ER — the CDD methods share TER-iDS's
//! accuracy).
//!
//! Paper's reading: accuracy decreases with ξ for every method; TER-iDS
//! stays highest (88.7%–97.3%).

use ter_bench::{sweep, BenchScale, Method, Metric};
use ter_datasets::GenOptions;
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    sweep(
        "Figure 13",
        "F-score vs missing rate xi",
        &[0.1, 0.2, 0.3, 0.4, 0.5, 0.8],
        &Method::accuracy_set(),
        Metric::FScore,
        |p, xi| {
            (
                GenOptions {
                    scale: scale.for_preset(p),
                    missing_rate: xi,
                    ..GenOptions::default()
                },
                Params {
                    window: scale.window,
                    ..Params::default()
                },
            )
        },
    );
    println!("\n(paper: F-score decreases with xi; TER-iDS highest, 88.7–97.3%)");
}
