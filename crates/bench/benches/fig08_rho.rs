//! Figure 8: efficiency vs the similarity-threshold ratio ρ = γ/d
//! ∈ {0.3, 0.4, 0.5, 0.6, 0.7}, per dataset, all six methods.
//!
//! Paper's reading: time decreases smoothly as ρ grows (fewer candidate
//! pairs); TER-iDS lowest (0.0007s–0.007s on their testbed).

use ter_bench::{sweep, BenchScale, Method, Metric};
use ter_datasets::GenOptions;
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    sweep(
        "Figure 8",
        "avg wall-clock per arrival vs rho = gamma/d",
        &[0.3, 0.4, 0.5, 0.6, 0.7],
        &Method::all(),
        Metric::Time,
        |p, rho| {
            (
                GenOptions {
                    scale: scale.for_preset(p),
                    ..GenOptions::default()
                },
                Params {
                    rho,
                    window: scale.window,
                    ..Params::default()
                },
            )
        },
    );
    println!("\n(paper: time decreases with rho; TER-iDS lowest everywhere)");
}
