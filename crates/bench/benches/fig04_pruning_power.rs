//! Figure 4: pruning power of the four strategies over the five datasets.
//!
//! Paper's reading: topic keyword pruning removes the bulk
//! (77.5%–86.5%), then similarity UB (5.6%–14.2%), probability UB
//! (2.2%–3.6%), and instance-pair-level pruning (1.5%–4.4%); together
//! 98.3%–99.4%.

use ter_bench::{header, prepare, run_method, BenchScale, Method};
use ter_datasets::{GenOptions, Preset};
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    header("Figure 4", "pruning power (%) per strategy, per dataset");
    println!(
        "{:<11} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "dataset", "topic", "simUB", "probUB", "instance", "total"
    );
    for p in Preset::all() {
        let prepared = prepare(
            p,
            GenOptions {
                scale: scale.for_preset(p),
                ..GenOptions::default()
            },
            Params {
                window: scale.window,
                ..Params::default()
            },
        );
        let r = run_method(&prepared, Method::TerIds);
        let (topic, sim, prob, inst) = r.stats.percentages();
        println!(
            "{:<11} {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}%",
            p.name(),
            topic,
            sim,
            prob,
            inst,
            r.stats.total_pruned_pct()
        );
    }
    println!(
        "(paper: topic 77.5–86.5, simUB 5.6–14.2, probUB 2.2–3.6, inst 1.5–4.4; total 98.3–99.4)"
    );
}
