//! Figure 9: efficiency vs the missing rate ξ ∈ {0.1, 0.2, 0.3, 0.4,
//! 0.5, 0.8}, per dataset, all six methods.
//!
//! Paper's reading: time increases with ξ (more tuples to impute);
//! TER-iDS remains lowest (0.0013s–0.073s on their testbed).

use ter_bench::{sweep, BenchScale, Method, Metric};
use ter_datasets::GenOptions;
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    sweep(
        "Figure 9",
        "avg wall-clock per arrival vs missing rate xi",
        &[0.1, 0.2, 0.3, 0.4, 0.5, 0.8],
        &Method::all(),
        Metric::Time,
        |p, xi| {
            (
                GenOptions {
                    scale: scale.for_preset(p),
                    missing_rate: xi,
                    ..GenOptions::default()
                },
                Params {
                    window: scale.window,
                    ..Params::default()
                },
            )
        },
    );
    println!("\n(paper: time increases with xi; TER-iDS lowest everywhere)");
}
