//! Figure 5: effectiveness (a) and efficiency (b) over the five datasets,
//! all six methods, default parameters.
//!
//! Paper's reading: (a) TER-iDS has the highest F-score (94.6%–97.3%),
//! then DD+ER, then er+ER, then con+ER (Ij+GER and CDD+ER share TER-iDS's
//! score by construction). (b) TER-iDS is fastest; CDD+ER/DD+ER/er+ER are
//! 3–4 orders of magnitude slower, con+ER 1–2; EBooks is the slowest
//! dataset for everyone (largest token sets).

use ter_bench::{
    header, prepare, print_fscore_row, print_method_header, print_time_row, run_methods,
    BenchScale, Method,
};
use ter_datasets::{GenOptions, Preset};
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    let methods = Method::all();
    let mut rows = Vec::new();
    for p in Preset::all() {
        let prepared = prepare(
            p,
            GenOptions {
                scale: scale.for_preset(p),
                ..GenOptions::default()
            },
            Params {
                window: scale.window,
                ..Params::default()
            },
        );
        rows.push((p.name(), run_methods(&prepared, &methods)));
    }

    header("Figure 5(a)", "F-score (%) vs dataset");
    print_method_header("dataset", &methods);
    for (name, results) in &rows {
        print_fscore_row(name, results);
    }
    println!("(paper: TER-iDS 94.6–97.3; DD+ER second; er+ER next; con+ER worst)");

    header("Figure 5(b)", "avg wall-clock per arrival vs dataset");
    print_method_header("dataset", &methods);
    for (name, results) in &rows {
        print_time_row(name, results);
    }
    println!(
        "(paper: TER-iDS fastest; CDD/DD/er+ER 3–4 orders slower; con+ER 1–2; EBooks slowest)"
    );
}
