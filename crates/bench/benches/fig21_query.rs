//! Figure 21 (beyond the paper): the declarative query layer — what a
//! one-shot pattern query costs against live engine state, and what the
//! differential standing-query path saves over re-running the query
//! from scratch at every window slide.
//!
//! Three representative patterns run the whole EBooks stream as
//! standing queries over a sharded engine, all attached to the same
//! feed:
//!
//! * **pairs** — `match(a, b)`: the raw live result set;
//! * **join** — `match(a, b), live(c) where topical(a)`: a cross join
//!   against the live window behind a selective predicate;
//! * **chain** — `match(a, b), match(b, c) -> a`: a self-join through a
//!   shared variable with projection (support-counted rows).
//!
//! For every pattern and every batch the bench times BOTH paths — the
//! incremental `StandingQuery::apply_batch` delta and a from-scratch
//! `evaluate` — and **parity-gates each batch**: the accumulated
//! notification fold must be bit-identical to the from-scratch rows
//! before any number is accepted. The recorded figures are the
//! incremental-vs-reeval speedup, the notify row throughput, and the
//! steady-state one-shot latency on the final window. Results land in
//! `BENCH_query.json` with a `RunStamp`.
//!
//! `TER_FIG21_SCALE` scales the stream for quick local runs.

use std::collections::BTreeSet;
use std::fs;
use std::time::Instant;

use ter_bench::{header, prepare, RunStamp};
use ter_datasets::{GenOptions, Preset};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{ErProcessor, Params, PruningMode};
use ter_query::{evaluate, fold_notification, BatchDelta, Pattern, StandingQuery};

const BATCH: usize = 64;
const ONESHOT_REPS: usize = 50;

const PATTERNS: [(&str, &str); 3] = [
    ("pairs", "match(a, b)"),
    ("join", "match(a, b), live(c) where topical(a)"),
    ("chain", "match(a, b), match(b, c) -> a"),
];

struct PatternRun {
    tag: &'static str,
    src: &'static str,
    standing: StandingQuery,
    fold: BTreeSet<Vec<u64>>,
    incr_secs: f64,
    reeval_secs: f64,
    notify_rows: u64,
}

fn main() {
    let scale: f64 = std::env::var("TER_FIG21_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let preset = Preset::EBooks;
    let params = Params::default();
    let exec = ExecConfig::new(
        8,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4),
    );

    header(
        "Figure 21",
        "declarative query layer: one-shot latency + differential standing-query throughput",
    );
    println!(
        "preset={} scale={scale} window={} batch={BATCH} shards={} threads={}",
        preset.name(),
        params.window,
        exec.shards,
        exec.threads
    );

    let prepared = prepare(
        preset,
        GenOptions {
            scale,
            ..GenOptions::default()
        },
        params,
    );
    let batches: Vec<&[ter_stream::Arrival]> = prepared.arrivals.chunks(BATCH).collect();

    let mut engine =
        ShardedTerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full, exec);
    let mut runs: Vec<PatternRun> = PATTERNS
        .iter()
        .map(|&(tag, src)| {
            let pattern = Pattern::parse(src).expect("bench pattern parses");
            let mut standing = StandingQuery::new(pattern);
            let fold: BTreeSet<Vec<u64>> = standing.seed(&engine).into_iter().collect();
            PatternRun {
                tag,
                src,
                standing,
                fold,
                incr_secs: 0.0,
                reeval_secs: 0.0,
                notify_rows: 0,
            }
        })
        .collect();

    // ---- one feed, every pattern standing, both paths timed ----
    for (bi, batch) in batches.iter().enumerate() {
        let outputs = engine.step_batch(batch);
        let delta = BatchDelta::from_steps(batch, &outputs);
        for run in &mut runs {
            let t = Instant::now();
            let (added, retracted) = run.standing.apply_batch(&engine, &delta);
            run.incr_secs += t.elapsed().as_secs_f64();
            run.notify_rows += (added.len() + retracted.len()) as u64;
            fold_notification(&mut run.fold, &added, &retracted);

            let t = Instant::now();
            let fresh = evaluate(run.standing.pattern(), &engine);
            run.reeval_secs += t.elapsed().as_secs_f64();

            // Parity gate: a fast wrong delta stream is worthless.
            assert!(
                run.fold.iter().cloned().eq(fresh.into_iter()),
                "fold diverged from from-scratch evaluation \
                 (pattern `{}`, batch {bi})",
                run.src
            );
        }
    }

    // ---- steady-state one-shot latency on the final window ----
    let mut pattern_json = Vec::new();
    for run in &runs {
        let pattern = Pattern::parse(run.src).expect("bench pattern parses");
        let mut rows = 0usize;
        let t = Instant::now();
        for _ in 0..ONESHOT_REPS {
            rows = evaluate(&pattern, &engine).len();
        }
        let oneshot_us = t.elapsed().as_secs_f64() / ONESHOT_REPS as f64 * 1e6;

        let speedup = run.reeval_secs / run.incr_secs.max(1e-12);
        let notify_rows_per_sec = run.notify_rows as f64 / run.incr_secs.max(1e-12);
        println!(
            "{:<6} one-shot {oneshot_us:>9.1}us  incremental {:>8.3}s  \
             reeval {:>8.3}s  ({speedup:>6.2}x)  {:>10} notify rows  {rows} final rows",
            run.tag, run.incr_secs, run.reeval_secs, run.notify_rows
        );
        pattern_json.push(format!(
            "    {{\n      \"tag\": \"{}\",\n      \"pattern\": \"{}\",\n      \
             \"oneshot_latency_us\": {oneshot_us:.2},\n      \
             \"incremental_secs\": {:.4},\n      \"reeval_secs\": {:.4},\n      \
             \"incremental_speedup\": {speedup:.3},\n      \
             \"notify_rows\": {},\n      \
             \"notify_rows_per_sec\": {notify_rows_per_sec:.1},\n      \
             \"final_rows\": {rows}\n    }}",
            run.tag, run.src, run.incr_secs, run.reeval_secs, run.notify_rows
        ));
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    // The delta/reeval comparison is algorithmic, not a concurrency
    // claim, but the honesty flag rides along for the schema gate: a
    // 1-CPU host time-slices the sharded engine under both paths.
    let undersubscribed = host_cpus < 2;

    let json = format!(
        "{{\n  \"bench\": \"fig21_query\",\n{}\n  \"preset\": \"{}\",\n  \"scale\": {},\n  \
         \"window\": {},\n  \"batch\": {},\n  \"shards\": {},\n  \"threads\": {},\n  \
         \"host_cpus\": {},\n  \"undersubscribed\": {},\n  \
         \"arrivals\": {},\n  \"batches\": {},\n  \"oneshot_reps\": {},\n  \
         \"parity\": \"fold == from-scratch after every batch\",\n  \
         \"patterns\": [\n{}\n  ]\n}}\n",
        RunStamp::capture().json_fields(),
        preset.name(),
        scale,
        params.window,
        BATCH,
        exec.shards,
        exec.threads,
        host_cpus,
        undersubscribed,
        prepared.arrivals.len(),
        batches.len(),
        ONESHOT_REPS,
        pattern_json.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    fs::write(out, &json).expect("write BENCH_query.json");
    println!("wrote {out}");
}
