//! Figure 21 (beyond the paper): the declarative query layer — what a
//! one-shot pattern query costs against live engine state, and what the
//! differential standing-query path saves over re-running the query
//! from scratch at every window slide.
//!
//! Three representative patterns run the whole EBooks stream as
//! standing queries over a sharded engine, all attached to the same
//! feed:
//!
//! * **pairs** — `match(a, b)`: the raw live result set;
//! * **join** — `match(a, b), live(c) where topical(a)`: a cross join
//!   against the live window behind a selective predicate;
//! * **chain** — `match(a, b), match(b, c) -> a`: a self-join through a
//!   shared variable with projection (support-counted rows).
//!
//! For every pattern and every batch the bench times BOTH paths — the
//! incremental `StandingQuery::apply_batch` delta and a from-scratch
//! `evaluate` — and **parity-gates each batch**: the accumulated
//! notification fold must be bit-identical to the from-scratch rows
//! before any number is accepted. The recorded figures are the
//! incremental-vs-reeval speedup, the notify row throughput, and the
//! steady-state one-shot latency on the final window. Results land in
//! `BENCH_query.json` with a `RunStamp`.
//!
//! A second section drives a **standing herd** against the real daemon:
//! `TER_FIG21_HERD` subscribers (default 24) all standing on the
//! row-heaviest pattern (`join`) while a feeder pushes the stream over
//! TCP. Two runs bracket the `--notify-buffer` sizing question:
//!
//! * **draining** — every subscriber drains concurrently; records the
//!   `ter_query_notify_*` fan-out totals and the peak un-drained
//!   backlog (`ter_query_backlog_high_water`) a healthy herd produces;
//! * **stalled** — nobody reads until the feed ends, under a tiny
//!   buffer; records how high the backlog climbs and how many
//!   subscribers shed to `Lagged`.
//!
//! Sizing rule the two runs document: `--notify-buffer` (un-drained
//! outbound **bytes** per subscriber connection) must sit above the
//! draining high-water mark — the stalled run shows what happens below
//! it (bounded memory, shed-and-resync, ingest never stalls).
//!
//! `TER_FIG21_SCALE` scales the stream for quick local runs.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ter_bench::{header, prepare, RunStamp};
use ter_datasets::{GenOptions, Preset};
use ter_exec::{ExecConfig, ShardedTerIdsEngine};
use ter_ids::{ErProcessor, Params, PruningMode};
use ter_query::{evaluate, fold_notification, BatchDelta, Pattern, StandingQuery};
use ter_serve::{Client, ServeOptions, Server, SubEvent};

const BATCH: usize = 64;
const ONESHOT_REPS: usize = 50;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("ter_fig21_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        Self(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// One herd run's scraped counters.
struct HerdRun {
    label: &'static str,
    notify_buffer: usize,
    feed_secs: f64,
    notify_events: u64,
    notify_rows: u64,
    notify_bytes: u64,
    backlog_high_water: u64,
    sheds: u64,
    lagged_subs: usize,
    rows_received: u64,
}

/// Drains one subscriber connection (all its standing queries) to EOF
/// (or idle timeout), counting received notify rows and whether a
/// `Lagged` shed arrived.
fn drain_subscriber(client: &mut Client) -> (u64, bool) {
    let _ = client.set_io_timeout(Some(Duration::from_secs(10)));
    let (mut rows, mut lagged) = (0u64, false);
    loop {
        match client.next_event() {
            Ok(SubEvent::Notify {
                added, retracted, ..
            }) => rows += (added.len() + retracted.len()) as u64,
            Ok(SubEvent::Lagged { .. }) => lagged = true,
            Err(_) => break,
        }
    }
    (rows, lagged)
}

/// Runs a standing herd against a fresh in-process daemon: `herd`
/// subscriber connections each carrying `subs_per_conn` standing
/// queries on `pattern`, a feeder pushing `batches` over TCP, the
/// global metrics registry scraped once everything is flushed.
#[allow(clippy::too_many_arguments)]
fn herd_run(
    label: &'static str,
    prepared: &ter_bench::Prepared,
    batches: &[&[ter_stream::Arrival]],
    herd: usize,
    subs_per_conn: usize,
    pattern: &str,
    notify_buffer: usize,
    drain_live: bool,
) -> HerdRun {
    ter_obs::reset();
    let dir = TempDir::new(label);
    let opts = ServeOptions {
        notify_buffer,
        ..ServeOptions::default()
    };
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let addr = server.addr().expect("addr");
    let (feed_secs, rows_received, lagged_subs) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            server
                .run(&prepared.ctx, prepared.params, &dir.0, &opts)
                .expect("daemon run")
        });
        let connect = Duration::from_secs(10);
        let mut subs: Vec<Client> = (0..herd)
            .map(|_| {
                let mut c = Client::connect_retry(addr, connect).expect("subscriber connect");
                for s in 0..subs_per_conn {
                    c.subscribe(s as u64 + 1, 0, pattern).expect("subscribe");
                }
                c
            })
            .collect();
        // A draining herd reads as the feed runs; a stalled herd leaves
        // everything queued until the feed is over.
        let drains: Vec<_> = if drain_live {
            subs.drain(..)
                .map(|mut c| scope.spawn(move || drain_subscriber(&mut c)))
                .collect()
        } else {
            Vec::new()
        };
        let mut feeder = Client::connect_retry(addr, connect).expect("feeder connect");
        let t = Instant::now();
        for batch in batches {
            feeder.ingest_wait(batch).expect("ingest");
        }
        // Shutdown serializes behind every ingest's notify fan-out, so
        // the counters are complete once it acks; it also closes the
        // subscriber connections, ending the drains.
        feeder.shutdown().expect("shutdown");
        let feed_secs = t.elapsed().as_secs_f64();
        let results: Vec<(u64, bool)> = if drain_live {
            drains.into_iter().map(|h| h.join().unwrap()).collect()
        } else {
            subs.iter_mut().map(drain_subscriber).collect()
        };
        handle.join().unwrap();
        let rows_received: u64 = results.iter().map(|(r, _)| r).sum();
        let lagged_subs = results.iter().filter(|(_, l)| *l).count();
        (feed_secs, rows_received, lagged_subs)
    });
    HerdRun {
        label,
        notify_buffer,
        feed_secs,
        notify_events: ter_obs::OBS.notify_events.get(),
        notify_rows: ter_obs::OBS.notify_rows.get(),
        notify_bytes: ter_obs::OBS.notify_bytes.get(),
        backlog_high_water: ter_obs::OBS.backlog_high_water.get(),
        sheds: ter_obs::OBS.shed.get(),
        lagged_subs,
        rows_received,
    }
}

const PATTERNS: [(&str, &str); 3] = [
    ("pairs", "match(a, b)"),
    ("join", "match(a, b), live(c) where topical(a)"),
    ("chain", "match(a, b), match(b, c) -> a"),
];

struct PatternRun {
    tag: &'static str,
    src: &'static str,
    standing: StandingQuery,
    fold: BTreeSet<Vec<u64>>,
    incr_secs: f64,
    reeval_secs: f64,
    notify_rows: u64,
}

fn main() {
    let scale: f64 = std::env::var("TER_FIG21_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let preset = Preset::EBooks;
    let params = Params::default();
    let exec = ExecConfig::new(
        8,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4),
    );

    header(
        "Figure 21",
        "declarative query layer: one-shot latency + differential standing-query throughput",
    );
    println!(
        "preset={} scale={scale} window={} batch={BATCH} shards={} threads={}",
        preset.name(),
        params.window,
        exec.shards,
        exec.threads
    );

    let prepared = prepare(
        preset,
        GenOptions {
            scale,
            ..GenOptions::default()
        },
        params,
    );
    let batches: Vec<&[ter_stream::Arrival]> = prepared.arrivals.chunks(BATCH).collect();

    let mut engine =
        ShardedTerIdsEngine::new(&prepared.ctx, prepared.params, PruningMode::Full, exec);
    let mut runs: Vec<PatternRun> = PATTERNS
        .iter()
        .map(|&(tag, src)| {
            let pattern = Pattern::parse(src).expect("bench pattern parses");
            let mut standing = StandingQuery::new(pattern);
            let fold: BTreeSet<Vec<u64>> = standing.seed(&engine).into_iter().collect();
            PatternRun {
                tag,
                src,
                standing,
                fold,
                incr_secs: 0.0,
                reeval_secs: 0.0,
                notify_rows: 0,
            }
        })
        .collect();

    // ---- one feed, every pattern standing, both paths timed ----
    for (bi, batch) in batches.iter().enumerate() {
        let outputs = engine.step_batch(batch);
        let delta = BatchDelta::from_steps(batch, &outputs);
        for run in &mut runs {
            let t = Instant::now();
            let (added, retracted) = run.standing.apply_batch(&engine, &delta);
            run.incr_secs += t.elapsed().as_secs_f64();
            run.notify_rows += (added.len() + retracted.len()) as u64;
            fold_notification(&mut run.fold, &added, &retracted);

            let t = Instant::now();
            let fresh = evaluate(run.standing.pattern(), &engine);
            run.reeval_secs += t.elapsed().as_secs_f64();

            // Parity gate: a fast wrong delta stream is worthless.
            assert!(
                run.fold.iter().cloned().eq(fresh.into_iter()),
                "fold diverged from from-scratch evaluation \
                 (pattern `{}`, batch {bi})",
                run.src
            );
        }
    }

    // ---- steady-state one-shot latency on the final window ----
    let mut pattern_json = Vec::new();
    for run in &runs {
        let pattern = Pattern::parse(run.src).expect("bench pattern parses");
        let mut rows = 0usize;
        let t = Instant::now();
        for _ in 0..ONESHOT_REPS {
            rows = evaluate(&pattern, &engine).len();
        }
        let oneshot_us = t.elapsed().as_secs_f64() / ONESHOT_REPS as f64 * 1e6;

        let speedup = run.reeval_secs / run.incr_secs.max(1e-12);
        let notify_rows_per_sec = run.notify_rows as f64 / run.incr_secs.max(1e-12);
        println!(
            "{:<6} one-shot {oneshot_us:>9.1}us  incremental {:>8.3}s  \
             reeval {:>8.3}s  ({speedup:>6.2}x)  {:>10} notify rows  {rows} final rows",
            run.tag, run.incr_secs, run.reeval_secs, run.notify_rows
        );
        pattern_json.push(format!(
            "    {{\n      \"tag\": \"{}\",\n      \"pattern\": \"{}\",\n      \
             \"oneshot_latency_us\": {oneshot_us:.2},\n      \
             \"incremental_secs\": {:.4},\n      \"reeval_secs\": {:.4},\n      \
             \"incremental_speedup\": {speedup:.3},\n      \
             \"notify_rows\": {},\n      \
             \"notify_rows_per_sec\": {notify_rows_per_sec:.1},\n      \
             \"final_rows\": {rows}\n    }}",
            run.tag, run.src, run.incr_secs, run.reeval_secs, run.notify_rows
        ));
    }

    // ---- standing herd vs --notify-buffer against the real daemon ----
    let herd: usize = std::env::var("TER_FIG21_HERD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    // Each connection carries several standing queries (the dashboard
    // shape) so its notify volume overflows the kernel's socket
    // buffering (autotuned to a few MiB on loopback) — below that a
    // stalled subscriber is absorbed invisibly and the backlog gauge
    // measures nothing.
    let subs_per_conn: usize = std::env::var("TER_FIG21_SUBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let join_pattern = PATTERNS[1].1;
    let mut herd_runs: Vec<HerdRun> = Vec::new();
    if herd > 0 {
        println!("herd: {herd} connections x {subs_per_conn} standing queries on `{join_pattern}`");
        let default_buffer = ServeOptions::default().notify_buffer;
        for (label, buffer, drain_live) in [
            ("draining", default_buffer, true),
            ("stalled", 4096usize, false),
        ] {
            let run = herd_run(
                label,
                &prepared,
                &batches,
                herd,
                subs_per_conn,
                join_pattern,
                buffer,
                drain_live,
            );
            println!(
                "herd/{:<8} {herd} subs  feed {:>6.2}s  {:>8} events  {:>10} rows  \
                 {:>10} B  backlog hw {:>8} B (buffer {} B)  sheds {}  lagged {}",
                run.label,
                run.feed_secs,
                run.notify_events,
                run.notify_rows,
                run.notify_bytes,
                run.backlog_high_water,
                run.notify_buffer,
                run.sheds,
                run.lagged_subs
            );
            herd_runs.push(run);
        }
        // The draining herd must never shed; the sizing observation is
        // meaningless if a healthy consumer lags the default buffer.
        assert_eq!(
            herd_runs[0].sheds, 0,
            "draining herd shed under default buffer"
        );
        assert_eq!(herd_runs[0].lagged_subs, 0, "draining herd saw Lagged");
        // Fan-out symmetry: every draining subscriber got the full row
        // stream the daemon counted.
        assert_eq!(
            herd_runs[0].rows_received, herd_runs[0].notify_rows,
            "draining herd dropped rows"
        );
    } else {
        println!("herd skipped (TER_FIG21_HERD=0)");
    }
    let herd_json: Vec<String> = herd_runs
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"run\": \"{}\",\n      \"subscribers\": {herd},\n      \
                 \"notify_buffer_bytes\": {},\n      \"feed_secs\": {:.3},\n      \
                 \"notify_events\": {},\n      \"notify_rows\": {},\n      \
                 \"notify_bytes\": {},\n      \"backlog_high_water\": {},\n      \
                 \"sheds\": {},\n      \"lagged_subscribers\": {},\n      \
                 \"rows_received\": {}\n    }}",
                r.label,
                r.notify_buffer,
                r.feed_secs,
                r.notify_events,
                r.notify_rows,
                r.notify_bytes,
                r.backlog_high_water,
                r.sheds,
                r.lagged_subs,
                r.rows_received
            )
        })
        .collect();

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    // The delta/reeval comparison is algorithmic, not a concurrency
    // claim, but the honesty flag rides along for the schema gate: a
    // 1-CPU host time-slices the sharded engine under both paths.
    let undersubscribed = host_cpus < 2;

    let json = format!(
        "{{\n  \"bench\": \"fig21_query\",\n{}\n  \"preset\": \"{}\",\n  \"scale\": {},\n  \
         \"window\": {},\n  \"batch\": {},\n  \"shards\": {},\n  \"threads\": {},\n  \
         \"host_cpus\": {},\n  \"undersubscribed\": {},\n  \
         \"arrivals\": {},\n  \"batches\": {},\n  \"oneshot_reps\": {},\n  \
         \"parity\": \"fold == from-scratch after every batch\",\n  \
         \"notify_buffer_sizing\": \"set --notify-buffer (un-drained outbound bytes per \
         subscriber) above the draining herd's backlog_high_water; below it the daemon \
         sheds the subscriber with one Lagged instead of buffering unboundedly\",\n  \
         \"herd_connections\": {herd},\n  \"herd_subs_per_conn\": {subs_per_conn},\n  \
         \"patterns\": [\n{}\n  ],\n  \"herd\": [\n{}\n  ]\n}}\n",
        RunStamp::capture().json_fields(),
        preset.name(),
        scale,
        params.window,
        BATCH,
        exec.shards,
        exec.threads,
        host_cpus,
        undersubscribed,
        prepared.arrivals.len(),
        batches.len(),
        ONESHOT_REPS,
        pattern_json.join(",\n"),
        herd_json.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    fs::write(out, &json).expect("write BENCH_query.json");
    println!("wrote {out}");
}
