//! Figure 16: efficiency vs the repository size ratio η ∈ {0.1 .. 0.5}.
//!
//! Paper's reading: time grows with η for every repository-based method
//! (more samples to retrieve); con+ER is flat; TER-iDS lowest
//! (0.0004s–0.01s on their testbed).

use ter_bench::{sweep, BenchScale, Method, Metric};
use ter_datasets::GenOptions;
use ter_ids::Params;

fn main() {
    let scale = BenchScale::default();
    sweep(
        "Figure 16",
        "avg wall-clock per arrival vs repository ratio eta",
        &[0.1, 0.2, 0.3, 0.4, 0.5],
        &Method::all(),
        Metric::Time,
        |p, eta| {
            (
                GenOptions {
                    scale: scale.for_preset(p),
                    repo_ratio: eta,
                    ..GenOptions::default()
                },
                Params {
                    window: scale.window,
                    ..Params::default()
                },
            )
        },
    );
    println!("\n(paper: time grows with eta except con+ER (flat); TER-iDS lowest)");
}
