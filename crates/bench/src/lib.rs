//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (§6 and Appendix C). Each `benches/figNN_*.rs` target is a
//! `harness = false` binary that prints the same rows/series the paper
//! plots; `benches/micro.rs` holds criterion micro-benchmarks.
//!
//! Scaling: the paper's testbed ran minutes-long streams over real data;
//! this harness runs generated analogs scaled via [`BenchScale`] so a full
//! `cargo bench` finishes in minutes while preserving the comparisons'
//! *shape* (who wins, how curves move with each parameter). Set
//! `TER_BENCH_SCALE=1.0` for a slower, larger run.

use std::time::Instant;

use ter_datasets::{co_window_pairs, preset, Dataset, GenOptions, Preset};
use ter_ids::{
    evaluate, ErProcessor, NaiveEngine, Params, PhaseTiming, PruneStats, PruningMode, TerContext,
    TerIdsEngine,
};
use ter_repo::PivotConfig;
use ter_rules::DiscoveryConfig;
use ter_stream::Arrival;

/// The six compared methods, in the paper's legend order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The full approach (all indexes + all pruning).
    TerIds,
    /// Indexes without the join-time pair pruning.
    IjGer,
    /// CDD imputation without indexes.
    CddEr,
    /// DD-rule imputation.
    DdEr,
    /// Editing-rule imputation.
    ErEr,
    /// Constraint-based (window) imputation.
    ConEr,
}

impl Method {
    /// All methods, paper order.
    pub fn all() -> [Method; 6] {
        [
            Method::TerIds,
            Method::IjGer,
            Method::CddEr,
            Method::DdEr,
            Method::ErEr,
            Method::ConEr,
        ]
    }

    /// The methods whose F-score the paper reports in Figure 5(a)
    /// (the CDD-based ones share TER-iDS's score and are omitted there).
    pub fn accuracy_set() -> [Method; 4] {
        [Method::TerIds, Method::DdEr, Method::ErEr, Method::ConEr]
    }

    /// Paper label.
    pub fn name(&self) -> &'static str {
        match self {
            Method::TerIds => "TER-iDS",
            Method::IjGer => "Ij+GER",
            Method::CddEr => "CDD+ER",
            Method::DdEr => "DD+ER",
            Method::ErEr => "er+ER",
            Method::ConEr => "con+ER",
        }
    }
}

/// Result of one (dataset, method, parameters) run.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method label.
    pub name: &'static str,
    /// Average wall-clock seconds per arriving tuple (the paper's
    /// per-timestamp metric).
    pub avg_secs: f64,
    /// F-score against the dataset's paper-convention ground truth.
    pub f_score: f64,
    /// Pruning counters (zero for baselines).
    pub stats: PruneStats,
    /// Per-phase breakdown.
    pub timing: PhaseTiming,
}

/// Global scale knobs (overridable via `TER_BENCH_SCALE`).
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Stream-size multiplier for the four smaller presets.
    pub scale: f64,
    /// Stream-size multiplier for Songs (largest preset).
    pub songs_scale: f64,
    /// Default window size.
    pub window: usize,
}

impl Default for BenchScale {
    fn default() -> Self {
        let factor: f64 = std::env::var("TER_BENCH_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.5);
        Self {
            scale: factor,
            songs_scale: factor * 0.5,
            window: ((400.0 * factor).round() as usize).max(40),
        }
    }
}

impl BenchScale {
    /// The generator scale for `p`.
    pub fn for_preset(&self, p: Preset) -> f64 {
        if p == Preset::Songs {
            self.songs_scale
        } else {
            self.scale
        }
    }
}

/// One prepared experiment: dataset + offline pre-computation + arrivals.
pub struct Prepared {
    /// The generated dataset.
    pub dataset: Dataset,
    /// Offline pre-computation output.
    pub ctx: TerContext,
    /// Merged arrival order.
    pub arrivals: Vec<Arrival>,
    /// Paper-convention ground truth restricted to co-window pairs.
    pub groundtruth: ter_text::fxhash::FxHashSet<(u64, u64)>,
    /// Engine parameters.
    pub params: Params,
}

/// Generates a dataset and runs the offline phase.
///
/// The harness raises the imputation candidate cap from the library
/// default (8) to 24: the paper enumerates all suggested candidates, and
/// the resulting instance products are exactly what separates the pruned
/// engine from the nested-loop baselines in Figures 5(b) and 7–10.
pub fn prepare(p: Preset, opts: GenOptions, mut params: Params) -> Prepared {
    params.impute.max_candidates_per_attr = 24;
    let dataset = preset(p, &opts);
    let keywords = dataset.keywords();
    let ctx = TerContext::build(
        dataset.repo.clone(),
        keywords.clone(),
        &PivotConfig::default(),
        &DiscoveryConfig::default(),
        params.fanout,
    );
    let arrivals = dataset.streams.arrivals();
    let groundtruth = co_window_pairs(
        &dataset.paper_groundtruth(params.rho, &keywords),
        &arrivals,
        params.window,
    );
    Prepared {
        dataset,
        ctx,
        arrivals,
        groundtruth,
        params,
    }
}

/// Runs one method over a prepared experiment.
pub fn run_method(prepared: &Prepared, method: Method) -> MethodResult {
    let params = prepared.params;
    let mut processor: Box<dyn ErProcessor + '_> = match method {
        Method::TerIds => Box::new(TerIdsEngine::new(&prepared.ctx, params, PruningMode::Full)),
        Method::IjGer => Box::new(TerIdsEngine::new(
            &prepared.ctx,
            params,
            PruningMode::GridOnly,
        )),
        Method::CddEr => Box::new(NaiveEngine::cdd_er(&prepared.ctx, params)),
        Method::DdEr => Box::new(NaiveEngine::dd_er(&prepared.ctx, params)),
        Method::ErEr => Box::new(NaiveEngine::er_er(&prepared.ctx, params)),
        Method::ConEr => Box::new(NaiveEngine::con_er(&prepared.ctx, params)),
    };
    let start = Instant::now();
    for a in &prepared.arrivals {
        processor.process(a);
    }
    let elapsed = start.elapsed();
    let f_score = evaluate(processor.reported(), &prepared.groundtruth).f_score;
    MethodResult {
        name: method.name(),
        avg_secs: elapsed.as_secs_f64() / prepared.arrivals.len().max(1) as f64,
        f_score,
        stats: processor.prune_stats(),
        timing: processor.timing(),
    }
}

/// Runs several methods over one prepared experiment.
pub fn run_methods(prepared: &Prepared, methods: &[Method]) -> Vec<MethodResult> {
    methods.iter().map(|&m| run_method(prepared, m)).collect()
}

/// Provenance stamp for `BENCH_*.json` trajectory records: the git commit
/// the numbers were measured at and an ISO-8601 UTC timestamp, so the
/// perf trajectory in ROADMAP stays traceable to exact code states.
#[derive(Debug, Clone)]
pub struct RunStamp {
    /// `git rev-parse HEAD` of the working tree, or `"unknown"` outside a
    /// repository.
    pub git_commit: String,
    /// `YYYY-MM-DDTHH:MM:SSZ` at measurement time.
    pub generated_at: String,
}

impl RunStamp {
    /// Captures the current commit and time. A working tree with
    /// uncommitted changes gets a `-dirty` suffix — numbers measured
    /// mid-change must not masquerade as the parent commit's.
    pub fn capture() -> Self {
        let git = |args: &[&str]| {
            std::process::Command::new("git")
                .args(args)
                .current_dir(env!("CARGO_MANIFEST_DIR"))
                .output()
                .ok()
                .filter(|o| o.status.success())
                .and_then(|o| String::from_utf8(o.stdout).ok())
        };
        let mut git_commit = git(&["rev-parse", "HEAD"])
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        if git_commit != "unknown"
            && git(&["status", "--porcelain"]).is_some_and(|s| !s.trim().is_empty())
        {
            git_commit.push_str("-dirty");
        }
        Self {
            git_commit,
            generated_at: iso8601_utc_now(),
        }
    }

    /// The stamp as JSON object fields (no surrounding braces), indented
    /// two spaces to slot into the `BENCH_*.json` layout.
    pub fn json_fields(&self) -> String {
        format!(
            "  \"git_commit\": \"{}\",\n  \"generated_at\": \"{}\",",
            self.git_commit, self.generated_at
        )
    }
}

/// Current UTC time as `YYYY-MM-DDTHH:MM:SSZ` (no chrono in this offline
/// workspace; civil-date conversion per Howard Hinnant's algorithm).
pub fn iso8601_utc_now() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (days, rem) = (secs / 86_400, secs % 86_400);
    let (y, m, d) = civil_from_days(days as i64);
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60
    )
}

/// Days-since-epoch → (year, month, day) in the proleptic Gregorian
/// calendar.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Prints a figure header (and flushes).
pub fn header(figure: &str, description: &str) {
    println!("\n=== {figure}: {description} ===");
}

/// Prints one wall-clock row: dataset/param label + per-method seconds.
pub fn print_time_row(label: &str, results: &[MethodResult]) {
    print!("{label:<12}");
    for r in results {
        print!(" {:>10}", format!("{:.5}s", r.avg_secs));
    }
    println!();
}

/// Prints one F-score row.
pub fn print_fscore_row(label: &str, results: &[MethodResult]) {
    print!("{label:<12}");
    for r in results {
        print!(" {:>9.2}%", 100.0 * r.f_score);
    }
    println!();
}

/// Prints the method-name column header.
pub fn print_method_header(first_col: &str, methods: &[Method]) {
    print!("{first_col:<12}");
    for m in methods {
        print!(" {:>10}", m.name());
    }
    println!();
}

/// Which measurement a sweep reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Average wall-clock seconds per arrival (Figures 7–10, 16–17).
    Time,
    /// F-score (Figures 13–15).
    FScore,
}

/// Runs a one-parameter sweep over every preset and prints one sub-table
/// per dataset (matching the paper's five sub-figures per figure).
///
/// `configure` maps `(preset, value)` to the generator options and engine
/// parameters for that run.
pub fn sweep<V: Copy + std::fmt::Display>(
    figure: &str,
    desc: &str,
    values: &[V],
    methods: &[Method],
    metric: Metric,
    configure: impl Fn(Preset, V) -> (GenOptions, Params),
) {
    header(figure, desc);
    for p in Preset::all() {
        println!("\n--- {} ---", p.name());
        print_method_header("value", methods);
        for &v in values {
            let (opts, params) = configure(p, v);
            let prepared = prepare(p, opts, params);
            let results = run_methods(&prepared, methods);
            let label = format!("{v}");
            match metric {
                Metric::Time => print_time_row(&label, &results),
                Metric::FScore => print_fscore_row(&label, &results),
            }
        }
    }
}

/// Renders a critical-path attribution table as one JSON object — the
/// `critical_path` field the bench artifacts (`BENCH_throughput.json`,
/// `BENCH_serve.json`) record, keyed exactly like
/// [`ter_obs::trace::SEGMENTS`] with a `_micros` suffix.
pub fn critical_path_json(cp: &ter_obs::trace::CriticalPath) -> String {
    let segs: Vec<String> = cp
        .segments()
        .iter()
        .map(|(name, us)| format!("\"{name}_micros\": {us}"))
        .collect();
    format!(
        "{{\"traces\": {}, \"total_micros\": {}, {}}}",
        cp.traces,
        cp.total_micros,
        segs.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_run_smallest() {
        let scale = BenchScale {
            scale: 0.08,
            songs_scale: 0.05,
            window: 40,
        };
        let prepared = prepare(
            Preset::Citations,
            GenOptions {
                scale: scale.for_preset(Preset::Citations),
                ..GenOptions::default()
            },
            Params {
                window: scale.window,
                ..Params::default()
            },
        );
        let results = run_methods(&prepared, &[Method::TerIds, Method::ConEr]);
        assert_eq!(results.len(), 2);
        assert!(results[0].avg_secs > 0.0);
        assert!(results[0].f_score >= 0.0);
    }

    #[test]
    fn civil_date_conversion() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(19_782), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(20_662), (2026, 7, 28));
    }

    #[test]
    fn stamp_shape() {
        let s = RunStamp::capture();
        assert!(!s.git_commit.is_empty());
        // ISO-8601: 2026-07-28T12:34:56Z
        assert_eq!(s.generated_at.len(), 20);
        assert!(s.generated_at.ends_with('Z'));
        assert_eq!(&s.generated_at[4..5], "-");
        assert_eq!(&s.generated_at[10..11], "T");
        assert!(s.json_fields().contains("\"git_commit\""));
        assert!(s.json_fields().contains("\"generated_at\""));
    }

    #[test]
    fn critical_path_json_shape() {
        let cp = ter_obs::trace::CriticalPath {
            traces: 2,
            total_micros: 100,
            compute_micros: 60,
            other_micros: 40,
            ..ter_obs::trace::CriticalPath::ZERO
        };
        let j = critical_path_json(&cp);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"traces\": 2"));
        assert!(j.contains("\"total_micros\": 100"));
        assert!(j.contains("\"compute_micros\": 60"));
        // Every segment appears, zero or not — schema checkers rely on it.
        for (name, _) in cp.segments() {
            assert!(j.contains(&format!("\"{name}_micros\"")), "{name}");
        }
    }

    #[test]
    fn method_labels_match_paper() {
        let names: Vec<&str> = Method::all().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec!["TER-iDS", "Ij+GER", "CDD+ER", "DD+ER", "er+ER", "con+ER"]
        );
    }
}
